"""Figure 7: throughput vs DSP budget, Single- vs Multi-CLP.

Bands: Multi-CLP never loses to Single-CLP; the advantage *grows* with
the budget (the paper's central scaling claim); the speedup is ~1.2-1.5x
near 2,240 DSPs and >2.5x by 9,216+ DSPs (paper: 1.3x -> 3.3x); Multi-CLP
throughput increases monotonically with the budget.

The sweep itself runs through ``repro.dse``, so the sixteen optimizer
runs fan out across all CPU cores; the numbers are identical to the old
serial loop because each point is solved by the same optimizer call.
"""

import os

from repro.analysis.figures import figure7

SWEEP = (500, 1000, 2240, 2880, 4500, 6840, 9216, 10000)


def test_figure7(benchmark, record_artifact):
    result = benchmark.pedantic(
        figure7,
        kwargs={"dsp_sweep": SWEEP, "workers": os.cpu_count()},
        rounds=1,
        iterations=1,
    )
    record_artifact("figure7", result.format())
    by_dsp = {p.dsp: p for p in result.points}
    for point in result.points:
        assert point.single_throughput is not None
        assert point.multi_throughput is not None
        assert point.multi_throughput >= point.single_throughput * 0.999

    # Speedup grows with the DSP budget.
    small = by_dsp[2240].speedup
    large = by_dsp[9216].speedup
    assert small is not None and large is not None
    assert 1.15 <= small <= 1.6    # paper: ~1.3x at 2,240
    assert large >= 2.2            # paper: ~3.3x at 9,600
    assert large > small

    # Multi-CLP throughput scales with resources.
    multi = [p.multi_throughput for p in result.points]
    assert all(b >= a * 0.999 for a, b in zip(multi, multi[1:]))
