"""Section 6.4-style validation: simulators vs analytic models.

* The cycle-level CLP simulator must match the analytic cycle model
  exactly at unlimited bandwidth and differ only by pipeline depth per
  tile otherwise (the paper's RTL-simulation observation).
* The Multi-CLP discrete-event simulation at 1.2x the modelled
  bandwidth requirement stays within 5% of the modelled epoch.
"""

from repro.analysis.report import render_table
from repro.analysis.tables import design_for
from repro.sim import simulate_clp, simulate_system, tile_sequence


def measure():
    design = design_for("alexnet", "485t", "float32", single=False)
    rows = []
    for index, clp in enumerate(design.clps):
        exact = simulate_clp(clp)
        deep = simulate_clp(clp, pipeline_depth=12)
        tiles = sum(
            len(tile_sequence(layer, clp.tn, clp.tm, tr, tc))
            for layer, (tr, tc) in zip(clp.layers, clp.tile_plans)
        )
        rows.append(
            {
                "clp": index,
                "model": clp.total_cycles,
                "sim": exact.total_cycles,
                "sim_depth12": deep.total_cycles,
                "tiles": tiles,
            }
        )
    need = design.required_bandwidth_bytes_per_cycle()
    capped = simulate_system(design, bytes_per_cycle=need * 1.2)
    return design, rows, capped


def test_model_validation(benchmark, record_artifact):
    design, rows, capped = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["CLP", "model cycles", "sim cycles", "sim depth=12", "tiles"],
        [
            (r["clp"], r["model"], f"{r['sim']:.0f}",
             f"{r['sim_depth12']:.0f}", r["tiles"])
            for r in rows
        ],
        title="Model vs cycle-level simulation (AlexNet 485T Multi-CLP)",
    )
    epoch_line = (
        f"system DES at 1.2x modelled bandwidth: epoch "
        f"{capped.epoch_cycles:.0f} vs model {design.epoch_cycles} "
        f"({capped.epoch_cycles / design.epoch_cycles:.4f}x)"
    )
    record_artifact("model_validation", table + "\n" + epoch_line)
    for r in rows:
        assert r["sim"] == r["model"]  # exact at unlimited bandwidth
        assert r["sim_depth12"] == r["model"] + 12 * r["tiles"]
    assert capped.epoch_cycles <= design.epoch_cycles * 1.05
