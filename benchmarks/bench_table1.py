"""Table 1: dynamic arithmetic-unit utilization across all 16 cases.

Reproduction bands asserted:
* Single-CLP utilizations match the paper within 4 points (they are
  pinned exactly elsewhere for the float cases);
* Multi-CLP always beats Single-CLP;
* Multi-CLP utilizations are at least the paper's minus 2 points (our
  search may find slightly better designs, never meaningfully worse).
"""

from repro.analysis.tables import table1


def test_table1(benchmark, record_artifact):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    record_artifact("table1", result.format())
    for row in result.rows:
        case = f"{row.network}/{row.fpga}/{row.dtype}"
        assert row.multi_util > row.single_util, case
        assert abs(row.single_util - row.paper_single) < 0.04, case
        assert row.multi_util >= row.paper_multi - 0.02, case
    # The headline scaling observation: the fixed-point (more units)
    # cases show the largest Single-CLP collapse.
    fixed_alexnet = [
        r for r in result.rows
        if r.network == "alexnet" and r.dtype == "fixed16"
    ]
    for row in fixed_alexnet:
        assert row.single_util < 0.35
        assert row.multi_util > 0.90
