"""Serving-engine speed: simulated requests per wall-clock second.

The traffic simulator exists to be swept (``repro dse rank`` replays
every stored design under load), so its own throughput matters.  This
benchmark saturates a real AlexNet 485T design with constant-rate
traffic for a fixed number of epochs and reports how many simulated
requests the event loop processes per second of host time.

Bands: the engine must stay comfortably above 10k simulated requests/s
(each request is ~4 heap events), and a drained run must conserve
requests exactly (arrivals == completions + drops).

Numbers land twice: a human-readable artifact and machine-readable
``BENCH_serve.json`` (req/s, wall time) for the perf trajectory CI
tracks across commits.
"""

import time

from conftest import SMOKE, bench_scale

from repro.core.datatypes import FLOAT32
from repro.core.serialize import serve_result_to_dict
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp
from repro.serve import ConstantRate, TenantSpec, simulate_traffic

EPOCHS = bench_scale(full=2_000, smoke=200)
# The fast engine's advantage is overhead-bound at smoke scale (a few
# hundred arrivals barely amortize the numpy setup); the 10x promise is
# judged at full scale.
SPEEDUP_FLOOR = 4.0 if SMOKE else 10.0


def _run_once(design, engine="event"):
    epoch = design.epoch_cycles
    # 2x capacity keeps the queue full: one admission every epoch.
    process = ConstantRate(2.0 / epoch)
    return simulate_traffic(
        design,
        [TenantSpec("AlexNet", process)],
        duration_cycles=EPOCHS * epoch,
        queue_depth=10 * EPOCHS,
        drain=True,
        engine=engine,
    )


def test_serve_engine_speed(benchmark, record_artifact, record_bench_json):
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)

    started = time.perf_counter()
    result = benchmark.pedantic(lambda: _run_once(design), rounds=1, iterations=1)
    elapsed = time.perf_counter() - started

    tenant = result.tenants[0]
    assert tenant.arrivals == tenant.completions + tenant.drops
    assert tenant.completions >= EPOCHS  # saturated: one image per epoch

    requests_per_s = tenant.arrivals / elapsed
    artifact = "\n".join(
        [
            "serve engine speed (AlexNet 485T float32, saturated)",
            f"  simulated epochs:    {EPOCHS}",
            f"  simulated requests:  {tenant.arrivals}",
            f"  wall-clock:          {elapsed:.3f} s",
            f"  simulated req/s:     {requests_per_s:,.0f}",
            f"  completions:         {tenant.completions}",
        ]
    )
    record_artifact("bench_serve", artifact)
    record_bench_json(
        "serve",
        {
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "completions": tenant.completions,
            "wall_time_s": elapsed,
            "requests_per_s": requests_per_s,
        },
    )
    assert requests_per_s > 10_000, (
        f"serve engine too slow: {requests_per_s:,.0f} simulated req/s"
    )


def test_serve_fast_engine_speed(record_artifact, record_bench_json):
    """The epoch-batched fast path: bit-exact and an order faster.

    Both engines replay the identical saturated workload; the fast run
    must reproduce the event engine's ServeResult exactly (the whole
    reason it may be the default) and beat it by the mode's speedup
    floor.  The fast time is the best of three runs: the engine's cost
    is setup-dominated at smoke scale and a cold numpy import tax would
    otherwise masquerade as engine time.
    """
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)

    started = time.perf_counter()
    event_result = _run_once(design, engine="event")
    event_elapsed = time.perf_counter() - started

    fast_elapsed = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        fast_result = _run_once(design, engine="fast")
        fast_elapsed = min(fast_elapsed, time.perf_counter() - started)

    assert serve_result_to_dict(fast_result) == serve_result_to_dict(
        event_result
    ), "fast engine diverged from the event engine"

    tenant = fast_result.tenants[0]
    speedup = event_elapsed / fast_elapsed
    requests_per_s = tenant.arrivals / fast_elapsed
    artifact = "\n".join(
        [
            "serve fast-path speed (AlexNet 485T float32, saturated)",
            f"  simulated epochs:    {EPOCHS}",
            f"  simulated requests:  {tenant.arrivals}",
            f"  event wall-clock:    {event_elapsed:.3f} s",
            f"  fast wall-clock:     {fast_elapsed:.4f} s",
            f"  fast req/s:          {requests_per_s:,.0f}",
            f"  speedup vs event:    {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)",
            "  results bit-exact:   yes",
        ]
    )
    record_artifact("bench_serve_fast", artifact)
    record_bench_json(
        "serve_fast",
        {
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "wall_time_s": fast_elapsed,
            "event_wall_time_s": event_elapsed,
            "requests_per_s": requests_per_s,
            "speedup_vs_event": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast serve path only {speedup:.1f}x over the event engine "
        f"(floor {SPEEDUP_FLOOR:.0f}x)"
    )
