"""Table 4: SqueezeNet fixed16 Single- and Multi-CLP configurations.

Bands: Single-CLP epochs within 1% of the paper (349k / 331k cycles);
Multi-CLP epochs match or beat the paper's (185k / 145k).
"""

import pytest

from repro.analysis.tables import table4


@pytest.mark.parametrize(
    "scenario", ["485t_single", "690t_single", "485t_multi", "690t_multi"]
)
def test_table4(benchmark, record_artifact, scenario):
    result = benchmark.pedantic(
        table4, args=(scenario,), rounds=1, iterations=1
    )
    record_artifact(f"table4_{scenario}", result.format())
    if scenario.endswith("single"):
        assert result.overall_cycles_k == pytest.approx(
            result.paper_overall_cycles_k, rel=0.01
        )
        assert len(result.rows) == 1
    else:
        assert result.overall_cycles_k <= result.paper_overall_cycles_k
        # The paper limits SqueezeNet Multi-CLPs to six; so do we.
        assert 2 <= len(result.rows) <= 6
