"""Ablation D4: optimizing under an off-chip bandwidth budget.

Section 4.3: "we allow computation of some CLPs to be blocked by data
transfer ... in some cases [this] results in the highest-performing
designs overall".  This sweep optimizes the AlexNet float Multi-CLP
under successively tighter bandwidth budgets.

Bands: designs always respect the budget; throughput degrades
monotonically (within solver tolerance) as bandwidth shrinks; at the
platform-realistic 2 GB/s the design matches the unconstrained one
(the paper's designs need only ~1.4-1.5 GB/s).
"""

from repro.analysis.report import render_table
from repro.core.datatypes import FLOAT32
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp

BANDWIDTHS_GBPS = (2.0, 1.5, 1.0, 0.75, 0.5)


def measure():
    network = alexnet()
    unconstrained = optimize_multi_clp(
        network, budget_for("485t"), FLOAT32
    )
    sweep = []
    for gbps in BANDWIDTHS_GBPS:
        budget = budget_for("485t", bandwidth_gbps=gbps)
        design = optimize_multi_clp(network, budget, FLOAT32)
        epoch = design.epoch_cycles_under_bandwidth(budget.bytes_per_cycle())
        sweep.append((gbps, design, epoch))
    return unconstrained, sweep


def test_bandwidth_ablation(benchmark, record_artifact):
    unconstrained, sweep = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        (
            f"{gbps:.2f}",
            design.num_clps,
            design.bram,
            f"{epoch:.0f}",
            f"{design.required_bandwidth_gbps(100.0):.2f}",
        )
        for gbps, design, epoch in sweep
    ]
    table = render_table(
        ["budget GB/s", "CLPs", "BRAM", "epoch cycles", "needed GB/s"],
        rows,
        title=(
            "Ablation D4: AlexNet float 485T under bandwidth budgets "
            f"(unconstrained epoch {unconstrained.epoch_cycles})"
        ),
    )
    record_artifact("ablation_bandwidth", table)

    epochs = [epoch for _, _, epoch in sweep]
    for (gbps, design, epoch) in sweep:
        # The achieved epoch under the cap can include stalls (Section
        # 4.3 explicitly allows bandwidth-bound CLPs) but must stay a
        # valid positive schedule no slower than serial transfer allows.
        assert epoch >= design.epoch_cycles * 0.999
    # Tighter bandwidth never makes the accelerator faster.
    assert all(b >= a * 0.999 for a, b in zip(epochs, epochs[1:]))
    # Generous bandwidth recovers the unconstrained optimum (within the
    # relaxation step), and its requirement fits the budget outright.
    assert epochs[0] <= unconstrained.epoch_cycles * 1.03
    assert sweep[0][1].required_bandwidth_gbps(100.0) <= sweep[0][0] + 1e-6
    # Starved designs are genuinely bandwidth bound: over 1.2x slower
    # than the unconstrained epoch at 0.5 GB/s.
    assert epochs[-1] >= unconstrained.epoch_cycles * 1.2
