"""Table 3: AlexNet float resources and throughput at 100 MHz.

Bands: DSP counts match the paper exactly; throughput within 5%;
bandwidth within 25% (the paper's operating point trades BRAM for
bandwidth slightly differently along the same frontier); Multi-CLP beats
Single-CLP on both devices.
"""

import pytest

from repro.analysis.tables import table3


def test_table3(benchmark, record_artifact):
    result = benchmark.pedantic(table3, rounds=1, iterations=1)
    record_artifact("table3", result.format())
    by_scenario = {row.scenario: row for row in result.rows}
    for row in result.rows:
        assert row.dsp == row.paper.dsp, row.scenario
        assert row.throughput == pytest.approx(row.paper.throughput, rel=0.05)
        assert row.bandwidth_gbps == pytest.approx(
            row.paper.bandwidth_gbps, rel=0.25
        )
    assert (
        by_scenario["485t M-CLP"].throughput
        > by_scenario["485t S-CLP"].throughput
    )
    # Paper: 1.31x on the 485T and 1.54x on the 690T.
    speedup_485 = (
        by_scenario["485t M-CLP"].throughput
        / by_scenario["485t S-CLP"].throughput
    )
    speedup_690 = (
        by_scenario["690t M-CLP"].throughput
        / by_scenario["690t S-CLP"].throughput
    )
    assert 1.25 <= speedup_485 <= 1.45
    assert 1.40 <= speedup_690 <= 1.65
