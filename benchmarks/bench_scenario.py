"""Scenario-engine speed: failure drills must not tax the cluster loop.

Fault injection rides inside the cluster simulator's event loop (fail /
recover events, health-aware routing, queue evacuation), so a drill
should cost barely more than the plain run it wraps — capacity planning
under ``rack-loss+n1`` runs the same O(log n) probe ladder, just with
outage events mixed in.  This benchmark saturates a 4-replica AlexNet
485T fleet through the rack-loss drill and reports simulated requests
per second of host time, plus the overhead ratio against the identical
scenario-less run.

Bands: the drilled engine must stay above 10k simulated requests/s and
within 2x of the plain engine; a drained drill must conserve requests
exactly (arrivals == completions + drops + lost); the drill must
actually bite (requests lost, availability < 1); and the ``steady``
no-op must reproduce the plain run bit-exactly — the differential that
keeps the fault plumbing honest.

Numbers land twice: a human-readable artifact and machine-readable
``BENCH_scenario.json`` (req/s, overhead, losses) for the perf
trajectory CI tracks across commits.
"""

import dataclasses
import time

from conftest import bench_scale

from repro.core.datatypes import FLOAT32
from repro.fleet import DeviceSpec, simulate_fleet
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp
from repro.serve import ConstantRate, TenantSpec

EPOCHS = bench_scale(full=2_000, smoke=200)
REPLICAS = 4


def _run_once(device, scenario):
    epoch = device.resolve_epoch()
    # 2x aggregate capacity keeps every replica's queue full.
    process = ConstantRate(2.0 * REPLICAS / epoch)
    return simulate_fleet(
        device.replicated(REPLICAS),
        [TenantSpec("AlexNet", process)],
        duration_cycles=EPOCHS * epoch,
        balancer="power-of-two",
        queue_depth=10 * EPOCHS * REPLICAS,
        drain=True,
        scenario=scenario,
    )


def test_scenario_engine_speed(benchmark, record_artifact, record_bench_json):
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")

    started = time.perf_counter()
    drilled = benchmark.pedantic(
        lambda: _run_once(device, "rack-loss"), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started

    plain_started = time.perf_counter()
    plain = _run_once(device, None)
    plain_elapsed = time.perf_counter() - plain_started

    # Conservation through the drill (drained, so nothing in flight).
    tenant = drilled.tenants[0]
    assert tenant.arrivals == tenant.completions + tenant.drops + tenant.lost
    assert tenant.in_flight == 0

    # The drill bites: boards died, work was lost, the report says so.
    assert drilled.scenario == "rack-loss"
    assert tenant.lost > 0
    assert any(i.kind == "fault" for i in drilled.incidents)
    resilience = drilled.resilience
    assert resilience is not None and resilience.availability < 1.0

    # No-op differential: the steady drill IS the plain run.
    steady = _run_once(device, "steady")
    assert dataclasses.replace(
        steady, scenario=None, incidents=(), resilience=None
    ) == plain

    requests_per_s = tenant.arrivals / elapsed
    overhead = elapsed / plain_elapsed if plain_elapsed > 0 else 1.0

    artifact = "\n".join(
        [
            f"scenario engine speed ({REPLICAS}x AlexNet 485T, rack-loss, "
            "saturated)",
            f"  simulated epochs:    {EPOCHS}",
            f"  simulated requests:  {tenant.arrivals}",
            f"  wall-clock:          {elapsed:.3f} s",
            f"  simulated req/s:     {requests_per_s:,.0f}",
            f"  drill overhead:      {overhead:.2f}x plain run",
            f"  requests lost:       {tenant.lost}",
            f"  availability:        {resilience.availability:.2%}",
            f"  incidents:           {len(drilled.incidents)}",
        ]
    )
    record_artifact("bench_scenario", artifact)
    record_bench_json(
        "scenario",
        {
            "replicas": REPLICAS,
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "wall_time_s": elapsed,
            "requests_per_s": requests_per_s,
            "overhead_vs_plain": overhead,
            "requests_lost": tenant.lost,
            "availability": resilience.availability,
            "incidents": len(drilled.incidents),
        },
    )
    assert requests_per_s > 10_000, (
        f"scenario engine too slow: {requests_per_s:,.0f} simulated req/s"
    )
    assert overhead < 2.0, (
        f"failure drill costs {overhead:.2f}x the plain run; fault events "
        "should be cheap against the epoch event chains"
    )
