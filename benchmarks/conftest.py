"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper,
asserts the reproduction bands (who wins, by roughly what factor), and
writes the formatted artifact to ``benchmarks/results/`` so the numbers
recorded in EXPERIMENTS.md can be re-derived at any time.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: ``BENCH_SMOKE=1`` shrinks workloads so CI can run the perf harness on
#: every push (trajectory tracking, not absolute numbers).  The emitted
#: JSON records the mode so a smoke datapoint is never compared against
#: a full one.
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")


def bench_scale(full: int, smoke: int) -> int:
    """Workload size for the current mode (full run vs CI smoke)."""
    return smoke if SMOKE else full


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Write a named artifact and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture
def record_bench_json(results_dir):
    """Write machine-readable benchmark numbers (``BENCH_<name>.json``).

    The perf trajectory lives in these files: CI runs the benchmarks in
    smoke mode and uploads the JSON as artifacts, so req/s and wall time
    can be charted across commits instead of eyeballed in text logs.
    """

    def _record(name: str, payload: dict) -> None:
        record = {"benchmark": name, "smoke": SMOKE}
        record.update(payload)
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"[bench json written to {path}]")

    return _record
