"""Shared helpers for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper,
asserts the reproduction bands (who wins, by roughly what factor), and
writes the formatted artifact to ``benchmarks/results/`` so the numbers
recorded in EXPERIMENTS.md can be re-derived at any time.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Write a named artifact and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
