"""Table 5: SqueezeNet fixed16 resources and throughput at 170 MHz.

Bands: DSP within 3% of the paper; throughput within 5%; the paper's
headline 1.91x / 2.33x Multi-over-Single speedups hold within a band;
bandwidth magnitudes land in the paper's 15-30 GB/s regime.
"""

import pytest

from repro.analysis.tables import table5


def test_table5(benchmark, record_artifact):
    result = benchmark.pedantic(table5, rounds=1, iterations=1)
    record_artifact("table5", result.format())
    by_scenario = {row.scenario: row for row in result.rows}
    for row in result.rows:
        assert row.dsp == pytest.approx(row.paper.dsp, rel=0.03), row.scenario
        assert row.throughput == pytest.approx(row.paper.throughput, rel=0.05)
        assert 10.0 <= row.bandwidth_gbps <= 32.0
    speedup_485 = (
        by_scenario["485t M-CLP"].throughput
        / by_scenario["485t S-CLP"].throughput
    )
    speedup_690 = (
        by_scenario["690t M-CLP"].throughput
        / by_scenario["690t S-CLP"].throughput
    )
    assert 1.8 <= speedup_485 <= 2.1  # paper: 1.91x
    assert 2.2 <= speedup_690 <= 2.5  # paper: 2.33x
