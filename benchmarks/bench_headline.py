"""Headline claim: Multi-CLP speedup over Single-CLP per network.

The abstract's numbers are utilization-ratio based (3.8x for AlexNet
fixed16 on the 690T is the 23.7% -> 90.6% utilization improvement).  We
report both the utilization ratio and the raw throughput speedup, and
assert the bands: AlexNet fixed16 utilization ratio >= 3.3x, SqueezeNet
and GoogLeNet >= 1.8x, VGGNet-E ~1.0x.
"""

from repro.analysis.report import render_table
from repro.analysis.tables import design_for
from repro.analysis import paper_data


def measure():
    rows = []
    cases = [
        ("alexnet", "690t", "fixed16"),
        ("squeezenet", "690t", "fixed16"),
        ("googlenet", "690t", "fixed16"),
        ("vggnet-e", "485t", "float32"),
    ]
    for network, part, dtype in cases:
        single = design_for(network, part, dtype, single=True)
        multi = design_for(network, part, dtype, single=False)
        rows.append(
            {
                "network": network,
                "throughput_speedup": single.epoch_cycles / multi.epoch_cycles,
                "utilization_ratio": multi.arithmetic_utilization
                / single.arithmetic_utilization,
                "paper": paper_data.HEADLINE_SPEEDUPS[network],
            }
        )
    return rows


def test_headline_speedups(benchmark, record_artifact):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["network", "throughput speedup", "utilization ratio", "paper claim"],
        [
            (
                r["network"],
                f"{r['throughput_speedup']:.2f}x",
                f"{r['utilization_ratio']:.2f}x",
                f"{r['paper']:.2f}x",
            )
            for r in rows
        ],
        title="Headline Multi-CLP vs Single-CLP improvements",
    )
    record_artifact("headline_speedups", table)
    by_net = {r["network"]: r for r in rows}
    assert by_net["alexnet"]["utilization_ratio"] >= 3.3  # paper: 3.8x
    assert by_net["squeezenet"]["throughput_speedup"] >= 1.8  # paper: 2.2x
    assert by_net["googlenet"]["throughput_speedup"] >= 1.8  # paper: 2.0x
    assert 1.0 <= by_net["vggnet-e"]["throughput_speedup"] <= 1.1  # 1.01x
