"""Cluster-engine speed: simulated fleet requests per wall-clock second.

The fleet simulator multiplies the serving engine's work by the replica
count (N epoch boundary chains, balancer routing on every arrival), and
the capacity planner runs O(log n) whole fleet simulations per probe —
so the cluster loop's host throughput bounds how big a provisioning
study can be.  This benchmark saturates a 4-replica AlexNet 485T fleet
through the power-of-two balancer and reports simulated requests per
second of host time, plus the end-to-end wall time of one capacity
plan.

Bands: the cluster engine must stay above 10k simulated requests/s, a
drained run must conserve requests exactly across replicas, and the
1-replica differential must hold (the engine is only trusted because it
reduces to ``repro.serve``).

Numbers land twice: a human-readable artifact and machine-readable
``BENCH_fleet.json`` (req/s, wall time) for the perf trajectory CI
tracks across commits.
"""

import time

from conftest import SMOKE, bench_scale

from repro.core.datatypes import FLOAT32
from repro.core.serialize import fleet_result_to_dict
from repro.fleet import DeviceSpec, plan_capacity, simulate_fleet
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp
from repro.serve import ConstantRate, SLOSpec, TenantSpec, simulate_traffic

EPOCHS = bench_scale(full=2_000, smoke=200)
REPLICAS = 4
# See bench_serve: the 10x fast-path promise is judged at full scale;
# smoke runs are setup-dominated.
SPEEDUP_FLOOR = 4.0 if SMOKE else 10.0


def _run_once(device, balancer="power-of-two", engine="event"):
    epoch = device.resolve_epoch()
    # 2x aggregate capacity keeps every replica's queue full.
    process = ConstantRate(2.0 * REPLICAS / epoch)
    return simulate_fleet(
        device.replicated(REPLICAS),
        [TenantSpec("AlexNet", process)],
        duration_cycles=EPOCHS * epoch,
        balancer=balancer,
        queue_depth=10 * EPOCHS * REPLICAS,
        drain=True,
        engine=engine,
    )


def test_fleet_engine_speed(benchmark, record_artifact, record_bench_json):
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")

    started = time.perf_counter()
    result = benchmark.pedantic(lambda: _run_once(device), rounds=1, iterations=1)
    elapsed = time.perf_counter() - started

    tenant = result.tenants[0]
    assert tenant.arrivals == tenant.completions + tenant.drops
    # Saturated: every replica admits ~one image per epoch.
    assert tenant.completions >= REPLICAS * (EPOCHS - 1)
    assert result.num_replicas == REPLICAS

    requests_per_s = tenant.arrivals / elapsed

    # One capacity plan end-to-end (the operation dse cost amortizes).
    epoch = device.resolve_epoch()
    capacity_rps = 1e8 / epoch
    plan_started = time.perf_counter()
    plan = plan_capacity(
        device,
        2.5 * capacity_rps,
        SLOSpec(max_drop_rate=0.0),
        max_replicas=8,
        duration_ms=EPOCHS * epoch / 1e8 * 1e3 / 4,
        # Shallow queues: a board running at its ceiling must shed load,
        # so the drop-free SLO genuinely needs ~rate/capacity boards.
        queue_depth=4,
    )
    plan_elapsed = time.perf_counter() - plan_started
    assert plan.meets and plan.replicas >= 3

    # Differential spot check: 1 replica == the single-device engine.
    process = ConstantRate(1.5 / epoch)
    window = 50 * epoch
    solo = simulate_traffic(
        design, [TenantSpec("AlexNet", process)], window, seed=3, drain=True
    )
    one = simulate_fleet(
        device, [TenantSpec("AlexNet", process)], window, seed=3, drain=True
    )
    assert one.tenants == solo.tenants

    artifact = "\n".join(
        [
            f"fleet engine speed ({REPLICAS}x AlexNet 485T, power-of-two, saturated)",
            f"  simulated epochs:    {EPOCHS}",
            f"  simulated requests:  {tenant.arrivals}",
            f"  wall-clock:          {elapsed:.3f} s",
            f"  simulated req/s:     {requests_per_s:,.0f}",
            f"  completions:         {tenant.completions}",
            f"  capacity plan:       {plan.replicas} replicas "
            f"in {plan_elapsed:.3f} s ({len(plan.probes)} probes)",
        ]
    )
    record_artifact("bench_fleet", artifact)
    record_bench_json(
        "fleet",
        {
            "replicas": REPLICAS,
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "completions": tenant.completions,
            "wall_time_s": elapsed,
            "requests_per_s": requests_per_s,
            "plan_wall_time_s": plan_elapsed,
            "plan_replicas": plan.replicas,
            "plan_probes": len(plan.probes),
        },
    )
    assert requests_per_s > 10_000, (
        f"fleet engine too slow: {requests_per_s:,.0f} simulated req/s"
    )


def test_fleet_fast_engine_speed(record_artifact, record_bench_json):
    """The fleet fast path: bit-exact and an order faster.

    Round-robin is the fastest *eligible* policy (power-of-two on >1
    replica is load-dependent and silently runs the event engine, which
    would make this benchmark measure nothing).  Both engines replay
    the identical saturated 4-replica workload; the fast run must
    reproduce the FleetResult exactly and beat the event engine by the
    mode's speedup floor.  Fast time is the best of three runs.
    """
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")

    started = time.perf_counter()
    event_result = _run_once(device, balancer="round-robin", engine="event")
    event_elapsed = time.perf_counter() - started

    fast_elapsed = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        fast_result = _run_once(
            device, balancer="round-robin", engine="fast"
        )
        fast_elapsed = min(fast_elapsed, time.perf_counter() - started)

    assert fleet_result_to_dict(fast_result) == fleet_result_to_dict(
        event_result
    ), "fleet fast engine diverged from the event engine"

    tenant = fast_result.tenants[0]
    speedup = event_elapsed / fast_elapsed
    requests_per_s = tenant.arrivals / fast_elapsed
    artifact = "\n".join(
        [
            f"fleet fast-path speed ({REPLICAS}x AlexNet 485T, "
            "round-robin, saturated)",
            f"  simulated epochs:    {EPOCHS}",
            f"  simulated requests:  {tenant.arrivals}",
            f"  event wall-clock:    {event_elapsed:.3f} s",
            f"  fast wall-clock:     {fast_elapsed:.4f} s",
            f"  fast req/s:          {requests_per_s:,.0f}",
            f"  speedup vs event:    {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)",
            "  results bit-exact:   yes",
        ]
    )
    record_artifact("bench_fleet_fast", artifact)
    record_bench_json(
        "fleet_fast",
        {
            "replicas": REPLICAS,
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "wall_time_s": fast_elapsed,
            "event_wall_time_s": event_elapsed,
            "requests_per_s": requests_per_s,
            "speedup_vs_event": speedup,
            "speedup_floor": SPEEDUP_FLOOR,
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fleet fast path only {speedup:.1f}x over the event engine "
        f"(floor {SPEEDUP_FLOOR:.0f}x)"
    )
