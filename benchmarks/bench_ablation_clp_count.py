"""Ablation D3: how the CLP-count cap affects throughput.

Section 4.1 argues *against* one-CLP-per-layer designs and for a small
number of CLPs; Section 4.3 notes capping the CLP count speeds up the
search.  This sweep quantifies the diminishing returns: most of the
Multi-CLP win arrives by 3-4 CLPs.

Bands: epoch never increases with more allowed CLPs; 2 CLPs already
recover >=50% of the 6-CLP improvement over Single-CLP for AlexNet
fixed16 (the paper's highest-variance case) and 3 CLPs >=95% of it.
"""

from repro.analysis.report import render_table
from repro.core.datatypes import FIXED16
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp

CLP_COUNTS = (1, 2, 3, 4, 6, 8)


def measure():
    network = alexnet()
    budget = budget_for("690t")
    return {
        count: optimize_multi_clp(
            network, budget, FIXED16, max_clps=count
        ).epoch_cycles
        for count in CLP_COUNTS
    }


def test_clp_count_ablation(benchmark, record_artifact):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    single = results[1]
    best = min(results.values())
    table = render_table(
        ["max CLPs", "epoch cycles", "speedup vs single"],
        [
            (count, cycles, f"{single / cycles:.2f}x")
            for count, cycles in sorted(results.items())
        ],
        title="Ablation D3: CLP count cap (AlexNet fixed16, 690T)",
    )
    record_artifact("ablation_clp_count", table)
    ordered = [results[c] for c in sorted(results)]
    assert all(b <= a for a, b in zip(ordered, ordered[1:]))
    gain_two = single - results[2]
    gain_three = single - results[3]
    gain_full = single - best
    assert gain_full > 0
    assert gain_two >= 0.5 * gain_full
    assert gain_three >= 0.95 * gain_full
