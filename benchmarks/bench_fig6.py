"""Figure 6: BRAM capacity vs off-chip bandwidth tradeoff curves.

Bands: both curves are monotone (more BRAM never needs more bandwidth);
the paper's named operating points A-D are achievable — at each point's
BRAM budget our curve reaches a bandwidth within 2x of the paper's
(the curves' knees fall in the same region).
"""

import pytest

from repro.analysis.figures import figure6
from repro.analysis import paper_data


def test_figure6(benchmark, record_artifact):
    curves = benchmark.pedantic(figure6, rounds=1, iterations=1)
    text = "\n\n".join(curve.format() for curve in curves)
    record_artifact("figure6", text)
    by_part = {curve.label: curve for curve in curves}
    for curve in curves:
        bws = [bw for _, bw in curve.points]
        assert bws == sorted(bws, reverse=True)
        assert len(curve.points) >= 3, "curve should expose a real tradeoff"
    # Named paper points: our frontier at the same BRAM budget should be
    # within 2x of the paper's bandwidth (same knee region).
    checks = {
        "A (485t iso-bandwidth)": "Multi-CLP, 485t",
        "C (690t iso-bandwidth)": "Multi-CLP, 690t",
    }
    for name, label in checks.items():
        bram, paper_bw = paper_data.FIGURE6_POINTS[name]
        ours = by_part[label].bandwidth_at(bram)
        assert ours is not None, name
        assert ours == pytest.approx(paper_bw, rel=1.0), name
    # The 690T (faster design, more CLPs) needs more bandwidth than the
    # 485T at comparable buffer sizes, as in the paper's figure.
    bram_485 = by_part["Multi-CLP, 485t"].points[-1][0]
    bw_485 = by_part["Multi-CLP, 485t"].bandwidth_at(bram_485)
    bw_690 = by_part["Multi-CLP, 690t"].bandwidth_at(bram_485)
    if bw_690 is not None:
        assert bw_690 >= bw_485 * 0.8
