"""Observability overhead: what telemetry + tracing cost the event loop.

Observability is opt-in precisely because it is not free — the sampler
rides the event heap and the tracer touches every request transition.
This benchmark replays the saturated serve workload three ways (bare,
telemetry-only, telemetry + trace) and bounds the slowdown, asserting
along the way that the instrumented runs stay scalar-identical to the
bare one (the bit-neutrality contract).

Numbers land in ``BENCH_obs.json`` (overhead ratios, instrumented
req/s) for the perf trajectory CI tracks across commits.
"""

import time

from conftest import SMOKE, bench_scale

from repro.core.datatypes import FLOAT32
from repro.core.serialize import serve_result_to_dict
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.obs import ObsSpec, TraceRecorder
from repro.opt import optimize_multi_clp
from repro.serve import ConstantRate, TenantSpec, simulate_traffic

EPOCHS = bench_scale(full=2_000, smoke=200)
# Generous bound: sampling + tracing may not quadruple event-loop time.
# Typical cost is well under 2x at full scale; smoke scale is
# setup-dominated (the sampler schedule barely amortizes over a few
# hundred arrivals), so it gets extra slack for noisy CI machines.
OVERHEAD_CEILING = 6.0 if SMOKE else 4.0


def _run_once(design, obs=None):
    epoch = design.epoch_cycles
    process = ConstantRate(2.0 / epoch)
    return simulate_traffic(
        design,
        [TenantSpec("AlexNet", process)],
        duration_cycles=EPOCHS * epoch,
        queue_depth=10 * EPOCHS,
        drain=True,
        engine="event",
        obs=obs,
    )


def _scalars(result):
    record = serve_result_to_dict(result)
    record.pop("timeseries", None)
    return record


def _best_of(runs, fn):
    best, result = float("inf"), None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_obs_overhead(record_artifact, record_bench_json):
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)

    bare_s, bare = _best_of(3, lambda: _run_once(design))
    telem_s, telem = _best_of(
        3, lambda: _run_once(design, obs=ObsSpec(timeseries=True))
    )
    full_s, full = _best_of(
        3,
        lambda: _run_once(
            design, obs=ObsSpec(timeseries=True, trace=TraceRecorder())
        ),
    )

    assert _scalars(telem) == _scalars(bare), "telemetry changed the run"
    assert _scalars(full) == _scalars(bare), "tracing changed the run"
    assert telem.timeseries is not None and len(telem.timeseries.times) > 0

    telem_overhead = telem_s / bare_s
    full_overhead = full_s / bare_s
    tenant = full.tenants[0]
    requests_per_s = tenant.arrivals / full_s
    artifact = "\n".join(
        [
            "observability overhead (AlexNet 485T float32, saturated, event engine)",
            f"  simulated epochs:       {EPOCHS}",
            f"  simulated requests:     {tenant.arrivals}",
            f"  bare wall-clock:        {bare_s:.3f} s",
            f"  +telemetry:             {telem_s:.3f} s ({telem_overhead:.2f}x)",
            f"  +telemetry+trace:       {full_s:.3f} s ({full_overhead:.2f}x)",
            f"  instrumented req/s:     {requests_per_s:,.0f}",
            f"  overhead ceiling:       {OVERHEAD_CEILING:.0f}x",
            "  scalars bit-identical:  yes",
        ]
    )
    record_artifact("bench_obs", artifact)
    record_bench_json(
        "obs",
        {
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "wall_time_s": full_s,
            "bare_wall_time_s": bare_s,
            "telemetry_overhead_x": telem_overhead,
            "full_overhead_x": full_overhead,
            "requests_per_s": requests_per_s,
        },
    )
    assert full_overhead < OVERHEAD_CEILING, (
        f"observability costs {full_overhead:.2f}x "
        f"(ceiling {OVERHEAD_CEILING:.0f}x)"
    )
