"""Ablation D1: the layer-ordering heuristic of OptimizeCompute.

The paper prunes the exponential assignment space by only grouping
layers adjacent in a heuristic order (Section 4.3).  This ablation
compares natural network order, compute-to-data ratio, and the (N, M)
nearest-neighbour chain on GoogLeNet fixed16 — the hardest case (57
layers, strong dimension diversity).

Band: at least one similarity-based order (nm-distance or
compute-to-data) matches or beats natural order; all orders stay within
15% of the best, showing the contiguity restriction is robust.
"""

from repro.analysis.report import render_table
from repro.core.datatypes import FIXED16
from repro.fpga.parts import budget_for
from repro.networks import googlenet
from repro.opt import optimize_multi_clp

ORDERINGS = ("natural", "compute-to-data", "nm-distance")


def measure():
    network = googlenet()
    budget = budget_for("690t")
    results = {}
    for ordering in ORDERINGS:
        design = optimize_multi_clp(network, budget, FIXED16, ordering=ordering)
        results[ordering] = design.epoch_cycles
    return results


def test_ordering_ablation(benchmark, record_artifact):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    best = min(results.values())
    table = render_table(
        ["ordering", "epoch cycles", "vs best"],
        [
            (name, cycles, f"{cycles / best:.3f}x")
            for name, cycles in sorted(results.items(), key=lambda kv: kv[1])
        ],
        title="Ablation D1: layer ordering heuristic (GoogLeNet fixed16, 690T)",
    )
    record_artifact("ablation_ordering", table)
    similarity_best = min(
        results["nm-distance"], results["compute-to-data"]
    )
    assert similarity_best <= results["natural"] * 1.001
    for cycles in results.values():
        assert cycles <= best * 1.15
