"""Optimizer performance microbenchmarks.

The paper's C++ optimizer "can complete an optimization of a Multi-CLP
accelerator for the GoogLeNet network in several minutes" (Section 4.3).
Our Python implementation must stay laptop-interactive: GoogLeNet within
tens of seconds, AlexNet within seconds.  These are true repeated-timing
benchmarks (no caching).
"""

from repro.core.datatypes import FIXED16, FLOAT32
from repro.fpga.parts import budget_for
from repro.networks import alexnet, googlenet
from repro.opt import optimize_multi_clp, optimize_single_clp
from repro.opt.compute import SegmentSearch
from repro.opt.heuristics import order_by_nm_distance


def test_segment_search_build(benchmark):
    layers = order_by_nm_distance(list(googlenet()))

    def build():
        return SegmentSearch(layers, FIXED16, dsp_budget=2880)

    search = benchmark.pedantic(build, rounds=3, iterations=1)
    assert search.grid_count > 1000


def test_segment_search_query(benchmark):
    layers = order_by_nm_distance(list(alexnet()))
    search = SegmentSearch(layers, FLOAT32, dsp_budget=2240)

    def query():
        return search.candidates(2_200_000, max_clps=6)

    candidates = benchmark(query)
    assert candidates


def test_alexnet_single_clp_end_to_end(benchmark):
    network = alexnet()
    budget = budget_for("485t")

    def run():
        return optimize_single_clp(network, budget, FLOAT32)

    design = benchmark.pedantic(run, rounds=3, iterations=1)
    assert design.epoch_cycles == 2005892


def test_googlenet_multi_clp_end_to_end(benchmark):
    network = googlenet()
    budget = budget_for("690t")

    def run():
        return optimize_multi_clp(network, budget, FIXED16)

    design = benchmark.pedantic(run, rounds=1, iterations=1)
    assert design.num_clps >= 2
