"""Gray failures: straggler storms, detection lag, and goodput retention.

A straggler storm is the gray failure the oracle health check cannot
see: half the fleet throttles to 1/8 speed, every board still answers,
and a blind balancer keeps feeding the slow half while queues build.
This benchmark runs the same storm (50% of a 4-replica AlexNet fleet
slowed 8x for 40% of the run) three ways:

* **blind** — no detector: round-robin keeps routing to stragglers;
* **oracle** — instant perfect knowledge: degraded boards leave the
  rotation the cycle they slow down (the upper bound);
* **probe** — realistic detection: periodic health probes time out on
  slow boards, outlier ejection pulls them, request timeouts fail
  stuck work over — all with real detection lag.

The contract: probe-based detection must retain at least 90% of the
oracle's goodput (``RETENTION_FLOOR``), and must beat flying blind.
Numbers land in ``BENCH_grayfail.json`` — ``goodput_retention`` plus
its floor ride along so ``scripts/track_history.py check`` re-asserts
the recovery contract from the committed history, not just this run.
"""

import time

from conftest import bench_scale

from repro.core.datatypes import FLOAT32
from repro.fleet import DetectorSpec, DeviceSpec, simulate_fleet
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp
from repro.scenario import DegradedReplica, ScenarioSpec
from repro.serve import PoissonArrivals, TenantSpec, pipeline_latency_cycles

EPOCHS = bench_scale(full=800, smoke=200)
REPLICAS = 4
STORM_FRACTION = 0.5
SLOWDOWN = 8.0
STORM_START = 0.3
STORM_DURATION = 0.4
RETENTION_FLOOR = 0.9
FREQUENCY_HZ = 100e6


def _storm():
    return ScenarioSpec(
        name="straggler-bench",
        faults=(
            DegradedReplica(
                fraction=STORM_FRACTION,
                slowdown=SLOWDOWN,
                start=STORM_START,
                duration=STORM_DURATION,
            ),
        ),
    )


def _deadline_ms(device):
    # Zero-queueing pipeline latency plus a 6-epoch queueing allowance:
    # generous in calm weather, unreachable through an 8x straggler —
    # so ``good_completions`` is the goodput that separates
    # routing around the storm from queueing into it.
    epoch = device.resolve_epoch()
    floor = pipeline_latency_cycles(device.design, device.bytes_per_cycle)
    return (floor + 6.0 * epoch) / FREQUENCY_HZ * 1e3


def _run_once(device, detector):
    epoch = device.resolve_epoch()
    horizon = EPOCHS * epoch
    # 45% fleet utilization: the storm leaves the surviving half at 90%,
    # so routing around stragglers sustains the load and routing into
    # them does not.
    process = PoissonArrivals(0.45 * REPLICAS / epoch)
    return simulate_fleet(
        device.replicated(REPLICAS),
        [TenantSpec("AlexNet", process, deadline_ms=_deadline_ms(device))],
        duration_cycles=horizon,
        seed=0,
        queue_depth=10**6,
        scenario=_storm(),
        detector=detector,
    )


def _conserved(result):
    tenant = result.tenants[0]
    return tenant.arrivals == (
        tenant.completions + tenant.drops + tenant.lost
        + tenant.timed_out + tenant.in_flight
    )


def test_gray_failure_detection(benchmark, record_artifact,
                                record_bench_json):
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")
    epoch_ms = device.resolve_epoch() / FREQUENCY_HZ * 1e3

    probe_spec = DetectorSpec(
        mode="probe",
        request_timeout_ms=8.0 * epoch_ms,
        max_failovers=2,
    )

    started = time.perf_counter()
    probe = benchmark.pedantic(
        lambda: _run_once(device, probe_spec), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started

    oracle = _run_once(device, DetectorSpec(mode="oracle"))
    blind = _run_once(device, None)

    for result in (probe, oracle, blind):
        assert _conserved(result), "requests not conserved"

    # Identical arrival substreams: goodput compares like for like.
    assert probe.total_arrivals == oracle.total_arrivals
    assert probe.total_arrivals == blind.total_arrivals

    oracle_goodput = sum(t.good_completions for t in oracle.tenants)
    probe_goodput = sum(t.good_completions for t in probe.tenants)
    blind_goodput = sum(t.good_completions for t in blind.tenants)
    retention = probe_goodput / oracle_goodput if oracle_goodput else 0.0
    blind_retention = (
        blind_goodput / oracle_goodput if oracle_goodput else 0.0
    )
    mttd = probe.resilience.mean_time_to_detect_cycles
    mttd_ms = None if mttd is None else mttd / FREQUENCY_HZ * 1e3
    tenant = probe.tenants[0]
    requests_per_s = tenant.arrivals / elapsed

    artifact = "\n".join(
        [
            f"gray-failure detection ({REPLICAS}x AlexNet 485T, "
            f"{STORM_FRACTION:.0%} of fleet slowed {SLOWDOWN:g}x)",
            f"  simulated epochs:      {EPOCHS}",
            f"  simulated requests:    {tenant.arrivals}",
            f"  wall-clock (probe):    {elapsed:.3f} s",
            f"  simulated req/s:       {requests_per_s:,.0f}",
            f"  oracle goodput:        {oracle_goodput}",
            f"  probe goodput:         {probe_goodput} "
            f"(retention {retention:.3f}, floor {RETENTION_FLOOR})",
            f"  blind goodput:         {blind_goodput} "
            f"(retention {blind_retention:.3f})",
            f"  probe timed-out:       {probe.total_timed_out}",
            f"  probe failed-over:     {probe.total_failed_over}",
            "  mean time to detect:   "
            + ("-" if mttd_ms is None else f"{mttd_ms:.2f} ms"),
        ]
    )
    record_artifact("bench_grayfail", artifact)
    record_bench_json(
        "grayfail",
        {
            "replicas": REPLICAS,
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "wall_time_s": elapsed,
            "requests_per_s": requests_per_s,
            "goodput_retention": retention,
            "retention_floor": RETENTION_FLOOR,
            "blind_retention": blind_retention,
            "timed_out": probe.total_timed_out,
            "failed_over": probe.total_failed_over,
            "mean_time_to_detect_ms": mttd_ms,
        },
    )
    assert mttd_ms is not None and mttd_ms > 0.0, (
        "probe detection never recorded a detection lag; the storm "
        "should be detected late, not instantly"
    )
    assert retention >= RETENTION_FLOOR, (
        f"probe detection retained only {retention:.3f} of oracle "
        f"goodput (floor {RETENTION_FLOOR})"
    )
    assert blind_retention < retention, (
        f"blind routing retained {blind_retention:.3f} vs probe "
        f"{retention:.3f}; detection should beat no detection"
    )
    assert requests_per_s > 1_000, (
        f"gray-failure engine too slow: {requests_per_s:,.0f} "
        "simulated req/s"
    )
