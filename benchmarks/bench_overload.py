"""Overload control: retry storms, admission, and goodput retention.

A retry storm is the canonical metastable failure: a transient capacity
loss fills the queues, clients time out and retry, the retries keep the
queues full after capacity returns, and the system never recovers
without intervention.  This benchmark runs the same rack-failure drill
(75% of a 2-replica AlexNet fleet for 15% of the run) twice:

* **naive** clients — FIFO queues, unlimited immediate retries, no
  admission control — the configuration that wedges;
* **controlled** clients — EDF dispatch, token-bucket admission at 95%
  of fleet capacity, 3 capped decorrelated-jitter retry attempts.

Both runs carry a deadline of pipeline latency plus six epochs so
goodput (completions that made their deadline) is well defined.  The bands: the naive fleet must
retain under 50% of its pre-fault goodput after the fault clears (the
storm is real), the controlled fleet at least 90% (the control works),
and retry amplification under control must stay below the naive run's.

Numbers land in ``BENCH_overload.json`` — ``goodput_retention`` plus
its floor ride along so ``scripts/track_history.py check`` re-asserts
the recovery contract from the committed history, not just this run.
"""

import time

from conftest import bench_scale

from repro.core.datatypes import FLOAT32
from repro.fleet import DeviceSpec, simulate_fleet
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp
from repro.scenario import RackFailure, ScenarioSpec
from repro.serve import (
    AdmissionPolicy,
    OverloadSpec,
    PoissonArrivals,
    RetryPolicy,
    TenantSpec,
    pipeline_latency_cycles,
)

EPOCHS = bench_scale(full=1_000, smoke=250)
REPLICAS = 2
FAULT_START = 0.25
FAULT_END = 0.40
RETENTION_FLOOR = 0.9
FREQUENCY_HZ = 100e6


def _storm(epoch):
    return ScenarioSpec(
        name="storm-bench",
        faults=(
            RackFailure(
                fraction=0.75,
                start=FAULT_START,
                duration=FAULT_END - FAULT_START,
            ),
        ),
    )


def _run_once(device, overload):
    epoch = device.resolve_epoch()
    horizon = EPOCHS * epoch
    process = PoissonArrivals(0.9 * REPLICAS / epoch)
    result = simulate_fleet(
        device.replicated(REPLICAS),
        [TenantSpec("AlexNet", process)],
        duration_cycles=horizon,
        seed=0,
        queue_depth=32,
        scenario=_storm(epoch),
        overload=overload,
    )
    report = result.overload
    pre = report.goodput_between(0, FAULT_START * horizon)
    pre_rate = pre / (FAULT_START * horizon)
    recover_start = (FAULT_END + 0.1) * horizon
    post = report.goodput_between(recover_start, horizon)
    post_rate = post / (horizon - recover_start)
    retention = post_rate / pre_rate if pre_rate > 0 else 0.0
    return result, retention


def _amplification(result):
    tenant = result.tenants[0]
    originals = tenant.arrivals - tenant.retries - tenant.hedges
    return tenant.arrivals / originals if originals else 1.0


def test_overload_control_speed(benchmark, record_artifact,
                                record_bench_json):
    design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)
    device = DeviceSpec(design, part="485t")
    epoch = device.resolve_epoch()
    epoch_ms = epoch / FREQUENCY_HZ * 1e3
    # Deadline = zero-queueing pipeline latency plus a 6-epoch queueing
    # allowance; anchored to the design's depth so the band transfers
    # across networks with different pipeline lengths.
    floor_ms = pipeline_latency_cycles(design) / FREQUENCY_HZ * 1e3
    deadline_ms = floor_ms + 6 * epoch_ms

    naive = OverloadSpec(
        queue_policy="fifo",
        retry=RetryPolicy(max_attempts=0, backoff="fixed",
                          base_ms=0.5 * epoch_ms, cap_ms=0.5 * epoch_ms,
                          jitter="none"),
        deadline_ms=deadline_ms,
    )
    controlled = OverloadSpec(
        queue_policy="edf",
        admission=AdmissionPolicy(
            rate_rps=0.95 * REPLICAS * FREQUENCY_HZ / epoch, burst=8.0),
        retry=RetryPolicy(max_attempts=3, backoff="exponential",
                          base_ms=epoch_ms, cap_ms=16 * epoch_ms,
                          jitter="decorrelated"),
        deadline_ms=deadline_ms,
    )

    started = time.perf_counter()
    controlled_run, controlled_retention = benchmark.pedantic(
        lambda: _run_once(device, controlled), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started

    naive_run, naive_retention = _run_once(device, naive)

    # Conservation through storms on both configurations.
    for result in (controlled_run, naive_run):
        tenant = result.tenants[0]
        assert tenant.arrivals == (
            tenant.completions + tenant.drops + tenant.lost
            + tenant.rejected + tenant.expired + tenant.in_flight
        )

    naive_amp = _amplification(naive_run)
    controlled_amp = _amplification(controlled_run)
    tenant = controlled_run.tenants[0]
    requests_per_s = tenant.arrivals / elapsed

    artifact = "\n".join(
        [
            f"overload control ({REPLICAS}x AlexNet 485T, 50% rack loss, "
            "retry storm)",
            f"  simulated epochs:      {EPOCHS}",
            f"  simulated requests:    {tenant.arrivals}",
            f"  wall-clock:            {elapsed:.3f} s",
            f"  simulated req/s:       {requests_per_s:,.0f}",
            f"  naive retention:       {naive_retention:.2f} "
            "(fifo, unlimited immediate retries)",
            f"  controlled retention:  {controlled_retention:.2f} "
            "(edf + admission + capped jittered backoff)",
            f"  naive retry amp:       {naive_amp:.2f}x",
            f"  controlled retry amp:  {controlled_amp:.2f}x",
            f"  rejected (controlled): {tenant.rejected}",
            f"  expired (controlled):  {tenant.expired}",
        ]
    )
    record_artifact("bench_overload", artifact)
    record_bench_json(
        "overload",
        {
            "replicas": REPLICAS,
            "simulated_epochs": EPOCHS,
            "simulated_requests": tenant.arrivals,
            "wall_time_s": elapsed,
            "requests_per_s": requests_per_s,
            "goodput_retention": controlled_retention,
            "retention_floor": RETENTION_FLOOR,
            "naive_retention": naive_retention,
            "retry_amplification_naive": naive_amp,
            "retry_amplification_controlled": controlled_amp,
        },
    )
    assert naive_retention < 0.5, (
        f"naive retries retained {naive_retention:.2f} of pre-fault "
        "goodput; the storm should be metastable"
    )
    assert controlled_retention >= RETENTION_FLOOR, (
        f"overload control retained only {controlled_retention:.2f} of "
        f"pre-fault goodput (floor {RETENTION_FLOOR})"
    )
    assert controlled_amp < naive_amp, (
        f"capped backoff amplified load {controlled_amp:.2f}x vs naive "
        f"{naive_amp:.2f}x; bounded retries should retry less"
    )
    assert requests_per_s > 5_000, (
        f"overload engine too slow: {requests_per_s:,.0f} simulated req/s"
    )
