"""Extension: the paper's scaling trend continued to int8 arithmetic.

Section 6.2 observes that "larger improvements are seen when the number
of available arithmetic units increases".  Packing two int8 MACs per
DSP slice (standard on DSP48E2) doubles the units again beyond fixed16;
this bench extends Table 1's AlexNet column one step further.

Bands: Single-CLP utilization strictly decreases float32 -> fixed16 ->
int8 while Multi-CLP stays above 85%, so the *utilization ratio* grows
monotonically (3.7x at fixed16, >6x at int8).  The raw epoch speedup
saturates beyond fixed16: AlexNet's conv1 floors any design at
R*C*K^2 = 366k cycles, which the fixed16 Multi-CLP already reaches —
itself a faithful consequence of the paper's cycle model.
"""

from repro.analysis.report import render_table
from repro.core.datatypes import FIXED16, FLOAT32, INT8
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp, optimize_single_clp

DTYPES = (FLOAT32, FIXED16, INT8)


def measure():
    budget = budget_for("690t")
    network = alexnet()
    rows = []
    for dtype in DTYPES:
        single = optimize_single_clp(network, budget, dtype)
        multi = optimize_multi_clp(network, budget, dtype)
        rows.append(
            {
                "dtype": dtype.label,
                "single_util": single.arithmetic_utilization,
                "multi_util": multi.arithmetic_utilization,
                "speedup": single.epoch_cycles / multi.epoch_cycles,
            }
        )
    return rows


def test_int8_scaling_extension(benchmark, record_artifact):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = render_table(
        ["dtype", "S-CLP util", "M-CLP util", "epoch speedup"],
        [
            (
                r["dtype"],
                f"{r['single_util']:.1%}",
                f"{r['multi_util']:.1%}",
                f"{r['speedup']:.2f}x",
            )
            for r in rows
        ],
        title="Extension: AlexNet on 690T as MACs-per-DSP grows",
    )
    record_artifact("extension_int8", table)
    singles = [r["single_util"] for r in rows]
    assert singles[0] > singles[1] > singles[2]
    assert all(r["multi_util"] > 0.85 for r in rows)
    ratios = [r["multi_util"] / r["single_util"] for r in rows]
    assert ratios[0] < ratios[1] < ratios[2]
    assert ratios[2] > 6.0
    assert all(r["speedup"] >= 1.5 for r in rows)
