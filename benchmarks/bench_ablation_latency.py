"""Ablation: latency-constrained (adjacent) assignment vs free ordering.

Section 4.1: restricting each CLP to layers adjacent in the CNN lets a
CLP push one image through all its layers per epoch, cutting in-flight
images from the layer count to the CLP count — "one can reduce latency
by limiting the number of CLPs, but this is achieved at the cost of
throughput".

Bands: the adjacent design's latency is far below the general design's
(which keeps one image per layer in flight); its epoch is never shorter
than the free-ordering design's; latency shrinks monotonically as the
CLP cap drops.
"""

from repro.analysis.report import render_table
from repro.core.datatypes import FLOAT32
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import (
    latency_throughput_frontier,
    optimize_multi_clp,
)


def measure():
    budget = budget_for("485t")
    network = alexnet()
    free = optimize_multi_clp(network, budget, FLOAT32)
    frontier = latency_throughput_frontier(
        network, budget, FLOAT32, max_clps=6
    )
    return free, frontier


def test_latency_ablation(benchmark, record_artifact):
    free, frontier = benchmark.pedantic(measure, rounds=1, iterations=1)
    free_latency = free.pipeline_depth_images * free.epoch_cycles
    rows = [
        (cap, latency, epoch, f"{free_latency / latency:.1f}x")
        for cap, latency, epoch in frontier
    ]
    table = render_table(
        ["CLP cap", "latency cycles", "epoch cycles", "latency win vs free"],
        rows,
        title=(
            "Ablation: adjacent assignment latency "
            f"(free design: epoch {free.epoch_cycles}, "
            f"latency {free_latency}, {free.pipeline_depth_images} in flight)"
        ),
    )
    record_artifact("ablation_latency", table)

    latencies = [latency for _, latency, _ in frontier]
    epochs = [epoch for _, _, epoch in frontier]
    # Latency always beats the free design (10 in-flight images).
    assert all(latency < free_latency for latency in latencies)
    # Throughput cost: adjacent epochs never beat the free ordering.
    assert all(epoch >= free.epoch_cycles for epoch in epochs)
    # More CLPs: epoch improves (throughput), latency need not.
    assert epochs == sorted(epochs, reverse=True)
