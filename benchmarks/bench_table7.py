"""Table 7: SqueezeNet fixed16, model vs (virtual) implementation.

Bands: implementation exceeds the model per CLP; fixed-point BRAM
inflation lands in the paper's ~1.3-2.1x range; total implementation
DSPs stay within 25% of the paper's total (different partitions, same
scale).
"""

import pytest

from repro.analysis.tables import table7


def test_table7(benchmark, record_artifact):
    result = benchmark.pedantic(table7, rounds=1, iterations=1)
    record_artifact("table7_690t_multi", result.format())
    impl = result.implementation
    for clp in impl.clps:
        assert clp.dsp_impl > clp.dsp_model
        if clp.bram_model > 0:
            inflation = clp.bram_impl / clp.bram_model
            assert 1.2 <= inflation <= 2.2
    paper_total_dsp = sum(p.dsp_impl for p in result.paper_rows)
    assert impl.dsp_impl == pytest.approx(paper_total_dsp, rel=0.25)
