"""Table 6: AlexNet float, analytic model vs (virtual) implementation.

Bands: the model columns reproduce the paper's model columns exactly
for the Single-CLP reference design; implementation estimates exceed
the model everywhere, with DSP overheads in the paper's 45-120 range
per CLP.
"""

import pytest

from repro.analysis.tables import table6


@pytest.mark.parametrize("scenario", ["485t_single", "485t_multi", "690t_multi"])
def test_table6(benchmark, record_artifact, scenario):
    result = benchmark.pedantic(
        table6, args=(scenario,), rounds=1, iterations=1
    )
    record_artifact(f"table6_{scenario}", result.format())
    impl = result.implementation
    for clp in impl.clps:
        assert clp.dsp_impl > clp.dsp_model
        assert clp.bram_impl >= clp.bram_model
        assert 45 <= clp.dsp_overhead <= 120
    if scenario == "485t_single":
        paper = result.paper_rows[0]
        assert impl.clps[0].dsp_model == paper.dsp_model == 2240
        assert impl.clps[0].bram_model == paper.bram_model == 618
        assert impl.clps[0].dsp_impl == pytest.approx(paper.dsp_impl, rel=0.03)
        assert impl.clps[0].bram_impl == pytest.approx(paper.bram_impl, rel=0.10)
