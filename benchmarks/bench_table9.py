"""Table 9: SqueezeNet fixed16 full-FPGA resources and power.

Bands: DSP within 10%, power within 25%, and FF/LUT within 35% of the
paper's Vivado numbers (our fixed-point partition differs from the
paper's, so per-design logic varies more than for AlexNet).
"""

import pytest

from repro.analysis.tables import table9


def test_table9(benchmark, record_artifact):
    result = benchmark.pedantic(table9, rounds=1, iterations=1)
    record_artifact("table9", result.format())
    impl = result.implementations[0]
    paper = result.paper_rows[0]
    assert paper is not None
    assert impl.dsp_impl == pytest.approx(paper.dsp, rel=0.10)
    assert impl.flip_flops == pytest.approx(paper.flip_flops, rel=0.35)
    assert impl.luts == pytest.approx(paper.luts, rel=0.35)
    assert impl.power_watts == pytest.approx(paper.power_watts, rel=0.25)
