"""DSE engine: serial vs pooled sweep wall-time, and cache-hit re-runs.

Bands: the pooled sweep produces byte-identical results (modulo per-point
wall time) to the serial sweep, and a re-run against the populated store
computes zero points and finishes orders of magnitude faster than the
cold sweep.  On multi-core machines the pool should not be dramatically
slower than serial (startup overhead aside); a strict speedup is only
asserted when enough cores are present, since CI boxes may expose one.
"""

import os
import time

from repro.dse import ResultStore, SweepRunner, SweepSpec

SPEC = SweepSpec(
    networks=("alexnet", "squeezenet"),
    budgets=((1000, 800), (2240, 1648), (2880, 2352)),
    dtypes=("float32", "fixed16"),
    modes=("single", "multi"),
)


def _timed_sweep(workers):
    runner = SweepRunner(store=ResultStore(), workers=workers)
    started = time.perf_counter()
    outcome = runner.run(SPEC)
    return outcome, time.perf_counter() - started, runner.store


def test_dse_parallel(benchmark, record_artifact):
    serial, serial_s, store = _timed_sweep(workers=1)
    cores = os.cpu_count() or 1
    pooled, pooled_s, _ = benchmark.pedantic(
        lambda: _timed_sweep(workers=cores), rounds=1, iterations=1
    )

    # Identical sweep output regardless of execution strategy.
    def strip(result):
        record = result.to_dict()
        record.pop("elapsed_s")
        return record

    assert [strip(r) for r in serial.results] == [strip(r) for r in pooled.results]
    assert serial.computed == pooled.computed == serial.total

    # A warm re-run is pure cache: zero optimizer calls, near-instant.
    started = time.perf_counter()
    warm = SweepRunner(store=store, workers=1).run(SPEC)
    warm_s = time.perf_counter() - started
    assert warm.computed == 0
    assert warm.cached == warm.total == serial.total
    assert warm_s < serial_s / 10

    lines = [
        f"points: {serial.total} "
        f"({serial.infeasible} infeasible, captured not fatal)",
        f"serial sweep        : {serial_s:8.2f} s",
        f"pooled sweep ({cores} cpu): {pooled_s:8.2f} s "
        f"({serial_s / pooled_s:.2f}x vs serial)"
        + ("  [1 cpu: ran in-process with warm caches]" if cores == 1 else ""),
        f"cached re-run       : {warm_s:8.4f} s "
        f"({serial_s / max(warm_s, 1e-9):.0f}x vs cold, 100% hits)",
    ]
    record_artifact("dse_parallel", "\n".join(lines))

    if cores >= 4:
        # With real parallelism available the pool must win.
        assert pooled_s < serial_s
