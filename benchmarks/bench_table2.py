"""Table 2: AlexNet float Single- and Multi-CLP configurations.

Bands: the Single-CLP scenarios reproduce the paper's cycle counts
exactly (2,006k / 1,769k); the Multi-CLP epochs match or beat the
paper's (1,558k / 1,168k), since the paper's search is heuristic too.
"""

import pytest

from repro.analysis.tables import table2


@pytest.mark.parametrize(
    "scenario", ["485t_single", "690t_single", "485t_multi", "690t_multi"]
)
def test_table2(benchmark, record_artifact, scenario):
    result = benchmark.pedantic(
        table2, args=(scenario,), rounds=1, iterations=1
    )
    record_artifact(f"table2_{scenario}", result.format())
    if scenario.endswith("single"):
        assert result.overall_cycles_k == result.paper_overall_cycles_k
        tn_tm = (result.rows[0].tn, result.rows[0].tm)
        assert tn_tm == {"485t_single": (7, 64), "690t_single": (9, 64)}[scenario]
    else:
        assert result.overall_cycles_k <= result.paper_overall_cycles_k
        assert len(result.rows) > 1
