"""Table 8: AlexNet float full-FPGA resources and power.

Bands: the virtual toolflow's FF/LUT/power estimates land within 15% of
the paper's Vivado numbers for all three designs (it was calibrated on
the Single-CLP; the Multi-CLP rows validate the per-CLP terms).
"""

import pytest

from repro.analysis.tables import table8


def test_table8(benchmark, record_artifact):
    result = benchmark.pedantic(table8, rounds=1, iterations=1)
    record_artifact("table8", result.format())
    for scenario, impl, paper in zip(
        result.scenarios, result.implementations, result.paper_rows
    ):
        assert paper is not None
        assert impl.dsp_impl == pytest.approx(paper.dsp, rel=0.05), scenario
        assert impl.flip_flops == pytest.approx(paper.flip_flops, rel=0.15)
        assert impl.luts == pytest.approx(paper.luts, rel=0.15)
        assert impl.power_watts == pytest.approx(paper.power_watts, rel=0.20)
