#!/usr/bin/env python
"""Benchmark trajectory: append BENCH_*.json numbers to a committed log
and fail on throughput regressions.

The benchmarks emit machine-readable ``BENCH_<name>.json`` files
(requests per second, wall time) into ``benchmarks/results/`` — which
is gitignored, so historically the trajectory lived only in CI
artifacts nobody charted.  This script gives it a durable home:

* ``record`` appends one line to ``benchmarks/results/history.jsonl``
  (committed — the one un-ignored file in that directory) collecting
  every benchmark's throughput under the current commit;
* ``check`` compares the newest entry against the previous run of the
  same benchmark *in the same mode* (smoke vs full — CI smoke numbers
  are never judged against a workstation's full run) and exits 1 when
  any throughput fell more than the threshold (default 20%).

Both are pure stdlib; CI runs ``record`` then ``check`` after the
smoke-mode benchmark job.  Wall-clock noise is real on shared runners —
the 20% band is deliberately wide so only step-change regressions
(an accidentally quadratic loop, a lost fast path) trip it.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
HISTORY_PATH = RESULTS_DIR / "history.jsonl"
DEFAULT_THRESHOLD = 0.20


def load_history(path: pathlib.Path) -> List[dict]:
    """Parse the JSONL trajectory; a missing file is an empty history."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def collect_bench(results_dir: pathlib.Path) -> Dict[str, dict]:
    """Throughput numbers from every BENCH_*.json that reports one."""
    benches: Dict[str, dict] = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        record = json.loads(path.read_text())
        rps = record.get("requests_per_s")
        if rps is None:
            continue
        bench = {
            "requests_per_s": float(rps),
            "smoke": bool(record.get("smoke", False)),
        }
        # Fast-engine benchmarks also pin their speedup over the event
        # engine and the floor that speedup was judged against (mode-
        # dependent: smoke runs are setup-dominated).  Recording both
        # lets ``check`` re-assert the contract from history alone.
        if record.get("speedup_vs_event") is not None:
            bench["speedup_vs_event"] = float(record["speedup_vs_event"])
            bench["speedup_floor"] = float(record.get("speedup_floor", 0.0))
        # The overload benchmark pins goodput retention after a retry
        # storm alongside the floor it was judged against, so the
        # recovery contract survives in history the same way.
        if record.get("goodput_retention") is not None:
            bench["goodput_retention"] = float(record["goodput_retention"])
            bench["retention_floor"] = float(
                record.get("retention_floor", 0.0)
            )
        benches[record["benchmark"]] = bench
    return benches


def append_entry(
    history: List[dict], commit: str, benches: Dict[str, dict]
) -> List[dict]:
    """History plus one new trajectory point (input list untouched)."""
    return history + [{"commit": commit, "entries": benches}]


def _previous_comparable(
    history: List[dict], name: str, smoke: bool
) -> Optional[float]:
    """Newest earlier datapoint for this benchmark in the same mode."""
    for entry in reversed(history):
        bench = entry.get("entries", {}).get(name)
        if bench is not None and bench.get("smoke") == smoke:
            return float(bench["requests_per_s"])
    return None


def check_regressions(
    history: List[dict], threshold: float = DEFAULT_THRESHOLD
) -> List[str]:
    """Regression messages for the newest entry vs its predecessors."""
    if not history:
        return []
    latest = history[-1]
    problems = []
    for name, bench in sorted(latest.get("entries", {}).items()):
        now = float(bench["requests_per_s"])
        before = _previous_comparable(history[:-1], name, bench.get("smoke"))
        if before is None or before <= 0:
            continue
        drop = 1.0 - now / before
        if drop > threshold:
            problems.append(
                f"{name}: {now:,.0f} req/s is {drop:.1%} below the "
                f"previous {before:,.0f} (threshold {threshold:.0%})"
            )
    # Fast-engine modes carry an absolute contract on top of the
    # relative trajectory: the recorded speedup over the event engine
    # must not fall under the floor it was benchmarked against.  (The
    # benchmark asserts this too, but the history check catches a floor
    # quietly lowered or a stale entry recorded from a failing run.)
    for name, bench in sorted(latest.get("entries", {}).items()):
        speedup = bench.get("speedup_vs_event")
        floor = bench.get("speedup_floor", 0.0)
        if speedup is not None and speedup < floor:
            problems.append(
                f"{name}: fast-path speedup {speedup:.1f}x is below its "
                f"{floor:.0f}x floor"
            )
        retention = bench.get("goodput_retention")
        retention_floor = bench.get("retention_floor", 0.0)
        if retention is not None and retention < retention_floor:
            problems.append(
                f"{name}: goodput retention {retention:.2f} after the "
                f"retry storm is below its {retention_floor:.2f} floor"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("action", choices=["record", "check"])
    parser.add_argument("--commit", default="unknown",
                        help="commit SHA to stamp on the new entry")
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=RESULTS_DIR)
    parser.add_argument("--history", type=pathlib.Path, default=HISTORY_PATH)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    args = parser.parse_args(argv)

    history = load_history(args.history)
    if args.action == "record":
        benches = collect_bench(args.results_dir)
        if not benches:
            print(f"no BENCH_*.json with requests_per_s in "
                  f"{args.results_dir}; nothing recorded")
            return 1
        history = append_entry(history, args.commit, benches)
        args.history.parent.mkdir(parents=True, exist_ok=True)
        args.history.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in history)
        )
        names = ", ".join(sorted(benches))
        print(f"recorded {names} @ {args.commit} "
              f"({len(history)} entries in {args.history})")
        return 0

    problems = check_regressions(history, threshold=args.threshold)
    for problem in problems:
        print(f"REGRESSION {problem}")
    if not problems:
        print(f"no throughput regressions in {args.history.name} "
              f"({len(history)} entries, threshold {args.threshold:.0%})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
