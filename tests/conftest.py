"""Shared fixtures: small networks and canned optimized designs.

Optimizer runs dominate the suite's wall-clock, and several test
modules used to re-solve the same canonical scenarios (AlexNet on the
VX485T, the two-network joint design) independently.  Everything here
is a frozen value object, so session scope is safe: solve once, share
everywhere.
"""

import pytest

from repro.core.clp import CLPConfig
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.design import MultiCLPDesign
from repro.core.layer import ConvLayer
from repro.core.network import Network
from repro.fpga.parts import budget_for
from repro.networks import alexnet, squeezenet
from repro.opt import optimize_joint, optimize_multi_clp


@pytest.fixture(scope="session")
def toy_network() -> Network:
    """Two stacked 13x13 conv layers: big enough to queue, tiny to solve."""
    return Network(
        "toy",
        [
            ConvLayer("a", n=16, m=32, r=13, c=13, k=3),
            ConvLayer("b", n=32, m=32, r=13, c=13, k=3),
        ],
    )


@pytest.fixture(scope="session")
def toy_design(toy_network) -> MultiCLPDesign:
    """Hand-built 2-CLP partition of the toy network (no optimizer run)."""
    layer_a, layer_b = toy_network.layers
    return MultiCLPDesign(
        toy_network,
        [
            CLPConfig(4, 16, [layer_a], FLOAT32, [(13, 13)]),
            CLPConfig(8, 16, [layer_b], FLOAT32, [(13, 13)]),
        ],
        FLOAT32,
    )


@pytest.fixture(scope="session")
def alexnet_485t_design() -> MultiCLPDesign:
    """The paper's canonical scenario: AlexNet float32 on a VX485T."""
    return optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)


@pytest.fixture(scope="session")
def joint_design_690t():
    """Two-network joint accelerator: AlexNet + SqueezeNet on a VX690T."""
    return optimize_joint([alexnet(), squeezenet()], budget_for("690t"), FIXED16)
