"""End-to-end optimizer tests pinned to the paper's evaluation numbers."""

import pytest

from repro.core.datatypes import FIXED16, FLOAT32
from repro.fpga import budget_for
from repro.networks import alexnet, googlenet, squeezenet, vggnet_e
from repro.opt import (
    OptimizationError,
    minimum_possible_cycles,
    optimize_multi_clp,
    optimize_single_clp,
)


class TestSingleCLPMatchesZhang:
    """Section 6: 'our Single-CLP design ... is equivalent to [32]'."""

    def test_alexnet_485t_float(self):
        design = optimize_single_clp(alexnet(), budget_for("485t"), FLOAT32)
        clp = design.clps[0]
        assert (clp.tn, clp.tm) == (7, 64)
        assert design.epoch_cycles == 2005892  # Table 2(a): 2,006k
        assert design.arithmetic_utilization == pytest.approx(0.741, abs=0.002)

    def test_alexnet_690t_float(self):
        design = optimize_single_clp(alexnet(), budget_for("690t"), FLOAT32)
        clp = design.clps[0]
        assert (clp.tn, clp.tm) == (9, 64)
        assert round(design.epoch_cycles / 1000) == 1769  # Table 2(b)
        assert design.arithmetic_utilization == pytest.approx(0.654, abs=0.002)

    def test_squeezenet_690t_float_utilization(self):
        # Section 3.2 quotes 76.4% for the float 690T Single-CLP.
        design = optimize_single_clp(squeezenet(), budget_for("690t"), FLOAT32)
        assert design.arithmetic_utilization == pytest.approx(0.764, abs=0.01)


class TestMultiCLPMatchesPaper:
    def test_alexnet_690t_float_epoch(self):
        design = optimize_multi_clp(alexnet(), budget_for("690t"), FLOAT32)
        # Table 2(d): epoch of 1,168k cycles; ours must match or beat it.
        assert design.epoch_cycles <= 1168 * 1000 + 500
        assert design.arithmetic_utilization >= 0.98

    def test_alexnet_485t_float_epoch(self):
        design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)
        # Table 2(c): epoch of 1,558k cycles; ours must match or beat it.
        assert design.epoch_cycles <= 1558 * 1000 + 500
        assert design.num_clps > 1

    def test_multi_clp_never_slower_than_single(self):
        budget = budget_for("485t")
        single = optimize_single_clp(alexnet(), budget, FLOAT32)
        multi = optimize_multi_clp(alexnet(), budget, FLOAT32)
        assert multi.epoch_cycles <= single.epoch_cycles

    def test_squeezenet_fixed_speedup_band(self):
        # Table 5: 690T fixed-point Multi-CLP is ~2.33x over Single-CLP.
        budget = budget_for("690t", frequency_mhz=170.0)
        single = optimize_single_clp(
            squeezenet(), budget, FIXED16, ordering="compute-to-data"
        )
        multi = optimize_multi_clp(
            squeezenet(), budget, FIXED16, ordering="compute-to-data"
        )
        speedup = single.epoch_cycles / multi.epoch_cycles
        assert 2.0 <= speedup <= 2.8

    def test_vggnet_float_near_parity(self):
        # Table 1: VGGNet-E float improves only ~1.01x.
        budget = budget_for("485t")
        single = optimize_single_clp(vggnet_e(), budget, FLOAT32)
        multi = optimize_multi_clp(vggnet_e(), budget, FLOAT32)
        speedup = single.epoch_cycles / multi.epoch_cycles
        assert 1.0 <= speedup <= 1.1


class TestDesignValidity:
    @pytest.mark.parametrize(
        "network_factory,dtype",
        [
            (alexnet, FLOAT32),
            (alexnet, FIXED16),
            (squeezenet, FIXED16),
            (googlenet, FLOAT32),
        ],
    )
    def test_budgets_respected(self, network_factory, dtype):
        budget = budget_for("485t")
        design = optimize_multi_clp(network_factory(), budget, dtype)
        assert design.dsp <= budget.dsp
        assert design.bram <= budget.bram18k
        assert design.fits(budget)

    def test_all_layers_covered_once(self):
        design = optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32)
        assignment = design.assignment()
        assert sorted(assignment) == sorted(l.name for l in alexnet())

    def test_report_contents(self):
        design, report = optimize_single_clp(
            alexnet(), budget_for("485t"), FLOAT32, return_report=True
        )
        assert report.epoch_cycles == design.epoch_cycles
        assert report.iterations >= 1
        assert 0 < report.target <= 1
        assert report.minimum_cycles <= design.epoch_cycles


class TestBandwidthConstrainedOptimization:
    def test_bandwidth_cap_yields_feasible_design(self):
        budget = budget_for("485t", bandwidth_gbps=2.0)
        design = optimize_multi_clp(alexnet(), budget, FLOAT32)
        need = design.required_bandwidth_gbps(budget.frequency_mhz)
        assert need <= 2.0 + 1e-6

    @pytest.mark.slow
    def test_tight_bandwidth_slows_design(self):
        loose = optimize_multi_clp(
            alexnet(), budget_for("485t"), FLOAT32
        )
        tight = optimize_multi_clp(
            alexnet(), budget_for("485t", bandwidth_gbps=0.5), FLOAT32
        )
        assert tight.epoch_cycles >= loose.epoch_cycles


class TestMinimumPossibleCycles:
    def test_alexnet_float_485t(self):
        # 665.8 MMACs over 448 units -> ~1.486M cycles.
        ideal = minimum_possible_cycles(alexnet(), 2240, FLOAT32)
        assert ideal == pytest.approx(1.486e6, rel=0.01)

    def test_ideal_bounds_achieved_designs(self):
        budget = budget_for("690t")
        ideal = minimum_possible_cycles(alexnet(), budget.dsp, FLOAT32)
        design = optimize_multi_clp(alexnet(), budget, FLOAT32)
        assert design.epoch_cycles >= ideal

    def test_tiny_budget_raises(self):
        with pytest.raises(OptimizationError):
            minimum_possible_cycles(alexnet(), 3, FLOAT32)


class TestArgumentValidation:
    def test_bad_step(self):
        with pytest.raises(ValueError):
            optimize_multi_clp(alexnet(), budget_for("485t"), FLOAT32, step=0)

    def test_bad_ordering(self):
        with pytest.raises(ValueError):
            optimize_multi_clp(
                alexnet(), budget_for("485t"), FLOAT32, ordering="bogus"
            )
