"""Regression pins: freshly optimized designs vs the paper's tables.

Two nets, different mesh sizes:

* a *band* against `repro.analysis.paper_data` (the numbers published
  in the paper) — the reproduction must keep matching Table 1 within
  the tolerance it achieves today;
* an *exact pin* of the optimizer's current output (epoch cycles are
  integers, so equality is meaningful) — any refactor of opt/ or core/
  that shifts a result, even while staying inside the paper band, must
  show up as a diff in this file rather than drift silently.

If an intentional model change moves these numbers, update the pins in
the same commit and say why.
"""

import pytest

from repro.analysis import paper_data
from repro.analysis.tables import design_for

#: Tolerance of the paper-band check: today's worst deviation across the
#: pinned scenarios is ~0.022 (multi-CLP utilization, where tie-breaking
#: differs from the authors' solver); 0.035 leaves headroom without
#: letting a real regression through.
PAPER_TOLERANCE = 0.035

#: (network, part, dtype, single) -> exact epoch cycles reproduced today.
EPOCH_PINS = {
    ("alexnet", "485t", "float32", True): 2_005_892,
    ("alexnet", "485t", "float32", False): 1_530_900,
    ("alexnet", "690t", "float32", True): 1_768_724,
    ("alexnet", "690t", "float32", False): 1_168_128,
    ("squeezenet", "485t", "fixed16", True): 347_965,
    ("squeezenet", "485t", "fixed16", False): 181_888,
    ("googlenet", "690t", "float32", True): 3_517_416,
    ("googlenet", "690t", "float32", False): 2_800_840,
}

SCENARIOS = sorted(EPOCH_PINS)


def _scenario_id(scenario):
    network, part, dtype, single = scenario
    return f"{network}-{part}-{dtype}-{'single' if single else 'multi'}"


@pytest.mark.parametrize("scenario", SCENARIOS, ids=_scenario_id)
def test_utilization_stays_in_paper_band(scenario):
    network, part, dtype, single = scenario
    design = design_for(network, part, dtype, single)
    paper_single, paper_multi = paper_data.TABLE1_UTILIZATION[
        (part, dtype, network)
    ]
    expected = paper_single if single else paper_multi
    assert design.arithmetic_utilization == pytest.approx(
        expected, abs=PAPER_TOLERANCE
    ), f"{_scenario_id(scenario)} drifted from the published Table 1 value"


@pytest.mark.parametrize("scenario", SCENARIOS, ids=_scenario_id)
def test_epoch_cycles_pinned_exactly(scenario):
    network, part, dtype, single = scenario
    design = design_for(network, part, dtype, single)
    assert design.epoch_cycles == EPOCH_PINS[scenario], (
        f"{_scenario_id(scenario)}: optimizer output moved; if this is an "
        "intentional model change, update EPOCH_PINS in the same commit"
    )


def test_multi_always_beats_single():
    """The paper's headline claim, re-derived from fresh optimizer runs."""
    for (network, part, dtype, single), _ in EPOCH_PINS.items():
        if single:
            continue
        multi = design_for(network, part, dtype, False)
        single_design = design_for(network, part, dtype, True)
        assert multi.epoch_cycles < single_design.epoch_cycles
        assert (
            multi.arithmetic_utilization > single_design.arithmetic_utilization
        )
