"""Tests for OptimizeMemory's internal machinery."""

import pytest

from repro.core.datatypes import FLOAT32
from repro.core.layer import ConvLayer
from repro.opt.compute import CLPCandidate, PartitionCandidate
from repro.opt.memory import (
    MAX_CAPS,
    MAX_CURVE_POINTS,
    _merge_curves,
    _sample,
    _tile_sizes,
    TilePoint,
    optimize_memory,
)


class TestTileSizes:
    def test_contains_full_extent(self):
        assert 55 in _tile_sizes(55)

    def test_contains_one(self):
        assert 1 in _tile_sizes(55)

    def test_all_are_step_changing(self):
        # Every value must be ceil(55/i) for some i.
        from math import ceil

        valid = {ceil(55 / i) for i in range(1, 56)}
        assert set(_tile_sizes(55)) <= valid

    def test_sorted_unique(self):
        sizes = _tile_sizes(224)
        assert sizes == sorted(set(sizes))

    def test_sqrt_scale(self):
        # O(sqrt(extent)) values, not O(extent).
        assert len(_tile_sizes(224)) < 40

    def test_extent_one(self):
        assert _tile_sizes(1) == [1]


class TestSample:
    def test_short_list_unchanged(self):
        assert _sample([1, 2, 3], 10) == [1, 2, 3]

    def test_long_list_capped(self):
        values = list(range(1000))
        picked = _sample(values, MAX_CAPS)
        assert len(picked) <= MAX_CAPS
        assert picked[0] == 0
        assert picked[-1] == 999

    def test_preserves_order(self):
        picked = _sample(list(range(100)), 7)
        assert picked == sorted(picked)


class TestMergeCurves:
    def _point(self, bram, bw):
        return TilePoint(bram=bram, bandwidth_bytes_per_cycle=bw, tile_plans=())

    def test_single_curve_passthrough(self):
        curve = [self._point(10, 5.0), self._point(20, 2.0)]
        merged = _merge_curves([curve])
        assert [(b, w) for b, w, _ in merged] == [(10, 5.0), (20, 2.0)]

    def test_two_curves_sum(self):
        a = [self._point(10, 4.0)]
        b = [self._point(5, 1.0)]
        merged = _merge_curves([a, b])
        assert merged == [(15, 5.0, (0, 0))]

    def test_dominated_combinations_pruned(self):
        a = [self._point(10, 4.0), self._point(20, 3.0)]
        b = [self._point(10, 4.0), self._point(20, 1.0)]
        merged = _merge_curves([a, b])
        brams = [b_ for b_, _, _ in merged]
        bws = [w for _, w, _ in merged]
        assert brams == sorted(brams)
        assert bws == sorted(bws, reverse=True)

    def test_size_cap(self):
        big = [self._point(i, 1000.0 - i) for i in range(400)]
        merged = _merge_curves([big, big])
        assert len(merged) <= MAX_CURVE_POINTS + 1

    def test_choice_indices_reference_curves(self):
        a = [self._point(10, 4.0), self._point(20, 3.0)]
        b = [self._point(5, 2.0)]
        for bram, bw, choice in _merge_curves([a, b]):
            assert len(choice) == 2
            assert 0 <= choice[0] < len(a)
            assert choice[1] == 0


class TestOptimizeMemoryChoices:
    def _partition(self):
        layer = ConvLayer("l", n=48, m=128, r=27, c=27, k=5)
        cycles = 27 * 27 * 7 * 2 * 25
        return PartitionCandidate(
            clps=(
                CLPCandidate(
                    tn=7, tm=64, layers=(layer,), cycles=cycles, dsp=2240
                ),
            )
        )

    def test_unconstrained_picks_min_bandwidth(self):
        partition = self._partition()
        generous = optimize_memory(
            partition, FLOAT32, bram_budget=10**6,
            cycle_target=partition.epoch_cycles,
        )
        tight = optimize_memory(
            partition, FLOAT32, bram_budget=600,
            cycle_target=partition.epoch_cycles,
        )
        assert (
            generous.total_bandwidth_bytes_per_cycle
            <= tight.total_bandwidth_bytes_per_cycle
        )

    def test_bandwidth_budget_picks_min_bram(self):
        partition = self._partition()
        unconstrained = optimize_memory(
            partition, FLOAT32, bram_budget=10**6,
            cycle_target=partition.epoch_cycles,
        )
        loose_bw = unconstrained.total_bandwidth_bytes_per_cycle * 4
        budgeted = optimize_memory(
            partition, FLOAT32, bram_budget=10**6,
            cycle_target=partition.epoch_cycles,
            bandwidth_budget_bytes_per_cycle=loose_bw,
        )
        assert budgeted.total_bram <= unconstrained.total_bram

    def test_tile_plans_are_valid(self):
        partition = self._partition()
        solution = optimize_memory(
            partition, FLOAT32, bram_budget=10**6,
            cycle_target=partition.epoch_cycles,
        )
        layer = partition.clps[0].layers[0]
        for tr, tc in solution.plans[0].point.tile_plans:
            assert 1 <= tr <= layer.r
            assert 1 <= tc <= layer.c
