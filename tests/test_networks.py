"""Tests for the network zoo against published architecture dimensions."""

import pytest

from repro.core.network import Network
from repro.core.layer import ConvLayer
from repro.networks import (
    alexnet,
    available_networks,
    get_network,
    googlenet,
    squeezenet,
    vggnet_e,
)


class TestAlexNet:
    def test_ten_layers(self):
        assert len(alexnet()) == 10

    def test_layer_names_are_paired_halves(self):
        names = [layer.name for layer in alexnet()]
        assert names == [
            "conv1a", "conv1b", "conv2a", "conv2b", "conv3a",
            "conv3b", "conv4a", "conv4b", "conv5a", "conv5b",
        ]

    def test_conv1_dimensions(self):
        layer = alexnet().layer_by_name("conv1a")
        # Section 6.2: AlexNet layer 1 has N, M = 3, 48.
        assert layer.dims == (3, 48, 55, 55, 11, 4)

    def test_conv3_sees_all_inputs(self):
        layer = alexnet().layer_by_name("conv3a")
        assert layer.n == 256
        assert layer.m == 192

    def test_grouped_stages_see_half_inputs(self):
        net = alexnet()
        assert net.layer_by_name("conv2a").n == 48
        assert net.layer_by_name("conv4a").n == 192
        assert net.layer_by_name("conv5a").n == 192

    def test_total_macs_matches_known_conv_workload(self):
        # AlexNet convolutional layers are ~0.666 GMACs (1.33 GFLOPs).
        assert alexnet().total_macs == pytest.approx(666e6, rel=0.01)


class TestVGGNetE:
    def test_sixteen_layers(self):
        assert len(vggnet_e()) == 16

    def test_all_3x3_stride_1(self):
        for layer in vggnet_e():
            assert layer.k == 3
            assert layer.s == 1

    def test_first_and_last(self):
        net = vggnet_e()
        assert net[0].dims == (3, 64, 224, 224, 3, 1)
        assert net[-1].dims == (512, 512, 14, 14, 3, 1)

    def test_total_macs_matches_known_workload(self):
        # VGG-19 conv layers are ~19.5 GMACs (39 GFLOPs).
        assert vggnet_e().total_macs == pytest.approx(19.5e9, rel=0.02)

    def test_channel_chaining(self):
        net = vggnet_e()
        for prev, cur in zip(net.layers, net.layers[1:]):
            # Within a block, N of the next layer equals M of the previous.
            if prev.r == cur.r:
                assert cur.n == prev.m


class TestSqueezeNet:
    def test_twenty_six_layers(self):
        assert len(squeezenet()) == 26

    def test_layer1_matches_paper(self):
        # Section 3.2: layer one has N, M = 3, 64.
        layer = squeezenet()[0]
        assert (layer.n, layer.m) == (3, 64)

    def test_layer2_matches_paper(self):
        # Section 3.2: layer two has N, M = 64, 16.
        layer = squeezenet()[1]
        assert (layer.n, layer.m) == (64, 16)
        assert layer.name == "fire2/squeeze1x1"

    def test_fire_module_structure(self):
        net = squeezenet()
        squeeze = net.layer_by_name("fire4/squeeze1x1")
        e1 = net.layer_by_name("fire4/expand1x1")
        e3 = net.layer_by_name("fire4/expand3x3")
        assert squeeze.m == e1.n == e3.n == 32
        assert e1.m == e3.m == 128
        assert e3.k == 3 and e1.k == 1

    def test_classifier(self):
        layer = squeezenet()[-1]
        assert layer.name == "conv10"
        assert (layer.n, layer.m, layer.k) == (512, 1000, 1)


class TestGoogLeNet:
    def test_fifty_seven_layers(self):
        assert len(googlenet()) == 57

    def test_stem(self):
        net = googlenet()
        assert net[0].dims == (3, 64, 112, 112, 7, 2)
        assert net[2].dims == (64, 192, 56, 56, 3, 1)

    def test_inception_3a(self):
        net = googlenet()
        assert net.layer_by_name("inception_3a/1x1").m == 64
        assert net.layer_by_name("inception_3a/3x3").dims == (
            96, 128, 28, 28, 3, 1
        )
        assert net.layer_by_name("inception_3a/5x5").k == 5

    def test_output_channels_chain_between_modules(self):
        net = googlenet()
        # inception_3a outputs 64+128+32+32 = 256 channels, feeding 3b.
        assert net.layer_by_name("inception_3b/1x1").n == 256

    def test_total_macs_matches_known_workload(self):
        # GoogLeNet conv layers are ~1.58 GMACs.
        assert googlenet().total_macs == pytest.approx(1.58e9, rel=0.05)


class TestRegistry:
    @pytest.mark.parametrize("name", ["alexnet", "vggnet-e", "squeezenet", "googlenet"])
    def test_get_network(self, name):
        assert get_network(name).name.lower().replace("-", "") \
            .startswith(name.split("-")[0][:6])

    def test_case_insensitive(self):
        assert get_network("AlexNet").name == "AlexNet"

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_network("resnet")

    def test_available_networks(self):
        assert set(available_networks()) == {
            "alexnet", "vggnet-e", "squeezenet", "googlenet"
        }


class TestNetworkContainer:
    def test_duplicate_names_rejected(self):
        layer = ConvLayer("x", 1, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            Network("bad", [layer, layer])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Network("empty", [])

    def test_index_of(self):
        net = alexnet()
        assert net.index_of("conv3a") == 4
        with pytest.raises(KeyError):
            net.index_of("nope")

    def test_iteration_order(self):
        net = alexnet()
        assert [l.name for l in net] == list(net.layer_by_name(n).name for n in
                                             [l.name for l in net.layers])

    def test_describe(self):
        assert "AlexNet" in alexnet().describe()
