"""Differential and regression tests for the epoch-batched fast path.

The fast engine (:mod:`repro.sim.fastpath`) promises *bit-for-bit* the
same results as the event-driven reference engine, not merely
statistically similar ones.  The tests here hold it to that promise:

* hypothesis differentials run the same seeded workload through both
  engines and compare the fully-serialized results for exact equality —
  across arrival shapes, queue depths, drop policies, drain modes,
  balancers, and heterogeneous fleets;
* engine-selection tests pin the ``auto``/``fast``/``event`` resolution
  rules, including the fast+scenario rejection and the silent event
  fallback for load-dependent balancers;
* regression tests for the accounting bugfixes that rode along with the
  engine: exact boundary grids over >=1e7 cycles, shed-vs-drop
  reporting, single-sort percentiles, and the dead-board busy refund.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialize import fleet_result_to_dict, serve_result_to_dict
from repro.fleet import BALANCER_NAMES, DeviceSpec, simulate_fleet
from repro.scenario import RedundancyOutage, ScenarioSpec
from repro.serve import (
    SLOSpec,
    TenantSpec,
    TraceArrivals,
    evaluate_slo,
    make_arrival_process,
    simulate_traffic,
)
from repro.serve.metrics import LatencySummary
from repro.sim import ENGINES, Simulator, resolve_engine

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _serve_both(design, *, rate_mult=1.0, process="poisson", epochs=40,
                seed=0, queue_depth=10**6, policy="drop-tail",
                drain=False, arrivals=None):
    """Run the identical workload on both engines, return both results."""
    epoch = design.epoch_cycles
    if arrivals is None:
        arrivals = make_arrival_process(
            process, rate_mult / epoch, period_cycles=8.0 * epoch
        )
    kwargs = dict(
        duration_cycles=epochs * epoch,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drain=drain,
    )
    tenants = [TenantSpec(design.network.name, arrivals)]
    fast = simulate_traffic(design, tenants, engine="fast", **kwargs)
    event = simulate_traffic(design, tenants, engine="event", **kwargs)
    return fast, event


def _fleet_both(design, *, replicas=2, rate_mult=1.0, balancer="round-robin",
                process="poisson", epochs=40, seed=0, queue_depth=10**6,
                policy="drop-tail", drain=False):
    epoch = design.epoch_cycles
    arrivals = make_arrival_process(
        process, rate_mult / epoch, period_cycles=8.0 * epoch
    )
    tenants = [TenantSpec(design.network.name, arrivals)]
    kwargs = dict(
        duration_cycles=epochs * epoch,
        balancer=balancer,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drain=drain,
    )
    devices = DeviceSpec(design).replicated(replicas)
    fast = simulate_fleet(devices, tenants, engine="fast", **kwargs)
    event = simulate_fleet(devices, tenants, engine="event", **kwargs)
    return fast, event


# ------------------------------------------------------- serve differential
class TestServeDifferential:
    """Fast engine reproduces the event engine's ServeResult exactly."""

    @FAST
    @given(
        rate_mult=st.floats(0.3, 3.0),
        process=st.sampled_from(["constant", "poisson", "bursty"]),
        queue_depth=st.sampled_from([1, 2, 5, 10**6]),
        policy=st.sampled_from(["drop-tail", "drop-head"]),
        drain=st.booleans(),
        seed=st.integers(0, 2**20),
    )
    def test_bit_exact(self, toy_design, rate_mult, process, queue_depth,
                       policy, drain, seed):
        fast, event = _serve_both(
            toy_design,
            rate_mult=rate_mult,
            process=process,
            queue_depth=queue_depth,
            policy=policy,
            drain=drain,
            seed=seed,
        )
        assert serve_result_to_dict(fast) == serve_result_to_dict(event)

    @FAST
    @given(
        drain=st.booleans(),
        policy=st.sampled_from(["drop-tail", "drop-head"]),
        queue_depth=st.sampled_from([1, 3, 10**6]),
    )
    def test_boundary_exact_ties(self, toy_design, drain, policy,
                                 queue_depth):
        """Arrivals landing exactly on the boundary grid, with duplicates.

        The heap breaks the arrival-vs-boundary tie by insertion order;
        the fast path must reproduce that ordering analytically.
        """
        epoch = toy_design.epoch_cycles
        times = [
            0.0, 0.0, epoch, epoch, epoch,
            2 * epoch, 2.5 * epoch, 4 * epoch, 4 * epoch,
        ]
        fast, event = _serve_both(
            toy_design,
            arrivals=TraceArrivals(times),
            epochs=8,
            queue_depth=queue_depth,
            policy=policy,
            drain=drain,
        )
        assert serve_result_to_dict(fast) == serve_result_to_dict(event)

    def test_joint_design_multi_tenant(self, joint_design_690t):
        epoch = joint_design_690t.epoch_cycles
        tenants = [
            TenantSpec(name, make_arrival_process("poisson", 1.2 / epoch))
            for name in (n.name for n in joint_design_690t.networks)
        ]
        kwargs = dict(duration_cycles=30 * epoch, seed=7, queue_depth=4,
                      drain=True)
        fast = simulate_traffic(joint_design_690t, tenants, engine="fast",
                                **kwargs)
        event = simulate_traffic(joint_design_690t, tenants, engine="event",
                                 **kwargs)
        assert serve_result_to_dict(fast) == serve_result_to_dict(event)

    @FAST
    @given(seed=st.integers(0, 2**20), rate_mult=st.floats(0.5, 4.0))
    def test_drained_conservation(self, toy_design, seed, rate_mult):
        """Fast engine upholds the drain contract on its own terms."""
        fast, _ = _serve_both(
            toy_design,
            rate_mult=rate_mult,
            seed=seed,
            queue_depth=3,
            drain=True,
        )
        for tenant in fast.tenants:
            assert tenant.arrivals == tenant.completions + tenant.drops
            assert tenant.in_flight == 0


# ------------------------------------------------------- fleet differential
class TestFleetDifferential:
    """Fast engine reproduces the event engine's FleetResult exactly."""

    @FAST
    @given(
        replicas=st.integers(1, 3),
        balancer=st.sampled_from(["round-robin", "tenant-affinity"]),
        rate_mult=st.floats(0.5, 4.0),
        drain=st.booleans(),
        seed=st.integers(0, 2**20),
        queue_depth=st.sampled_from([2, 10**6]),
    )
    def test_bit_exact(self, toy_design, replicas, balancer, rate_mult,
                       drain, seed, queue_depth):
        fast, event = _fleet_both(
            toy_design,
            replicas=replicas,
            balancer=balancer,
            rate_mult=rate_mult,
            drain=drain,
            seed=seed,
            queue_depth=queue_depth,
        )
        assert fleet_result_to_dict(fast) == fleet_result_to_dict(event)

    @pytest.mark.parametrize("balancer", sorted(BALANCER_NAMES))
    def test_single_replica_every_balancer(self, toy_design, balancer):
        """With one replica all policies route identically; all must be

        eligible for the fast path and stay bit-exact.
        """
        fast, event = _fleet_both(
            toy_design, replicas=1, balancer=balancer, rate_mult=2.0,
            drain=True, queue_depth=5,
        )
        assert fleet_result_to_dict(fast) == fleet_result_to_dict(event)

    def test_load_dependent_balancer_falls_back(self, toy_design):
        """least-outstanding on >1 replica is load-dependent: ``fast``

        silently runs the event engine (the flag promises results, not a
        mechanism) and therefore still matches ``event`` exactly.
        """
        fast, event = _fleet_both(
            toy_design, replicas=3, balancer="least-outstanding",
            rate_mult=2.0,
        )
        assert fleet_result_to_dict(fast) == fleet_result_to_dict(event)


# --------------------------------------------------------- engine selection
class TestEngineSelection:
    def test_engines_tuple(self):
        assert ENGINES == ("auto", "fast", "event")

    def test_auto_resolution(self):
        assert resolve_engine("auto") == "fast"
        assert resolve_engine("auto", has_scenario=True) == "event"
        assert resolve_engine("event", has_scenario=True) == "event"

    def test_fast_with_scenario_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("fast", has_scenario=True)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("warp")

    def test_fleet_fast_with_scenario_rejected(self, toy_design):
        epoch = toy_design.epoch_cycles
        tenants = [TenantSpec("toy", make_arrival_process(
            "constant", 1.0 / epoch))]
        with pytest.raises(ValueError):
            simulate_fleet(
                DeviceSpec(toy_design).replicated(2),
                tenants,
                duration_cycles=10 * epoch,
                scenario="rack-loss",
                engine="fast",
            )

    def test_auto_with_scenario_matches_event(self, toy_design):
        """auto quietly picks the event engine when a scenario is set."""
        epoch = toy_design.epoch_cycles
        tenants = [TenantSpec("toy", make_arrival_process(
            "poisson", 2.0 / epoch))]
        kwargs = dict(duration_cycles=30 * epoch, scenario="rack-loss",
                      seed=3, queue_depth=8)
        devices = DeviceSpec(toy_design).replicated(3)
        auto = simulate_fleet(devices, tenants, engine="auto", **kwargs)
        event = simulate_fleet(devices, tenants, engine="event", **kwargs)
        assert fleet_result_to_dict(auto) == fleet_result_to_dict(event)


# ------------------------------------------- regression: exact boundary grid
class TestBoundaryGridRegression:
    """The boundary chain must stay on the exact ``index * epoch`` grid.

    The old ``schedule_at`` round-tripped absolute times through a delay
    (``now + (time - now)``), which can lose the last bit; over long
    chains the boundary grid drifted off ``k * epoch``, breaking the
    analytically-computed fast path's bit-exactness.
    """

    def test_schedule_at_is_exact(self):
        # 0.2 + (0.9 - 0.2) == 0.8999999999999999 != 0.9 in binary
        # floating point: the delay round trip is observably lossy here.
        sim = Simulator()
        fired = []
        sim.schedule_at(0.2, lambda: sim.schedule_at(
            0.9, lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [0.9]

    def test_boundary_chain_exact_over_1e7_cycles(self):
        """A serve-style boundary chain spanning >= 1e7 cycles with a

        non-integer epoch must land every boundary exactly on the grid.
        """
        epoch = 12168.3  # not exactly representable: worst case for drift
        steps = 900      # 900 * 12168.3 cycles ~ 1.1e7 >= 1e7
        sim = Simulator()
        fired = []

        def boundary(index):
            def fire():
                fired.append(sim.now)
                if index < steps:
                    sim.schedule_at((index + 1) * epoch, boundary(index + 1))
            return fire

        sim.schedule_at(epoch, boundary(1))
        sim.run()
        assert fired[-1] >= 1e7
        assert fired == [k * epoch for k in range(1, steps + 1)]

    def test_long_serve_run_bit_exact(self, toy_design):
        """>= 1e7 simulated cycles through both engines, drained."""
        epochs = 900  # 900 * 12168 cycles ~ 1.1e7
        assert epochs * toy_design.epoch_cycles >= 1e7
        fast, event = _serve_both(
            toy_design, rate_mult=1.5, process="poisson", epochs=epochs,
            seed=11, queue_depth=16, drain=True,
        )
        assert serve_result_to_dict(fast) == serve_result_to_dict(event)


# --------------------------------------------- regression: shed vs. dropped
class TestShedReportingRegression:
    """Fleet tables and SLO reports must charge fault losses, not hide them.

    ``FleetResult.format`` used to print the bare queue ``drop_rate``
    under a "drop" header: a rack-loss drill could destroy requests on
    dead boards and still report 0.0%.  The column now shows the shed
    rate (drops + lost) and a ``lost`` column appears whenever failures
    destroyed requests.
    """

    @pytest.fixture(scope="class")
    def drill(self, toy_design):
        epoch = toy_design.epoch_cycles
        tenants = [TenantSpec("toy", make_arrival_process(
            "constant", 3.0 / epoch))]
        scenario = ScenarioSpec(
            name="refund-drill",
            faults=(RedundancyOutage(count=1, start=0.2, duration=0.5),),
            failure_policy="lost",
        )
        return simulate_fleet(
            DeviceSpec(toy_design).replicated(2),
            tenants,
            duration_cycles=40 * epoch,
            seed=5,
            queue_depth=10**6,
            scenario=scenario,
        )

    def test_lost_column_appears_with_losses(self, drill):
        assert drill.total_lost > 0
        text = drill.format()
        header = next(line for line in text.splitlines() if "tenant" in line)
        assert "shed" in header
        assert "lost" in header
        assert "drop" not in header

    def test_lost_column_absent_when_fault_free(self, toy_design):
        epoch = toy_design.epoch_cycles
        tenants = [TenantSpec("toy", make_arrival_process(
            "constant", 3.0 / epoch))]
        clean = simulate_fleet(
            DeviceSpec(toy_design).replicated(2),
            tenants,
            duration_cycles=40 * epoch,
            seed=5,
        )
        assert clean.total_lost == 0
        header = next(
            line for line in clean.format().splitlines() if "tenant" in line
        )
        assert "shed" in header
        assert "lost" not in header

    def test_shed_rate_includes_losses(self, drill):
        tenant = drill.tenants[0]
        assert tenant.lost > 0
        assert tenant.shed_rate == pytest.approx(
            (tenant.drops + tenant.lost) / tenant.arrivals
        )
        assert tenant.shed_rate > tenant.drop_rate

    def test_slo_report_worst_shed_rate(self, drill):
        report = evaluate_slo(drill, SLOSpec(max_drop_rate=0.0))
        worst = max(t.shed_rate for t in drill.tenants)
        assert report.worst_shed_rate == worst
        assert report.worst_shed_rate > 0
        # the historical name is an alias of the honest one
        assert report.worst_drop_rate == report.worst_shed_rate
        # verdicts expose the same value under both names
        for verdict in report.tenants:
            assert verdict.shed_rate == verdict.drop_rate
        assert not report.meets


# ------------------------------------------- regression: percentile summary
class TestLatencySummaryRegression:
    """One shared sort must return the exact nearest-rank elements."""

    def test_unsorted_input(self):
        summary = LatencySummary.of([5.0, 1.0, 3.0, 2.0, 4.0])
        assert summary.count == 5
        assert summary.mean == pytest.approx(3.0)
        assert (summary.p50, summary.p95, summary.p99) == (3.0, 5.0, 5.0)
        assert (summary.min, summary.max) == (1.0, 5.0)

    def test_single_element(self):
        summary = LatencySummary.of([2.5])
        assert (summary.p50, summary.p95, summary.p99) == (2.5, 2.5, 2.5)

    def test_empty(self):
        assert LatencySummary.of([]) is None

    @FAST
    @given(st.lists(st.floats(0.0, 1e9), min_size=1, max_size=400),
           st.randoms(use_true_random=False))
    def test_matches_nearest_rank_reference(self, xs, rnd):
        rnd.shuffle(xs)
        summary = LatencySummary.of(xs)
        ordered = sorted(xs)
        n = len(ordered)

        def nearest_rank(q):
            return ordered[max(1, math.ceil(n * q / 100)) - 1]

        assert summary.p50 == nearest_rank(50)
        assert summary.p95 == nearest_rank(95)
        assert summary.p99 == nearest_rank(99)
        # percentiles are actual observations, never interpolations
        assert {summary.p50, summary.p95, summary.p99} <= set(xs)


# ----------------------------------------------- regression: busy refund
class TestFailRefundRegression:
    """A board that dies mid-epoch must refund the in-flight busy charge.

    ``ReplicaState.fail`` used to leave the killed epoch's cycles in
    ``clp_busy``, so a drill could report *higher* utilization than the
    fault-free run of the same workload — work that never finished was
    still billed.  With the refund, a replica that loses a down-window
    can only do less work than its fault-free twin.
    """

    def test_drill_utilization_not_above_fault_free(self, toy_design):
        epoch = toy_design.epoch_cycles
        tenants = [TenantSpec("toy", make_arrival_process(
            "constant", 3.0 / epoch))]
        kwargs = dict(duration_cycles=60 * epoch, seed=2,
                      queue_depth=10**6)
        devices = DeviceSpec(toy_design)  # single replica: no failover
        # Drained fault-free control: admitted == completed, so the
        # per-completed-image CLP cost can be read off its busy counters.
        clean = simulate_fleet(devices, tenants, drain=True, **kwargs)
        drill = simulate_fleet(
            devices,
            tenants,
            scenario=ScenarioSpec(
                name="early-death",
                faults=(RedundancyOutage(
                    count=1, start=0.1, duration=0.9),),
            ),
            **kwargs,
        )
        up, down = clean.replicas[0], drill.replicas[0]
        assert down.completions > 0 and down.tenants[0].lost > 0
        assert down.utilization < up.utilization
        # The identity the refund restores: busy cycles correspond to
        # completed images only — the killed in-flight epochs are not
        # billed.  Without the refund the drill's per-image cost comes
        # out higher than the fault-free per-image cost.
        for busy_down, busy_up in zip(
            down.clp_busy_fraction, up.clp_busy_fraction
        ):
            cost_down = busy_down * drill.elapsed_cycles / down.completions
            cost_up = busy_up * clean.elapsed_cycles / up.completions
            assert cost_down == pytest.approx(cost_up, rel=1e-9)
