"""Functional simulation tests: Listing 2 computes exactly Listing 1."""

import numpy as np
import pytest

from repro.core.bandwidth import layer_transfer
from repro.core.layer import ConvLayer
from repro.sim.functional import (
    random_layer_data,
    reference_conv,
    tiled_conv,
)


def check_equivalence(layer, tn, tm, tr, tc, seed=0, bias=True):
    inputs, weights, b = random_layer_data(layer, seed=seed)
    b = b if bias else None
    ref = reference_conv(layer, inputs, weights, b)
    out, counters = tiled_conv(
        layer, inputs, weights, tn=tn, tm=tm, tr=tr, tc=tc, bias=b
    )
    np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)
    return counters


class TestTiledEqualsReference:
    def test_exact_tiling(self):
        layer = ConvLayer("l", n=8, m=8, r=8, c=8, k=3)
        check_equivalence(layer, tn=4, tm=4, tr=4, tc=4)

    def test_ragged_tiles_everywhere(self):
        # No dimension divides evenly: exercises all boundary clamps.
        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3)
        check_equivalence(layer, tn=3, tm=5, tr=4, tc=5)

    def test_strided_convolution(self):
        layer = ConvLayer("l", n=3, m=6, r=7, c=7, k=5, s=3)
        check_equivalence(layer, tn=2, tm=4, tr=3, tc=2)

    def test_grid_larger_than_layer(self):
        # Tn > N and Tm > M: the SqueezeNet layer-1 mismatch case.
        layer = ConvLayer("l", n=3, m=6, r=6, c=6, k=3)
        check_equivalence(layer, tn=9, tm=16, tr=6, tc=6)

    def test_one_by_one_kernel(self):
        layer = ConvLayer("l", n=12, m=10, r=6, c=6, k=1)
        check_equivalence(layer, tn=5, tm=4, tr=2, tc=3)

    def test_single_pixel_tiles(self):
        layer = ConvLayer("l", n=4, m=4, r=5, c=5, k=3, s=2)
        check_equivalence(layer, tn=2, tm=2, tr=1, tc=1)

    def test_without_bias(self):
        layer = ConvLayer("l", n=4, m=4, r=5, c=5, k=3)
        check_equivalence(layer, tn=2, tm=2, tr=3, tc=3, bias=False)

    def test_alexnet_like_first_layer(self):
        layer = ConvLayer("l", n=3, m=8, r=13, c=13, k=11, s=4)
        check_equivalence(layer, tn=7, tm=8, tr=8, tc=8)


class TestTransferCounters:
    @pytest.mark.parametrize(
        "dims,grid,tile",
        [
            (dict(n=7, m=13, r=9, c=11, k=3, s=1), (3, 5), (4, 5)),
            (dict(n=3, m=6, r=7, c=7, k=5, s=3), (2, 4), (3, 2)),
            (dict(n=12, m=10, r=6, c=6, k=1, s=1), (5, 4), (2, 3)),
            (dict(n=4, m=9, r=8, c=8, k=3, s=2), (4, 4), (8, 8)),
        ],
    )
    def test_counters_match_closed_forms(self, dims, grid, tile):
        """Executed word counts equal the analytic bandwidth model."""
        layer = ConvLayer("l", **dims)
        counters = check_equivalence(layer, *grid, *tile)
        transfer = layer_transfer(layer, grid[0], grid[1], tile[0], tile[1])
        assert counters.input_words == transfer.input_words
        assert counters.weight_words == transfer.weight_words
        assert counters.output_words == transfer.output_words

    def test_tile_count_matches_loop_trip_count(self):
        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3)
        counters = check_equivalence(layer, 3, 5, 4, 5)
        rsteps, csteps = 3, 3  # ceil(9/4), ceil(11/5)
        msteps, nsteps = 3, 3  # ceil(13/5), ceil(7/3)
        assert counters.tile_count == rsteps * csteps * msteps * nsteps


class TestValidation:
    def test_wrong_input_shape(self):
        layer = ConvLayer("l", n=4, m=4, r=5, c=5, k=3)
        bad = np.zeros((4, 5, 5))
        weights = np.zeros((4, 4, 3, 3))
        with pytest.raises(ValueError):
            reference_conv(layer, bad, weights)

    def test_wrong_weight_shape(self):
        layer = ConvLayer("l", n=4, m=4, r=5, c=5, k=3)
        inputs = np.zeros((4, 7, 7))
        with pytest.raises(ValueError):
            reference_conv(layer, inputs, np.zeros((4, 4, 2, 2)))

    def test_bad_tile(self):
        layer = ConvLayer("l", n=4, m=4, r=5, c=5, k=3)
        inputs, weights, _ = random_layer_data(layer)
        with pytest.raises(ValueError):
            tiled_conv(layer, inputs, weights, tn=2, tm=2, tr=6, tc=2)

    def test_bad_bias_shape(self):
        layer = ConvLayer("l", n=4, m=4, r=5, c=5, k=3)
        inputs, weights, _ = random_layer_data(layer)
        with pytest.raises(ValueError):
            reference_conv(layer, inputs, weights, np.zeros(5))
