"""Tests for the transfer-volume and bandwidth models."""

import pytest

from repro.core.bandwidth import (
    bandwidth_bound_cycles,
    layer_transfer,
    min_bandwidth_for_cycles,
)
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.layer import ConvLayer
from repro.networks import alexnet


class TestLayerTransferVolumes:
    def test_single_tile_moves_everything_once(self):
        layer = ConvLayer("l", n=8, m=16, r=10, c=10, k=3)
        t = layer_transfer(layer, tn=8, tm=16, tr=10, tc=10)
        assert t.input_words == layer.input_words
        assert t.weight_words == layer.weight_words
        assert t.output_words == layer.output_words

    def test_m_steps_reload_inputs(self):
        layer = ConvLayer("l", n=8, m=32, r=10, c=10, k=3)
        t = layer_transfer(layer, tn=8, tm=16, tr=10, tc=10)  # msteps=2
        assert t.input_words == 2 * layer.input_words
        assert t.weight_words == layer.weight_words

    def test_spatial_steps_reload_weights(self):
        layer = ConvLayer("l", n=8, m=16, r=10, c=10, k=3)
        t = layer_transfer(layer, tn=8, tm=16, tr=5, tc=5)  # 4 spatial tiles
        assert t.weight_words == 4 * layer.weight_words
        assert t.output_words == layer.output_words

    def test_outputs_written_exactly_once(self):
        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3, s=2)
        t = layer_transfer(layer, tn=3, tm=5, tr=4, tc=5)
        assert t.output_words == layer.output_words

    def test_alexnet_conv1_bandwidth_matches_paper_scale(self):
        # Section 6.3/Table 3 cross-check: the 485T Single-CLP moves
        # ~4.9MB per conv1 half in 366k cycles (~1.3 GB/s at 100 MHz).
        layer = alexnet().layer_by_name("conv1a")
        t = layer_transfer(layer, tn=7, tm=64, tr=8, tc=8)
        gbps = t.average_bytes_per_cycle(FLOAT32) * 100e6 / 1e9
        assert gbps == pytest.approx(1.34, abs=0.1)

    def test_total_words(self):
        layer = ConvLayer("l", n=4, m=4, r=6, c=6, k=3)
        t = layer_transfer(layer, 2, 2, 3, 3)
        assert t.total_words == t.input_words + t.weight_words + t.output_words

    def test_byte_conversion(self):
        layer = ConvLayer("l", n=4, m=4, r=6, c=6, k=3)
        t = layer_transfer(layer, 2, 2, 3, 3)
        assert t.total_bytes(FLOAT32) == 2 * t.total_bytes(FIXED16)

    def test_bad_tile_rejected(self):
        layer = ConvLayer("l", n=4, m=4, r=6, c=6, k=3)
        with pytest.raises(ValueError):
            layer_transfer(layer, 2, 2, 7, 3)


class TestBandwidthBoundCycles:
    def _transfers(self):
        layer = ConvLayer("l", n=16, m=32, r=13, c=13, k=3)
        return [layer_transfer(layer, 4, 16, 13, 13)]

    def test_unconstrained_equals_compute(self):
        transfers = self._transfers()
        assert bandwidth_bound_cycles(transfers, FLOAT32, None) == (
            transfers[0].compute_cycles
        )

    def test_generous_bandwidth_adds_only_fill(self):
        transfers = self._transfers()
        cycles = bandwidth_bound_cycles(transfers, FLOAT32, 1e9)
        assert cycles == pytest.approx(transfers[0].compute_cycles, rel=1e-6)

    def test_starved_bandwidth_is_transfer_dominated(self):
        transfers = self._transfers()
        bw = 0.01
        cycles = bandwidth_bound_cycles(transfers, FLOAT32, bw)
        assert cycles >= transfers[0].total_bytes(FLOAT32) / bw

    def test_monotone_in_bandwidth(self):
        transfers = self._transfers()
        values = [
            bandwidth_bound_cycles(transfers, FLOAT32, bw)
            for bw in (0.1, 0.5, 1.0, 5.0, 50.0)
        ]
        assert values == sorted(values, reverse=True)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bandwidth_bound_cycles(self._transfers(), FLOAT32, 0)


class TestMinBandwidth:
    def _transfers(self):
        layer = ConvLayer("l", n=16, m=32, r=13, c=13, k=3)
        return [layer_transfer(layer, 4, 16, 13, 13)]

    def test_found_bandwidth_meets_budget(self):
        transfers = self._transfers()
        budget = transfers[0].compute_cycles * 1.02
        bw = min_bandwidth_for_cycles(transfers, FLOAT32, budget)
        assert bandwidth_bound_cycles(transfers, FLOAT32, bw) <= budget

    def test_tight_budget_needs_more_bandwidth(self):
        transfers = self._transfers()
        compute = transfers[0].compute_cycles
        tight = min_bandwidth_for_cycles(transfers, FLOAT32, compute * 1.01)
        loose = min_bandwidth_for_cycles(transfers, FLOAT32, compute * 2.0)
        assert tight > loose

    def test_impossible_budget_raises(self):
        transfers = self._transfers()
        with pytest.raises(ValueError):
            min_bandwidth_for_cycles(
                transfers, FLOAT32, transfers[0].compute_cycles - 1
            )

    def test_near_optimal(self):
        # The result should sit close to the feasibility boundary.
        transfers = self._transfers()
        budget = transfers[0].compute_cycles * 1.05
        bw = min_bandwidth_for_cycles(transfers, FLOAT32, budget)
        assert bandwidth_bound_cycles(transfers, FLOAT32, bw * 0.98) > budget
