"""Tests for overload control (repro.serve.overload).

The load-bearing guarantees, in test order:

* policy/spec validation and the ``active`` contract — an
  all-defaults :class:`OverloadSpec` is indistinguishable from no spec;
* engine rules: any active overload feature forces the reference event
  engine under ``auto`` and is rejected under ``fast``;
* **no-op differential**: ``overload=OverloadSpec()`` is bit-exact to
  ``overload=None`` on both engines, serve and fleet — the overload
  plumbing on its own can never perturb a plain simulation;
* queue disciplines: EDF sheds expired work at dispatch without
  burning the epoch slot; FIFO serves it late instead (late counted at
  completion, nothing expired);
* admission control: token-bucket and queue-deadline rejections are a
  distinct accounting class, deterministic per seed;
* closed-loop clients: bounded retries and hedging stay conserved and
  reproducible;
* brownout: shedding is strictly bottom-up — a class is never gated
  while a strictly lower-priority class is still admitted, and the top
  class is never gated at all;
* **metastability demo**: unbounded immediate retries with no
  admission control keep fleet goodput pinned below 50% of the
  pre-fault rate long after the fault clears; token-bucket admission
  plus capped jittered backoff recovers to >= 90% on the same seed;
* **request conservation** (hypothesis): ``arrivals == completions +
  drops + lost + rejected + expired + timed_out + in_flight`` per tenant across
  queue policies, admission, retries, deadlines, and fault schedules;
* serialization: overload-free records stay byte-identical to
  pre-overload records (pruned keys), active records round-trip
  through JSON, and the new SLO clauses (de)serialize tolerantly;
* reporting: rejected/expired columns appear only when non-zero, and
  ``repro report`` renders the checked-in overload run.
"""

import dataclasses
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.report import load_run, render_run_report
from repro.core.clp import CLPConfig
from repro.core.datatypes import FLOAT32
from repro.core.design import MultiCLPDesign
from repro.core.layer import ConvLayer
from repro.core.network import Network
from repro.core.serialize import (
    fleet_result_from_dict,
    fleet_result_to_dict,
    serve_result_from_dict,
    serve_result_to_dict,
    slo_spec_from_dict,
    slo_spec_to_dict,
)
from repro.fleet import DeviceSpec, simulate_fleet
from repro.opt.joint import JointDesign, combine_networks
from repro.scenario import RackFailure, ScenarioSpec, get_scenario
from repro.scenario.library import SCENARIO_NAMES, scenario_from_dict, scenario_to_dict
from repro.serve import SLOSpec, TenantSpec, evaluate_slo, make_arrival_process
from repro.serve.overload import (
    BACKOFF_MODES,
    JITTER_MODES,
    QUEUE_POLICIES,
    AdmissionPolicy,
    BrownoutPolicy,
    OverloadSpec,
    RetryPolicy,
    overload_spec_from_dict,
    overload_spec_to_dict,
)
from repro.serve.simulator import simulate_traffic
from repro.sim.fastpath import resolve_engine

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

FAST = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------- helpers
def _tenants(design, rate_mult, **kwargs):
    epoch = design.epoch_cycles
    proc = make_arrival_process("poisson", rate_mult / epoch)
    return [TenantSpec(design.network.name, proc, **kwargs)]


def _serve(design, rate_mult, *, epochs=60, seed=0, overload=None,
           engine="auto", queue_depth=64, policy="drop-tail", drain=False,
           tenants=None):
    return simulate_traffic(
        design,
        tenants if tenants is not None else _tenants(design, rate_mult),
        duration_cycles=epochs * design.epoch_cycles,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drain=drain,
        engine=engine,
        overload=overload,
    )


def _fleet(design, replicas, rate_mult, *, epochs=60, seed=0, overload=None,
           engine="auto", queue_depth=64, policy="drop-tail", drain=False,
           scenario=None, balancer="round-robin", detector=None):
    return simulate_fleet(
        DeviceSpec(design).replicated(replicas),
        _tenants(design, rate_mult),
        duration_cycles=epochs * design.epoch_cycles,
        balancer=balancer,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drain=drain,
        scenario=scenario,
        engine=engine,
        overload=overload,
        detector=detector,
    )


def _epoch_ms(design, frequency_mhz=100.0):
    return design.epoch_cycles / (frequency_mhz * 1e6) * 1e3


def _assert_conserved(result):
    for tenant in result.tenants:
        out = (tenant.completions + tenant.drops + tenant.lost
               + tenant.rejected + tenant.expired + tenant.timed_out
               + tenant.in_flight)
        assert tenant.arrivals == out, tenant
        assert 0 <= tenant.failed_over <= tenant.arrivals


@pytest.fixture(scope="module")
def toy_joint():
    """Two one-layer networks on one accelerator: the brownout rig.

    Priorities are per tenant, so exercising the brownout ladder needs
    two tenants — and serve tenants must match the design's networks.
    """
    hot = Network("hot", [ConvLayer("a", n=3, m=8, r=13, c=13, k=3)])
    cold = Network("cold", [ConvLayer("b", n=8, m=8, r=13, c=13, k=3)])
    combined = combine_networks([hot, cold])
    layers = list(combined)
    return JointDesign(
        design=MultiCLPDesign(
            combined,
            [
                CLPConfig(4, 16, [layers[0]], FLOAT32, [(13, 13)]),
                CLPConfig(8, 16, [layers[1]], FLOAT32, [(13, 13)]),
            ],
            FLOAT32,
        ),
        networks=(hot, cold),
    )


# ------------------------------------------------------------ spec contracts
class TestSpecs:
    def test_constant_tuples(self):
        assert QUEUE_POLICIES == ("fifo", "edf", "priority")
        assert BACKOFF_MODES == ("fixed", "exponential")
        assert JITTER_MODES == ("none", "full", "decorrelated")

    def test_defaults_inactive(self):
        assert not OverloadSpec().active
        assert not AdmissionPolicy().active

    @pytest.mark.parametrize("spec", [
        OverloadSpec(queue_policy="edf"),
        OverloadSpec(queue_policy="priority"),
        OverloadSpec(admission=AdmissionPolicy(rate_rps=100.0)),
        OverloadSpec(admission=AdmissionPolicy(deadline_admission=True)),
        OverloadSpec(retry=RetryPolicy()),
        OverloadSpec(brownout=BrownoutPolicy()),
        OverloadSpec(deadline_ms=1.0),
    ])
    def test_each_feature_activates(self, spec):
        assert spec.active

    def test_validation(self):
        with pytest.raises(ValueError):
            OverloadSpec(queue_policy="lifo")
        with pytest.raises(ValueError):
            OverloadSpec(deadline_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(rate_rps=-1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(burst=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff="cubic")
        with pytest.raises(ValueError):
            RetryPolicy(jitter="gaussian")
        with pytest.raises(ValueError):
            RetryPolicy(base_ms=0.0)
        with pytest.raises(ValueError):
            BrownoutPolicy(p99_ms=0.0)
        with pytest.raises(ValueError):
            BrownoutPolicy(recover_factor=1.5)

    def test_retry_cap_defaults_to_32x_base(self):
        assert RetryPolicy(base_ms=0.5).effective_cap_ms == 16.0
        assert RetryPolicy(base_ms=0.5, cap_ms=2.0).effective_cap_ms == 2.0

    def test_tenant_spec_fields(self, toy_design):
        spec = _tenants(toy_design, 1.0, priority=3, deadline_ms=2.5)[0]
        assert spec.priority == 3 and spec.deadline_ms == 2.5


# ------------------------------------------------------------- engine rules
class TestEngineRules:
    def test_auto_resolves_event_under_overload(self):
        assert resolve_engine("auto", has_overload=True) == "event"
        assert resolve_engine("auto") == "fast"

    def test_fast_with_overload_rejected(self):
        with pytest.raises(ValueError, match="overload"):
            resolve_engine("fast", has_overload=True)

    def test_simulate_fast_with_overload_rejected(self, toy_design):
        with pytest.raises(ValueError, match="overload"):
            _serve(toy_design, 1.0, engine="fast",
                   overload=OverloadSpec(queue_policy="edf"))

    def test_tenant_deadline_alone_forces_event(self, toy_design):
        tenants = _tenants(toy_design, 1.0, deadline_ms=5.0)
        with pytest.raises(ValueError, match="overload"):
            _serve(toy_design, 1.0, engine="fast", tenants=tenants)

    def test_fleet_fast_with_overload_rejected(self, toy_design):
        with pytest.raises(ValueError, match="overload"):
            _fleet(toy_design, 2, 1.0, engine="fast",
                   overload=OverloadSpec(retry=RetryPolicy()))


# --------------------------------------------------------- no-op differential
class TestNoopDifferential:
    """All-features-off overload must be bit-exact with no overload."""

    @pytest.mark.parametrize("engine", ["fast", "event"])
    def test_serve_default_spec_is_noop(self, toy_design, engine):
        plain = _serve(toy_design, 1.5, seed=5, engine=engine)
        wired = _serve(toy_design, 1.5, seed=5, engine="event",
                       overload=OverloadSpec())
        assert serve_result_to_dict(plain) == serve_result_to_dict(wired)

    @pytest.mark.parametrize("engine", ["fast", "event"])
    def test_fleet_default_spec_is_noop(self, toy_design, engine):
        plain = _fleet(toy_design, 3, 2.0, seed=5, engine=engine,
                       balancer="least-outstanding")
        wired = _fleet(toy_design, 3, 2.0, seed=5, engine="event",
                       balancer="least-outstanding", overload=OverloadSpec())
        assert fleet_result_to_dict(plain) == fleet_result_to_dict(wired)

    def test_inactive_spec_keeps_fast_path(self, toy_design):
        """engine='auto' + default spec must still take the fast path."""
        result = _serve(toy_design, 1.0, overload=OverloadSpec())
        plain = _serve(toy_design, 1.0, engine="fast")
        assert serve_result_to_dict(result) == serve_result_to_dict(plain)


# ------------------------------------------------------------- disciplines
class TestQueueDisciplines:
    def test_edf_sheds_expired_at_dispatch(self, toy_design):
        deadline = 3 * _epoch_ms(toy_design)
        result = _serve(toy_design, 2.0, epochs=80,
                        overload=OverloadSpec(queue_policy="edf",
                                              deadline_ms=deadline))
        tenant = result.tenants[0]
        assert tenant.expired > 0
        _assert_conserved(result)

    def test_fifo_serves_late_instead_of_shedding(self, toy_design):
        deadline = 3 * _epoch_ms(toy_design)
        result = _serve(toy_design, 2.0, epochs=80,
                        overload=OverloadSpec(queue_policy="fifo",
                                              deadline_ms=deadline))
        tenant = result.tenants[0]
        assert tenant.expired == 0
        assert tenant.late > 0
        assert tenant.good_completions == tenant.completions - tenant.late
        _assert_conserved(result)

    def test_priority_discipline_runs_conserved(self, toy_design):
        result = _serve(
            toy_design, 2.0, epochs=80, queue_depth=4,
            overload=OverloadSpec(queue_policy="priority",
                                  retry=RetryPolicy(max_attempts=3,
                                                    base_ms=0.01)),
        )
        assert result.tenants[0].retries > 0
        _assert_conserved(result)

    def test_expired_never_counts_as_completion(self, toy_design):
        deadline = 2 * _epoch_ms(toy_design)
        result = _serve(toy_design, 3.0, epochs=60, drain=True,
                        overload=OverloadSpec(queue_policy="edf",
                                              deadline_ms=deadline))
        tenant = result.tenants[0]
        assert tenant.expired > 0
        assert tenant.in_flight == 0  # drained
        _assert_conserved(result)


# ---------------------------------------------------------------- admission
class TestAdmission:
    def test_token_bucket_rejects_excess(self, toy_design):
        epoch = toy_design.epoch_cycles
        capacity_rps = 100e6 / epoch
        result = _serve(
            toy_design, 3.0, epochs=80,
            overload=OverloadSpec(
                admission=AdmissionPolicy(rate_rps=0.5 * capacity_rps)),
        )
        tenant = result.tenants[0]
        assert tenant.rejected > 0
        assert tenant.drops == 0 or tenant.rejected > tenant.drops
        _assert_conserved(result)

    def test_deadline_admission_rejects_long_waits(self, toy_design):
        deadline = 2 * _epoch_ms(toy_design)
        result = _serve(
            toy_design, 3.0, epochs=80, queue_depth=10**6,
            overload=OverloadSpec(
                admission=AdmissionPolicy(deadline_admission=True),
                deadline_ms=deadline),
        )
        tenant = result.tenants[0]
        assert tenant.rejected > 0
        assert tenant.expired == 0  # fifo: rejected at the door instead
        _assert_conserved(result)

    def test_rejected_distinct_from_drops(self, toy_design):
        """Admission rejections must not inflate the queue-drop class."""
        epoch = toy_design.epoch_cycles
        result = _serve(
            toy_design, 3.0, epochs=80, queue_depth=10**6,
            overload=OverloadSpec(
                admission=AdmissionPolicy(rate_rps=0.5 * 100e6 / epoch)),
        )
        tenant = result.tenants[0]
        assert tenant.rejected > 0 and tenant.drops == 0

    def test_deterministic_per_seed(self, toy_design):
        spec = OverloadSpec(
            queue_policy="edf",
            admission=AdmissionPolicy(rate_rps=40000.0),
            retry=RetryPolicy(max_attempts=2, base_ms=0.01),
            deadline_ms=4 * _epoch_ms(toy_design),
        )
        a = _serve(toy_design, 2.0, seed=11, overload=spec)
        b = _serve(toy_design, 2.0, seed=11, overload=spec)
        c = _serve(toy_design, 2.0, seed=12, overload=spec)
        assert serve_result_to_dict(a) == serve_result_to_dict(b)
        assert serve_result_to_dict(a) != serve_result_to_dict(c)


# ------------------------------------------------------------------ retries
class TestRetries:
    def test_bounded_retries(self, toy_design):
        result = _serve(
            toy_design, 3.0, epochs=60, queue_depth=2,
            overload=OverloadSpec(
                retry=RetryPolicy(max_attempts=3, base_ms=0.01,
                                  jitter="none", backoff="fixed")),
        )
        tenant = result.tenants[0]
        assert tenant.retries > 0
        # Each original request spawns at most max_attempts - 1 retries.
        originals = tenant.arrivals - tenant.retries - tenant.hedges
        assert tenant.retries <= 2 * originals
        _assert_conserved(result)

    def test_retry_jitter_modes_run(self, toy_design):
        for jitter in JITTER_MODES:
            result = _serve(
                toy_design, 3.0, epochs=40, queue_depth=2,
                overload=OverloadSpec(
                    retry=RetryPolicy(max_attempts=2, base_ms=0.01,
                                      jitter=jitter)),
            )
            _assert_conserved(result)

    def test_hedging_duplicates_slow_requests(self, toy_design):
        result = _serve(
            toy_design, 1.5, epochs=80,
            overload=OverloadSpec(
                retry=RetryPolicy(max_attempts=1,
                                  hedge_ms=2 * _epoch_ms(toy_design))),
        )
        tenant = result.tenants[0]
        assert tenant.hedges > 0
        _assert_conserved(result)

    def test_retry_counts_surface_in_report(self, toy_design):
        result = _serve(
            toy_design, 3.0, epochs=40, queue_depth=2,
            overload=OverloadSpec(retry=RetryPolicy(max_attempts=2,
                                                    base_ms=0.01)),
        )
        stats = result.overload.class_stats(0)
        assert stats.retries == result.tenants[0].retries > 0


# ----------------------------------------------------------------- brownout
class TestBrownout:
    def _run(self, toy_joint, seed=2):
        epoch_ms = _epoch_ms(toy_joint)
        epoch = toy_joint.epoch_cycles
        tenants = [
            TenantSpec("cold",
                       make_arrival_process("poisson", 1.2 / epoch),
                       priority=0),
            TenantSpec("hot",
                       make_arrival_process("poisson", 0.8 / epoch),
                       priority=1),
        ]
        spec = OverloadSpec(
            queue_policy="edf",
            brownout=BrownoutPolicy(p99_ms=6 * epoch_ms,
                                    window_ms=20 * epoch_ms),
            deadline_ms=8 * epoch_ms,
        )
        return simulate_traffic(
            toy_joint, tenants, duration_cycles=600 * epoch,
            seed=seed, queue_depth=64, overload=spec,
        )

    def test_sheds_bottom_up_never_top(self, toy_joint):
        """A class is never gated while a strictly lower one is admitted."""
        result = self._run(toy_joint)
        report = result.overload
        levels = sorted(entry.priority for entry in report.classes)
        shed_windows = [
            w for w in range(len(report.times)) if report.shed_priorities(w)
        ]
        assert shed_windows, "brownout never engaged; test is vacuous"
        for window in range(len(report.times)):
            shed = report.shed_priorities(window)
            assert levels[-1] not in shed  # top class is never gated
            for priority in shed:
                lower = [q for q in levels if q < priority]
                assert all(q in shed for q in lower), (window, shed)

    def test_protects_high_priority_goodput(self, toy_joint):
        result = self._run(toy_joint)
        report = result.overload
        assert report.brownout_steps > 0
        hot = report.class_stats(1)
        cold = report.class_stats(0)
        assert hot.rejected == 0
        assert cold.rejected > 0
        assert hot.good / hot.arrivals > cold.good / cold.arrivals

    def test_conserved_and_seed_stable(self, toy_joint):
        a = self._run(toy_joint, seed=4)
        b = self._run(toy_joint, seed=4)
        _assert_conserved(a)
        assert serve_result_to_dict(a) == serve_result_to_dict(b)


# ----------------------------------------------------- metastability (demo)
class TestMetastability:
    """The acceptance demo: retry storms make overload self-sustaining.

    A rack failure halves capacity for 15% of the run.  Naive clients
    (unlimited immediate retries, no admission control) wedge the fleet:
    the queue is permanently full of already-expired work, every
    completion is late, and goodput never recovers after the fault
    clears.  Token-bucket admission plus capped jittered backoff serves
    the same traffic on the same seed and recovers completely.
    """

    FAULT_START = 0.25
    FAULT_END = 0.40
    EPOCHS = 400

    def _run(self, design, overload, seed=0):
        epoch = design.epoch_cycles
        horizon = self.EPOCHS * epoch
        scenario = ScenarioSpec(
            name="storm-drill",
            faults=(RackFailure(fraction=0.5, start=self.FAULT_START,
                                duration=self.FAULT_END - self.FAULT_START),),
        )
        tenants = [TenantSpec(design.network.name,
                              make_arrival_process("poisson",
                                                   0.9 * 2 / epoch))]
        result = simulate_fleet(
            DeviceSpec(design).replicated(2), tenants,
            duration_cycles=horizon, seed=seed, queue_depth=32,
            scenario=scenario, overload=overload,
        )
        report = result.overload
        pre = report.goodput_between(0, self.FAULT_START * horizon)
        pre_rate = pre / (self.FAULT_START * horizon)
        recover_start = (self.FAULT_END + 0.1) * horizon
        post = report.goodput_between(recover_start, horizon)
        post_rate = post / (horizon - recover_start)
        return result, post_rate / pre_rate

    def _deadline(self, design):
        return 4 * _epoch_ms(design)

    def test_naive_retries_are_metastable(self, toy_design):
        epoch_ms = _epoch_ms(toy_design)
        naive = OverloadSpec(
            queue_policy="fifo",
            retry=RetryPolicy(max_attempts=0, backoff="fixed",
                              base_ms=0.5 * epoch_ms, cap_ms=0.5 * epoch_ms,
                              jitter="none"),
            deadline_ms=self._deadline(toy_design),
        )
        result, recovery = self._run(toy_design, naive)
        assert recovery < 0.5, (
            f"expected metastable collapse, got {recovery:.2f}"
        )
        assert result.tenants[0].retries > 0
        _assert_conserved(result)

    def test_admission_and_backoff_recover(self, toy_design):
        epoch = toy_design.epoch_cycles
        epoch_ms = _epoch_ms(toy_design)
        fleet_capacity_rps = 2 * 100e6 / epoch
        controlled = OverloadSpec(
            queue_policy="edf",
            admission=AdmissionPolicy(rate_rps=0.95 * fleet_capacity_rps,
                                      burst=8.0),
            retry=RetryPolicy(max_attempts=3, backoff="exponential",
                              base_ms=epoch_ms, cap_ms=16 * epoch_ms,
                              jitter="decorrelated"),
            deadline_ms=self._deadline(toy_design),
        )
        result, recovery = self._run(toy_design, controlled)
        assert recovery >= 0.9, (
            f"expected recovery with overload control, got {recovery:.2f}"
        )
        _assert_conserved(result)


# ------------------------------------------------- conservation (hypothesis)
class TestConservationProperty:
    @FAST
    @given(
        seed=st.integers(0, 2**32 - 1),
        queue_policy=st.sampled_from(QUEUE_POLICIES),
        admit=st.sampled_from([None, "bucket", "deadline"]),
        retries=st.sampled_from([None, 0, 2]),
        deadline_epochs=st.sampled_from([None, 3]),
        scenario=st.sampled_from([None, "rack-loss", "gray-failure"]),
        drain=st.booleans(),
    )
    def test_requests_conserved(self, toy_design, seed, queue_policy, admit,
                                retries, deadline_epochs, scenario, drain):
        epoch_ms = _epoch_ms(toy_design)
        deadline = (
            None if deadline_epochs is None else deadline_epochs * epoch_ms
        )
        admission = None
        if admit == "bucket":
            admission = AdmissionPolicy(rate_rps=50000.0)
        elif admit == "deadline":
            admission = AdmissionPolicy(deadline_admission=True)
        if admit == "deadline" and deadline is None:
            deadline = 3 * epoch_ms
        retry = (
            None if retries is None
            else RetryPolicy(max_attempts=retries, base_ms=0.01,
                             cap_ms=0.5)
        )
        overload = OverloadSpec(
            queue_policy=queue_policy, admission=admission,
            retry=retry, deadline_ms=deadline,
        )
        result = _fleet(toy_design, 3, 3.0, epochs=40, seed=seed,
                        queue_depth=8, scenario=scenario, drain=drain,
                        overload=overload if overload.active else None)
        _assert_conserved(result)
        total_out = sum(
            t.completions + t.drops + t.lost + t.rejected + t.expired
            + t.timed_out + t.in_flight
            for t in result.tenants
        )
        assert sum(t.arrivals for t in result.tenants) == total_out
        if drain:
            assert all(t.in_flight == 0 for t in result.tenants)


# ------------------------------------------------------------- serialization
class TestSerialization:
    def test_overload_free_record_has_no_new_keys(self, toy_design):
        record = serve_result_to_dict(_serve(toy_design, 1.0))
        assert "overload" not in record
        for tenant in record["tenants"]:
            for key in ("rejected", "expired", "retries", "hedges", "late",
                        "priority"):
                assert key not in tenant

    def test_fleet_overload_free_record_has_no_new_keys(self, toy_design):
        record = fleet_result_to_dict(_fleet(toy_design, 2, 1.0))
        assert "overload" not in record
        for tenant in record["tenants"]:
            assert "rejected" not in tenant and "priority" not in tenant
        for replica in record["replicas"]:
            for tenant in replica["tenants"]:
                assert "rejected" not in tenant

    def test_serve_json_round_trip_stable(self, toy_design):
        spec = OverloadSpec(
            queue_policy="edf",
            admission=AdmissionPolicy(rate_rps=40000.0),
            retry=RetryPolicy(max_attempts=2, base_ms=0.05),
            deadline_ms=3 * _epoch_ms(toy_design),
        )
        result = _serve(toy_design, 2.5, overload=spec)
        assert result.tenants[0].rejected > 0
        first = json.dumps(serve_result_to_dict(result), sort_keys=True)
        loaded = serve_result_from_dict(json.loads(first))
        second = json.dumps(serve_result_to_dict(loaded), sort_keys=True)
        assert first == second
        assert loaded.overload is not None
        assert loaded.overload.queue_policy == "edf"

    def test_fleet_json_round_trip_stable(self, toy_design):
        spec = OverloadSpec(retry=RetryPolicy(max_attempts=2, base_ms=0.01))
        result = _fleet(toy_design, 2, 3.0, queue_depth=2, overload=spec)
        first = json.dumps(fleet_result_to_dict(result), sort_keys=True)
        loaded = fleet_result_from_dict(json.loads(first))
        second = json.dumps(fleet_result_to_dict(loaded), sort_keys=True)
        assert first == second
        assert loaded.total_rejected == result.total_rejected

    def test_overload_spec_round_trip(self):
        spec = OverloadSpec(
            queue_policy="priority",
            admission=AdmissionPolicy(rate_rps=1000.0, burst=4.0,
                                      deadline_admission=True),
            retry=RetryPolicy(max_attempts=5, backoff="fixed", base_ms=0.2,
                              cap_ms=1.0, jitter="full", hedge_ms=3.0),
            brownout=BrownoutPolicy(p99_ms=4.0, window_ms=1.0,
                                    recover_factor=0.5),
            deadline_ms=6.0,
        )
        assert overload_spec_from_dict(overload_spec_to_dict(spec)) == spec
        assert overload_spec_from_dict(
            overload_spec_to_dict(OverloadSpec())
        ) == OverloadSpec()

    def test_slo_spec_round_trip_and_legacy(self):
        legacy = {"p99_ms": 5.0, "max_drop_rate": 0.01,
                  "min_throughput_rps": None}
        assert slo_spec_to_dict(slo_spec_from_dict(legacy)) == legacy
        rich = SLOSpec(p99_ms=5.0, deadline_ms=2.0, min_goodput_rps=100.0)
        assert slo_spec_from_dict(slo_spec_to_dict(rich)) == rich
        # New clauses absent -> not emitted, keeping old records stable.
        assert "deadline_ms" not in slo_spec_to_dict(SLOSpec())

    def test_overload_scenarios_round_trip(self):
        for name in ("retry-storm", "brownout-drill"):
            assert name in SCENARIO_NAMES
            scenario = get_scenario(name)
            assert scenario.overload is not None
            assert scenario.overload.active
            assert not scenario.is_noop
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_plain_scenario_record_has_no_overload_key(self):
        assert "overload" not in scenario_to_dict(get_scenario("steady"))


# ---------------------------------------------------------------------- SLO
class TestSLO:
    def test_new_clause_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(deadline_ms=0.0)
        with pytest.raises(ValueError):
            SLOSpec(min_goodput_rps=-1.0)

    def test_deadline_charges_late_completions(self, toy_design):
        deadline = 3 * _epoch_ms(toy_design)
        result = _serve(toy_design, 2.0, epochs=80,
                        overload=OverloadSpec(queue_policy="fifo",
                                              deadline_ms=deadline))
        assert result.tenants[0].late > 0
        lenient = evaluate_slo(result, SLOSpec(max_drop_rate=1.0))
        strict = evaluate_slo(
            result, SLOSpec(max_drop_rate=0.0, deadline_ms=deadline)
        )
        assert lenient.meets
        assert not strict.meets
        assert "drops" in strict.tenants[0].violations[0]

    def test_min_goodput_clause(self, toy_design):
        deadline = 3 * _epoch_ms(toy_design)
        result = _serve(toy_design, 2.0, epochs=80,
                        overload=OverloadSpec(queue_policy="fifo",
                                              deadline_ms=deadline))
        verdict = evaluate_slo(
            result, SLOSpec(max_drop_rate=1.0, min_goodput_rps=10**9)
        )
        assert not verdict.meets
        assert any("goodput" in v for v in verdict.tenants[0].violations)
        assert verdict.tenants[0].goodput_rps < \
            verdict.tenants[0].throughput_rps

    def test_goodput_by_priority(self, toy_design):
        result = _serve(toy_design, 1.0)
        report = evaluate_slo(result, SLOSpec(max_drop_rate=1.0))
        by_priority = dict(report.goodput_by_priority)
        assert set(by_priority) == {0}
        assert by_priority[0] == pytest.approx(report.total_goodput_rps)


# ------------------------------------------------------------------ reports
class TestReporting:
    def test_serve_columns_conditional(self, toy_design):
        plain = _serve(toy_design, 1.0).format()
        assert "rejected" not in plain and "expired" not in plain
        spec = OverloadSpec(
            queue_policy="edf",
            admission=AdmissionPolicy(rate_rps=10000.0),
            deadline_ms=3 * _epoch_ms(toy_design),
        )
        loaded = _serve(toy_design, 3.0, overload=spec).format()
        assert "rejected" in loaded

    def test_fleet_overload_line(self, toy_design):
        spec = OverloadSpec(
            admission=AdmissionPolicy(rate_rps=30000.0))
        text = _fleet(toy_design, 2, 3.0, overload=spec).format()
        assert "overload: discipline=fifo" in text
        assert "rejected" in text
        plain = _fleet(toy_design, 2, 1.0).format()
        assert "overload:" not in plain

    def test_sample_overload_run_renders(self):
        path = os.path.join(DATA_DIR, "sample_overload_run.json")
        result = load_run(path)
        assert result.total_rejected > 0
        assert result.total_expired > 0
        assert result.overload is not None
        report = render_run_report([result], [path])
        assert "## Overload control" in report
        assert "| rejected | expired |" in report.splitlines()[4]
        assert "edf" in report
        _assert_conserved(result)

    def test_sample_run_report_command(self, tmp_path):
        from repro.cli import main
        out = tmp_path / "report.md"
        path = os.path.join(DATA_DIR, "sample_overload_run.json")
        assert main(["report", path, "--out", str(out)]) == 0
        assert "## Overload control" in out.read_text()


# ---------------------------------------------------------------------- CLI
class TestCLI:
    def _parse(self, argv):
        from repro.cli import build_parser
        return build_parser().parse_args(argv)

    def test_overload_flags_parse(self):
        args = self._parse([
            "serve", "--queue-policy", "edf", "--admission", "1000",
            "--deadline-ms", "2.0", "--retries", "3",
            "--retry-jitter", "decorrelated", "--brownout-p99-ms", "5",
        ])
        from repro.cli import _overload_spec
        spec = _overload_spec(args)
        assert spec is not None and spec.active
        assert spec.queue_policy == "edf"
        assert spec.admission.rate_rps == 1000.0
        assert spec.retry.max_attempts == 3
        assert spec.brownout.p99_ms == 5.0

    def test_defaults_build_no_spec(self):
        from repro.cli import _overload_spec
        args = self._parse(["serve"])
        assert _overload_spec(args) is None

    @pytest.mark.parametrize("argv", [
        ["serve", "--queue-policy", "lifo"],
        ["serve", "--process", "weibull"],
        ["serve", "--policy", "drop-random"],
        ["serve", "--engine", "warp"],
        ["serve", "--retry-jitter", "gaussian"],
        ["fleet", "simulate", "--scenario", "nonexistent-drill"],
    ])
    def test_bad_choices_rejected_at_parse_time(self, argv):
        with pytest.raises(SystemExit):
            self._parse(argv)

    def test_scenario_choices_track_library(self):
        parser = self._parse(["fleet", "simulate",
                              "--scenario", "retry-storm"])
        assert parser.scenario == "retry-storm"
