"""Tests for the epoch schedule (Figure 5)."""

import pytest

from repro.core.clp import CLPConfig
from repro.core.datatypes import FLOAT32
from repro.core.design import MultiCLPDesign
from repro.core.layer import ConvLayer
from repro.core.network import Network
from repro.core.schedule import build_schedule


@pytest.fixture
def design():
    # Mirrors Figure 5: CLP0 runs L1, L3, L4; CLP1 runs L2, L5.
    layers = [
        ConvLayer(f"L{i}", n=8, m=8, r=10, c=10, k=3) for i in range(1, 6)
    ]
    net = Network("fig5", layers)
    by_name = {layer.name: layer for layer in layers}
    clp0 = CLPConfig(2, 4, [by_name["L1"], by_name["L3"], by_name["L4"]], FLOAT32)
    clp1 = CLPConfig(4, 4, [by_name["L2"], by_name["L5"]], FLOAT32)
    return MultiCLPDesign(net, [clp0, clp1], FLOAT32)


class TestBuildSchedule:
    def test_epoch_zero_runs_only_first_layer(self, design):
        schedule = build_schedule(design, epochs=1)
        entries = schedule.entries_for_epoch(0)
        assert [e.layer_name for e in entries] == ["L1"]
        assert entries[0].image_index == 0

    def test_pipeline_fills_one_layer_per_epoch(self, design):
        schedule = build_schedule(design, epochs=5)
        # In epoch e, layer Li runs image e - (i-1).
        for entry in schedule.entries:
            position = int(entry.layer_name[1]) - 1
            assert entry.image_index == entry.epoch - position

    def test_steady_state_all_layers_active(self, design):
        schedule = build_schedule(design, epochs=6)
        steady = schedule.entries_for_epoch(5)
        assert sorted(e.layer_name for e in steady) == [
            "L1", "L2", "L3", "L4", "L5"
        ]

    def test_entries_within_epoch_are_sequential_per_clp(self, design):
        schedule = build_schedule(design, epochs=6)
        for clp_index in range(2):
            entries = [
                e for e in schedule.entries_for_epoch(5)
                if e.clp_index == clp_index
            ]
            for first, second in zip(entries, entries[1:]):
                assert second.start_cycle >= first.end_cycle

    def test_entries_fit_in_epoch(self, design):
        schedule = build_schedule(design, epochs=6)
        for entry in schedule.entries:
            assert entry.end_cycle <= design.epoch_cycles

    def test_images_completed(self, design):
        # 5 layers deep: after 7 epochs, images 0..2 have finished.
        schedule = build_schedule(design, epochs=7)
        assert schedule.images_completed() == 3

    def test_latency(self, design):
        schedule = build_schedule(design, epochs=1)
        assert schedule.latency_cycles() == 5 * design.epoch_cycles

    def test_idle_cycles(self, design):
        schedule = build_schedule(design, epochs=1)
        idle = schedule.idle_cycles_by_clp()
        assert min(idle.values()) == 0  # the bottleneck CLP has no idle
        assert all(v >= 0 for v in idle.values())

    def test_rejects_nonpositive_epochs(self, design):
        with pytest.raises(ValueError):
            build_schedule(design, epochs=0)

    def test_entries_for_clp(self, design):
        schedule = build_schedule(design, epochs=6)
        names = {e.layer_name for e in schedule.entries_for_clp(1)}
        assert names == {"L2", "L5"}
