"""Tests for the design-level bandwidth allocation semantics."""

import pytest

from repro.core.clp import CLPConfig
from repro.core.datatypes import FLOAT32
from repro.core.design import MultiCLPDesign
from repro.core.layer import ConvLayer
from repro.core.network import Network


@pytest.fixture
def design():
    l1 = ConvLayer("a", n=16, m=32, r=13, c=13, k=3)
    l2 = ConvLayer("b", n=32, m=32, r=13, c=13, k=3)
    net = Network("toy", [l1, l2])
    clps = [
        CLPConfig(4, 16, [l1], FLOAT32, [(13, 13)]),
        CLPConfig(8, 16, [l2], FLOAT32, [(13, 13)]),
    ]
    return MultiCLPDesign(net, clps, FLOAT32)


class TestEpochUnderBandwidth:
    def test_unlimited_is_identity(self, design):
        assert design.epoch_cycles_under_bandwidth(None) == design.epoch_cycles

    def test_generous_cap_hits_slack_floor(self, design):
        need = design.required_bandwidth_bytes_per_cycle()
        epoch = design.epoch_cycles_under_bandwidth(need * 2)
        assert epoch == pytest.approx(design.epoch_cycles * 1.02, rel=1e-6)

    def test_requirement_is_consistent(self, design):
        # At exactly the modelled requirement, the epoch stays within
        # the 2% slack (the requirement is defined by that property).
        need = design.required_bandwidth_bytes_per_cycle()
        epoch = design.epoch_cycles_under_bandwidth(need * 1.0001)
        assert epoch <= design.epoch_cycles * 1.02 * 1.001

    def test_monotone_in_cap(self, design):
        caps = [0.25, 0.5, 1.0, 2.0, 8.0, 64.0]
        epochs = [design.epoch_cycles_under_bandwidth(c) for c in caps]
        assert epochs == sorted(epochs, reverse=True)

    def test_starved_cap_scales_inversely(self, design):
        slow = design.epoch_cycles_under_bandwidth(0.25)
        slower = design.epoch_cycles_under_bandwidth(0.125)
        assert slower == pytest.approx(2 * slow, rel=0.1)

    def test_rejects_nonpositive(self, design):
        with pytest.raises(ValueError):
            design.epoch_cycles_under_bandwidth(0.0)

    def test_optimal_split_beats_equal_split(self, design):
        # The bisection allocates the channel optimally: no CLP-uniform
        # split can produce a shorter epoch.
        cap = 1.0
        optimal = design.epoch_cycles_under_bandwidth(cap)
        equal = max(
            clp.cycles_under_bandwidth(cap / len(design.clps))
            for clp in design.clps
        )
        assert optimal <= equal * 1.001


class TestRequiredBandwidth:
    def test_sum_of_clp_needs(self, design):
        target = design.epoch_cycles * 1.02
        expected = sum(clp.min_bandwidth_for(target) for clp in design.clps)
        assert design.required_bandwidth_bytes_per_cycle() == pytest.approx(
            expected
        )

    def test_gbps_conversion(self, design):
        per_cycle = design.required_bandwidth_bytes_per_cycle()
        assert design.required_bandwidth_gbps(100.0) == pytest.approx(
            per_cycle * 100e6 / 1e9
        )

    def test_looser_slack_needs_less(self, design):
        tight = design.required_bandwidth_bytes_per_cycle(slack=0.01)
        loose = design.required_bandwidth_bytes_per_cycle(slack=0.20)
        assert loose <= tight
