"""Tests for the FPGA part catalog and budgets."""

import pytest

from repro.fpga.parts import (
    PART_CATALOG,
    POWER_CLASSES,
    FpgaPart,
    ResourceBudget,
    budget_for,
    get_part,
)


class TestCatalog:
    def test_485t_capacities(self):
        part = get_part("485t")
        assert part.dsp_slices == 2800
        assert part.bram18k == 2060

    def test_690t_capacities(self):
        part = get_part("690t")
        assert part.dsp_slices == 3600
        assert part.bram18k == 2940

    def test_ultrascale_parts_exist(self):
        assert get_part("vu9p").dsp_slices == 6840
        assert get_part("vu11p").dsp_slices == 9216

    def test_name_normalization(self):
        assert get_part("Virtex-7 485T") is PART_CATALOG["485t"]
        assert get_part(" 690T ") is PART_CATALOG["690t"]

    def test_catalog_carries_cost_metadata(self):
        # Every catalog entry prices out for cost-to-serve ranking.
        for part in PART_CATALOG.values():
            assert part.relative_cost is not None and part.relative_cost > 0
            assert part.power_class in POWER_CLASSES
        # The 485T anchors the scale; bigger silicon costs more.
        assert get_part("485t").relative_cost == 1.0
        assert get_part("690t").relative_cost > get_part("485t").relative_cost
        assert get_part("vu9p").cost_weight > get_part("690t").cost_weight
        assert get_part("vu9p").power_class == "high"

    def test_cost_metadata_backward_compatible(self):
        # Pre-cost positional constructions keep working and estimate a
        # DSP-proportional weight (485T-sized DSP array = 1.0).
        part = FpgaPart("synthetic", 1400, 800, 10, 10)
        assert part.relative_cost is None
        assert part.power_class == "mid"
        assert part.cost_weight == pytest.approx(0.5)

    def test_cost_metadata_validation(self):
        with pytest.raises(ValueError):
            FpgaPart("bad", 100, 100, 1, 1, relative_cost=-2.0)
        with pytest.raises(ValueError):
            FpgaPart("bad", 100, 100, 1, 1, power_class="nuclear")

    def test_unknown_part(self):
        with pytest.raises(ValueError):
            get_part("zynq7020")


class TestBudgets:
    def test_paper_budgets_485t(self):
        # Section 6.1: 2,240 DSP and 1,648 BRAM on the 485T.
        budget = budget_for("485t")
        assert budget.dsp == 2240
        assert budget.bram18k == 1648

    def test_paper_budgets_690t(self):
        # Section 6.1: 2,880 DSP and 2,352 BRAM on the 690T.
        budget = budget_for("690t")
        assert budget.dsp == 2880
        assert budget.bram18k == 2352

    def test_default_is_unconstrained_bandwidth(self):
        assert budget_for("485t").bandwidth_gbps is None
        assert budget_for("485t").bytes_per_cycle() is None

    def test_bandwidth_conversion(self):
        budget = budget_for("485t", bandwidth_gbps=1.6, frequency_mhz=100.0)
        assert budget.bytes_per_cycle() == pytest.approx(16.0)

    def test_frequency_override(self):
        budget = budget_for("690t", frequency_mhz=170.0)
        assert budget.cycles_per_second == pytest.approx(170e6)

    def test_with_bandwidth(self):
        base = budget_for("485t")
        capped = base.with_bandwidth(2.0)
        assert capped.bandwidth_gbps == 2.0
        assert capped.dsp == base.dsp

    def test_with_frequency(self):
        fast = budget_for("485t").with_frequency(200.0)
        assert fast.frequency_mhz == 200.0

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            get_part("485t").budget(fraction=0)
        with pytest.raises(ValueError):
            get_part("485t").budget(fraction=1.5)

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            ResourceBudget(dsp=0, bram18k=100)
        with pytest.raises(ValueError):
            ResourceBudget(dsp=100, bram18k=100, bandwidth_gbps=-1)
        with pytest.raises(ValueError):
            ResourceBudget(dsp=100, bram18k=100, frequency_mhz=0)
