"""Tests for the ASCII visualizations."""

import pytest

from repro.analysis.tables import design_for
from repro.analysis.visualize import (
    compare_single_vs_multi,
    partition_summary,
    schedule_gantt,
    utilization_bars,
)
from repro.core.utilization import utilization_report
from repro.networks import alexnet, squeezenet


@pytest.fixture(scope="module")
def multi():
    return design_for("alexnet", "690t", "float32", single=False)


@pytest.fixture(scope="module")
def single():
    return design_for("alexnet", "690t", "float32", single=True)


class TestScheduleGantt:
    def test_one_row_pair_per_clp(self, multi):
        text = schedule_gantt(multi)
        for index in range(multi.num_clps):
            assert f"CLP{index}" in text

    def test_bottleneck_has_no_idle(self, multi):
        text = schedule_gantt(multi)
        rows = [line for line in text.splitlines() if line.startswith("CLP")]
        # At least one CLP row ends without idle dots before the bar.
        assert any("." not in row for row in rows)

    def test_epoch_header(self, multi):
        assert f"epoch = {multi.epoch_cycles} cycles" in schedule_gantt(multi)

    def test_width_respected(self, multi):
        text = schedule_gantt(multi, width=40)
        rows = [line for line in text.splitlines() if line.startswith("CLP")]
        for row in rows:
            bar = row.split("|")[1]
            assert len(bar) <= 44  # width plus rounding slack

    def test_rejects_tiny_width(self, multi):
        with pytest.raises(ValueError):
            schedule_gantt(multi, width=5)

    def test_legend_names_layers(self, multi):
        text = schedule_gantt(multi)
        for layer in multi.network:
            assert layer.name in text


class TestUtilizationBars:
    def test_section32_motivation(self):
        # The SqueezeNet mismatch figure from Section 3.2.
        report = utilization_report(squeezenet(), 9, 64)
        text = utilization_bars(report)
        assert "33.3%" in text  # layer 1
        assert "22.2%" in text  # layer 2
        assert "76.4%" in text  # overall

    def test_one_bar_per_layer(self):
        report = utilization_report(alexnet(), 7, 64)
        text = utilization_bars(report)
        assert text.count("|") == 2 * len(alexnet())

    def test_full_utilization_fills_bar(self):
        report = utilization_report(alexnet(), 1, 1)
        text = utilization_bars(report, width=10)
        assert "##########" in text


class TestPartitionSummary:
    def test_mentions_all_layers(self, multi):
        text = partition_summary(multi)
        for layer in multi.network:
            assert layer.name in text

    def test_total_units(self, multi):
        assert f"{multi.total_units} MAC units" in partition_summary(multi)


class TestComparison:
    def test_compare_contains_both_sections(self, single, multi):
        text = compare_single_vs_multi(alexnet(), single, multi)
        assert "Single-CLP" in text
        assert "Multi-CLP" in text
        assert "speedup" in text
