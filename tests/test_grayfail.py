"""Tests for gray failures, detection, and timeout failover.

The load-bearing guarantees, in test order:

* :class:`DetectorSpec` validates its knobs, knows when it is inert
  (``active``), and round-trips through JSON;
* the :class:`FailureDetector` state machine ejects on probe-failure
  streaks, re-admits after probation, enforces the ejection budget,
  ejects error-rate and p99 outliers, and keeps an honest
  mean-time-to-detect ledger (lags, misses, false positives);
* **bit-exactness**: an inert oracle detector with no gray faults
  reproduces a plain run *exactly*, dict-for-dict, on both engines —
  and the fast path refuses an active detector rather than silently
  diverging;
* gray faults behave: stragglers stretch latency without dying, flaky
  boards lose requests without a detector and fail them over with one,
  and the ``detected_healthy_replicas`` gauge diverges from the oracle
  gauge exactly during detection lag;
* request timeouts convert unbounded waits into ``timed_out`` with
  conservation intact, and a run-level detector overrides the
  scenario's;
* results carry the detector spec and MTTD through serialization, and
  legacy records (no detector keys) round-trip byte-identically.
"""

import json
import os

import pytest

from repro.core.serialize import fleet_result_from_dict, fleet_result_to_dict
from repro.fleet import DeviceSpec, plan_capacity, simulate_fleet
from repro.fleet.detector import (
    DetectorSpec,
    FailureDetector,
    detector_spec_from_dict,
    detector_spec_to_dict,
)
from repro.obs import ObsSpec
from repro.scenario import DegradedReplica, FlakyReplica, get_scenario
from repro.serve import SLOSpec, TenantSpec, make_arrival_process

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


def _tenants(design, rate_mult):
    epoch = design.epoch_cycles
    proc = make_arrival_process("poisson", rate_mult / epoch)
    return [TenantSpec(design.network.name, proc)]


def _fleet(design, replicas, rate_mult, *, epochs=60, seed=0,
           queue_depth=10**6, drain=False, scenario=None, detector=None,
           engine="auto", obs=None):
    return simulate_fleet(
        DeviceSpec(design).replicated(replicas),
        _tenants(design, rate_mult),
        duration_cycles=epochs * design.epoch_cycles,
        seed=seed,
        queue_depth=queue_depth,
        drain=drain,
        scenario=scenario,
        detector=detector,
        engine=engine,
        obs=obs,
    )


def _epoch_ms(design, frequency_mhz=100.0):
    return design.epoch_cycles / (frequency_mhz * 1e6) * 1e3


# --------------------------------------------------------------- spec
class TestDetectorSpec:
    def test_defaults_are_inert(self):
        spec = DetectorSpec()
        assert spec.mode == "oracle"
        assert not spec.active

    def test_probe_and_timeout_are_active(self):
        assert DetectorSpec(mode="probe").active
        assert DetectorSpec(request_timeout_ms=1.0).active

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorSpec(mode="psychic")
        with pytest.raises(ValueError):
            DetectorSpec(probe_interval_ms=-1.0)
        with pytest.raises(ValueError):
            DetectorSpec(request_timeout_ms=0.0)
        with pytest.raises(ValueError):
            DetectorSpec(outlier_error_rate=0.0)
        with pytest.raises(ValueError):
            DetectorSpec(outlier_p99_factor=1.0)
        with pytest.raises(ValueError):
            DetectorSpec(max_eject_fraction=0.0)
        with pytest.raises(ValueError):
            DetectorSpec(unhealthy_after=0)
        with pytest.raises(ValueError):
            DetectorSpec(max_failovers=-1)

    def test_round_trip(self):
        spec = DetectorSpec(mode="probe", probe_interval_ms=0.5,
                            outlier_error_rate=0.25,
                            request_timeout_ms=2.0, max_failovers=3)
        assert detector_spec_from_dict(detector_spec_to_dict(spec)) == spec

    def test_from_dict_ignores_unknown_keys(self):
        record = detector_spec_to_dict(DetectorSpec(mode="probe"))
        record["future_knob"] = 7
        assert detector_spec_from_dict(record) == DetectorSpec(mode="probe")


# ----------------------------------------------------- state machine
def _detector(num=4, **kwargs):
    spec = DetectorSpec(mode="probe", **kwargs)
    return FailureDetector(spec, num, epoch=10.0, cycles_per_ms=100.0)


class TestFailureDetector:
    def test_probe_streak_ejects(self):
        fd = _detector()
        assert fd.record_probe(0, 40.0, ok=False) is None
        assert fd.record_probe(0, 80.0, ok=False) == "ejected"
        assert not fd.routable(0)
        assert fd.detected_healthy_count() == 3

    def test_single_failure_does_not_eject(self):
        fd = _detector()
        assert fd.record_probe(0, 40.0, ok=False) is None
        assert fd.record_probe(0, 80.0, ok=True) is None
        assert fd.record_probe(0, 120.0, ok=False) is None  # streak reset
        assert fd.routable(0)

    def test_readmission_waits_for_probation(self):
        fd = _detector()
        fd.record_probe(0, 40.0, ok=False)
        fd.record_probe(0, 80.0, ok=False)
        # probation = 2 * probe_interval = 80 cycles from ejection (t=80)
        assert fd.record_probe(0, 120.0, ok=True) is None
        assert fd.record_probe(0, 160.0, ok=True) == "readmitted"
        assert fd.routable(0)

    def test_ejection_budget_always_leaves_survivors(self):
        fd = _detector(num=4)  # max_eject_fraction=0.5 -> at most 2
        for index in (0, 1, 2):
            fd.record_probe(index, 40.0, ok=False)
            fd.record_probe(index, 80.0, ok=False)
        assert fd.detected_healthy_count() == 2
        assert fd.routable(2)  # budget exhausted; third stays in

    def test_error_rate_outlier_ejected(self):
        fd = _detector(outlier_error_rate=0.5, min_requests=5)
        for _ in range(5):
            fd.record_error(1)
            fd.record_success(0, 10.0)
        assert fd.evaluate_outliers(100.0) == [(1, "error-rate")]
        assert not fd.routable(1)

    def test_p99_outlier_ejected(self):
        fd = _detector(outlier_error_rate=None, outlier_p99_factor=2.0,
                       min_requests=1)
        for index in (0, 1, 2):
            for _ in range(5):
                fd.record_success(index, 10.0)
        for _ in range(5):
            fd.record_success(3, 100.0)
        assert fd.evaluate_outliers(100.0) == [(3, "p99-outlier")]

    def test_outlier_window_resets(self):
        fd = _detector(outlier_error_rate=0.5, min_requests=5)
        for _ in range(5):
            fd.record_error(1)
        fd.evaluate_outliers(100.0)
        # Fresh window: old errors must not eject anyone again.
        fd._readmit(1)
        assert fd.evaluate_outliers(200.0) == []

    def test_mttd_ledger(self):
        fd = _detector()
        fd.note_onset(0, 100.0)
        fd.record_probe(0, 120.0, ok=False)
        fd.record_probe(0, 150.0, ok=False)
        assert fd.detection_lags == [50.0]
        assert fd.mean_time_to_detect() == 50.0

    def test_missed_detection_counted(self):
        fd = _detector()
        fd.note_onset(1, 10.0)
        fd.note_clear(1, 20.0)
        assert fd.missed_detections == 1
        assert fd.mean_time_to_detect() is None

    def test_false_positive_counted(self):
        fd = _detector()
        fd.record_probe(2, 40.0, ok=False)
        fd.record_probe(2, 80.0, ok=False)
        assert fd.false_positives == 1

    def test_onset_while_ejected_is_zero_lag(self):
        fd = _detector()
        fd.record_probe(0, 40.0, ok=False)
        fd.record_probe(0, 80.0, ok=False)
        fd.note_onset(0, 90.0)
        assert fd.detection_lags[-1] == 0.0


# ------------------------------------------------------ bit-exactness
class TestBitExactness:
    def test_inert_oracle_detector_is_bit_exact(self, toy_design):
        """An oracle spec with no timeout must change *nothing*."""
        for engine in ("event", "fast"):
            plain = _fleet(toy_design, 3, 2.5, seed=11, engine=engine)
            oracle = _fleet(toy_design, 3, 2.5, seed=11, engine=engine,
                            detector=DetectorSpec(mode="oracle"))
            assert oracle.detector is None  # inert spec leaves no trace
            assert fleet_result_to_dict(oracle) == fleet_result_to_dict(plain)

    def test_fast_engine_refuses_active_detector(self, toy_design):
        with pytest.raises(ValueError, match="detector"):
            _fleet(toy_design, 3, 2.5, engine="fast",
                   detector=DetectorSpec(mode="probe"))

    def test_auto_engine_accepts_active_detector(self, toy_design):
        result = _fleet(toy_design, 3, 2.5, engine="auto",
                        detector=DetectorSpec(mode="probe"))
        assert result.detector is not None
        assert result.detector.mode == "probe"

    def test_gray_runs_reproduce(self, toy_design):
        a = _fleet(toy_design, 4, 2.5, seed=9, scenario="gray-failure")
        b = _fleet(toy_design, 4, 2.5, seed=9, scenario="gray-failure")
        assert fleet_result_to_dict(a) == fleet_result_to_dict(b)


# ------------------------------------------------------ gray behavior
class TestGrayBehavior:
    def test_straggler_stretches_latency(self, toy_design):
        slow = get_scenario("steady").faults + (
            DegradedReplica(replica=0, slowdown=8.0, start=0.1, duration=0.8),
        )
        import dataclasses
        scenario = dataclasses.replace(
            get_scenario("steady"), name="one-straggler", faults=slow
        )
        plain = _fleet(toy_design, 2, 1.5, seed=3, drain=True)
        gray = _fleet(toy_design, 2, 1.5, seed=3, drain=True,
                      scenario=scenario)
        assert any(i.kind == "gray" for i in gray.incidents)
        # Same arrivals (faults draw on their own substream), worse tail.
        assert gray.total_arrivals == plain.total_arrivals
        worst = max(t.latency.p99 for t in gray.tenants if t.latency)
        base = max(t.latency.p99 for t in plain.tenants if t.latency)
        assert worst > base

    def test_flaky_without_detector_loses(self, toy_design):
        import dataclasses
        scenario = dataclasses.replace(
            get_scenario("steady"), name="flaky-bare",
            faults=(FlakyReplica(replica=0, error_rate=0.8,
                                 start=0.05, duration=0.9),),
        )
        result = _fleet(toy_design, 2, 2.0, seed=1, drain=True,
                        scenario=scenario)
        assert result.total_lost > 0
        assert result.total_failed_over == 0  # no detector, no budget

    def test_flaky_with_detector_fails_over(self, toy_design):
        result = _fleet(toy_design, 3, 2.0, seed=1, drain=True,
                        scenario="flaky-replica")
        assert result.total_failed_over > 0
        # Failover rescues attempts a bare flaky board would lose.
        assert any(i.kind == "gray" for i in result.incidents)

    def test_detected_gauge_diverges_during_lag(self, toy_design):
        """Satellite: oracle vs detected health, side by side.

        Gray replicas stay oracle-healthy (that is the point), so the
        ``healthy_replicas`` gauge never moves while probe ejections
        drag ``detected_healthy_replicas`` below it.
        """
        result = _fleet(toy_design, 4, 2.0, seed=5, epochs=80,
                        scenario="gray-failure",
                        obs=ObsSpec(timeseries=True, windows=16))
        ts = result.timeseries
        assert ts is not None
        oracle = [v for v in ts.get("healthy_replicas") if v is not None]
        detected = [
            v for v in ts.get("detected_healthy_replicas") if v is not None
        ]
        assert oracle and detected
        assert max(oracle) == 4.0 and min(oracle) == 4.0  # gray != down
        assert min(detected) < 4.0  # ejections happened
        assert result.resilience is not None
        assert result.resilience.mean_time_to_detect_cycles is not None

    def test_no_detector_means_no_mttd(self, toy_design):
        result = _fleet(toy_design, 3, 2.0, seed=0, scenario="rack-loss")
        assert result.resilience is not None
        assert result.resilience.mean_time_to_detect_cycles is None


# --------------------------------------------------- timeout failover
class TestTimeoutFailover:
    def test_timeouts_convert_waits_and_conserve(self, toy_design):
        epoch_ms = _epoch_ms(toy_design)
        detector = DetectorSpec(request_timeout_ms=3.0 * epoch_ms,
                                max_failovers=1)
        result = _fleet(toy_design, 2, 4.0, seed=2, drain=True,
                        detector=detector)
        assert result.total_timed_out > 0
        for tenant in result.tenants:
            out = (tenant.completions + tenant.drops + tenant.lost
                   + tenant.timed_out + tenant.in_flight)
            assert tenant.arrivals == out
            assert 0 <= tenant.failed_over <= tenant.arrivals
        text = result.format()
        assert "timed-out" in text

    def test_plain_format_has_no_timeout_columns(self, toy_design):
        text = _fleet(toy_design, 2, 1.0).format()
        assert "timed-out" not in text
        assert "failed-over" not in text

    def test_run_level_detector_overrides_scenario(self, toy_design):
        """gray-failure ships a probe detector; an explicit oracle spec
        (no timeout) must win and disable timeouts entirely."""
        result = _fleet(toy_design, 4, 2.0, seed=5, scenario="gray-failure",
                        detector=DetectorSpec(mode="oracle"))
        assert result.detector is not None
        assert result.detector.mode == "oracle"
        assert result.total_timed_out == 0

    def test_plan_capacity_accepts_detector(self, toy_design):
        plan = plan_capacity(
            DeviceSpec(toy_design),
            200.0,
            SLOSpec(max_drop_rate=0.5),
            max_replicas=4,
            duration_ms=2.0 * _epoch_ms(toy_design),
            scenario="flaky-replica",
        )
        assert plan.scenario == "flaky-replica"
        assert plan.probes


# ------------------------------------------------------ serialization
class TestSerialization:
    def test_detector_and_classes_round_trip(self, toy_design):
        result = _fleet(toy_design, 4, 2.5, seed=5, drain=True,
                        scenario="gray-failure")
        record = json.loads(json.dumps(fleet_result_to_dict(result)))
        assert record["detector"]["mode"] == "probe"
        loaded = fleet_result_from_dict(record)
        assert loaded.detector == result.detector
        assert [t.timed_out for t in loaded.tenants] == [
            t.timed_out for t in result.tenants
        ]
        assert [t.failed_over for t in loaded.tenants] == [
            t.failed_over for t in result.tenants
        ]
        assert (loaded.resilience.mean_time_to_detect_cycles
                == result.resilience.mean_time_to_detect_cycles)

    def test_plain_record_has_no_detector_keys(self, toy_design):
        record = fleet_result_to_dict(_fleet(toy_design, 2, 1.0))
        assert "detector" not in record
        for tenant in record["tenants"]:
            assert "timed_out" not in tenant
            assert "failed_over" not in tenant

    @pytest.mark.parametrize(
        "filename", ["sample_fleet_run.json", "sample_overload_run.json"]
    )
    def test_legacy_records_round_trip_byte_identical(self, filename):
        """Satellite: pre-detector records re-serialize unchanged."""
        path = os.path.join(DATA_DIR, filename)
        with open(path) as handle:
            record = json.load(handle)
        rewritten = json.loads(
            json.dumps(fleet_result_to_dict(fleet_result_from_dict(record)))
        )
        assert json.dumps(rewritten, sort_keys=True) == json.dumps(
            record, sort_keys=True
        )
        assert "detector" not in rewritten
        resilience = rewritten.get("resilience")
        if resilience is not None:
            assert "mean_time_to_detect_cycles" not in resilience
