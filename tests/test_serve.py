"""Tests for the multi-tenant traffic simulator (repro.serve).

Three layers of assurance:

* unit tests for arrival processes, queues, metrics, and SLO scoring;
* property-based (hypothesis) tests — conservation of requests,
  the pipeline-latency lower bound, determinism under a fixed seed,
  and monotonicity of p99 latency in the arrival rate;
* differential tests tying the serving layer to the analytic model
  (``epoch_cycles``-derived throughput, ``service_capacity_rps``) and
  to the cycle-level system simulator (``calibrate="simulate"``).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialize import (
    serve_result_from_dict,
    serve_result_to_dict,
)
from repro.serve import (
    BurstyArrivals,
    ConstantRate,
    PoissonArrivals,
    SLOSpec,
    TenantSpec,
    TraceArrivals,
    evaluate_slo,
    make_arrival_process,
    percentile,
    service_capacity_rps,
    simulate_traffic,
)

#: One compact profile for hypothesis: the engine is exercised hundreds
#: of times per property, so every run must stay in the milliseconds.
FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _serve(design, rate_mult, *, epochs=30, seed=0, process="constant",
           queue_depth=10**7, policy="drop-tail", drain=False):
    """Drive ``design`` at ``rate_mult`` times its epoch capacity."""
    epoch = design.epoch_cycles
    rate = rate_mult / epoch
    proc = make_arrival_process(process, rate, period_cycles=8.0 * epoch)
    return simulate_traffic(
        design,
        [TenantSpec(design.network.name, proc)],
        duration_cycles=epochs * epoch,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drain=drain,
    )


# --------------------------------------------------------------- arrivals
class TestArrivals:
    def test_constant_rate_is_evenly_spaced(self):
        process = ConstantRate(0.25)
        times = []
        stream = process.times(random.Random(0))
        for _ in range(5):
            times.append(next(stream))
        assert times == [0.0, 4.0, 8.0, 12.0, 16.0]

    def test_constant_subset_property(self):
        # A rate-r stream is a subset of a rate-2r stream (monotonicity
        # of p99 in arrival rate leans on this).
        slow = ConstantRate(0.1).times(random.Random(0))
        fast = ConstantRate(0.2).times(random.Random(0))
        slow_times = {next(slow) for _ in range(20)}
        fast_times = {next(fast) for _ in range(40)}
        assert slow_times <= fast_times

    def test_poisson_seeded_reproducible(self):
        process = PoissonArrivals(0.01)
        first = [next(process.times(random.Random(42))) for _ in range(1)]
        again = [next(process.times(random.Random(42))) for _ in range(1)]
        assert first == again

    def test_poisson_mean_rate(self):
        process = PoissonArrivals(0.02)
        stream = process.times(random.Random(7))
        times = [next(stream) for _ in range(4000)]
        observed = len(times) / times[-1]
        assert observed == pytest.approx(0.02, rel=0.1)

    def test_bursty_keeps_average_rate(self):
        process = BurstyArrivals(0.02, burstiness=5.0, period_cycles=2000.0)
        stream = process.times(random.Random(3))
        # A fixed-count sample tends to end mid-burst (length bias), so
        # average over many on/off cycles before checking the mean rate.
        times = [next(stream) for _ in range(30000)]
        observed = len(times) / times[-1]
        assert observed == pytest.approx(0.02, rel=0.15)

    def test_bursty_gaps_are_bimodal(self):
        # On-phase gaps are ~burstiness times shorter than the mean gap;
        # off phases insert much longer silences.
        process = BurstyArrivals(0.01, burstiness=8.0, period_cycles=5000.0)
        stream = process.times(random.Random(11))
        times = [next(stream) for _ in range(2000)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert max(gaps) > 5 * mean_gap

    def test_trace_replay_and_validation(self):
        trace = TraceArrivals([0.0, 5.0, 5.0, 9.0])
        assert list(trace.times(random.Random(0))) == [0.0, 5.0, 5.0, 9.0]
        with pytest.raises(ValueError):
            TraceArrivals([3.0, 1.0])
        with pytest.raises(ValueError):
            TraceArrivals([-1.0, 1.0])

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(-1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(0.1, burstiness=1.0)
        with pytest.raises(ValueError):
            BurstyArrivals(0.1, period_cycles=0.0)
        with pytest.raises(ValueError):
            make_arrival_process("weibull", 0.1)


# -------------------------------------------------------------- percentile
class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile(values, 0) == 1

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


# -------------------------------------------------- hypothesis properties
class TestServeProperties:
    @FAST
    @given(
        rate_mult=st.floats(min_value=0.05, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**32),
        queue_depth=st.integers(min_value=1, max_value=64),
        policy=st.sampled_from(["drop-tail", "drop-head"]),
        process=st.sampled_from(["constant", "poisson", "bursty"]),
    )
    def test_conservation(self, toy_design, rate_mult, seed, queue_depth,
                          policy, process):
        """Every arrival is accounted for: completed, dropped, or in flight."""
        result = _serve(
            toy_design, rate_mult, seed=seed, queue_depth=queue_depth,
            policy=policy, process=process,
        )
        tenant = result.tenants[0]
        assert tenant.arrivals == (
            tenant.completions + tenant.drops + tenant.in_flight
        )

    @FAST
    @given(
        rate_mult=st.floats(min_value=0.05, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**32),
        process=st.sampled_from(["constant", "poisson", "bursty"]),
    )
    def test_drain_completes_everything(self, toy_design, rate_mult, seed,
                                        process):
        result = _serve(toy_design, rate_mult, seed=seed, process=process,
                        drain=True)
        tenant = result.tenants[0]
        assert tenant.in_flight == 0
        assert tenant.arrivals == tenant.completions + tenant.drops
        assert tenant.drops == 0  # unbounded queue in _serve

    @FAST
    @given(
        rate_mult=st.floats(min_value=0.05, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**32),
        process=st.sampled_from(["constant", "poisson", "bursty"]),
    )
    def test_latency_at_least_pipeline_depth(self, toy_design, rate_mult,
                                             seed, process):
        """No request beats the epoch pipeline: latency >= depth * epoch."""
        result = _serve(toy_design, rate_mult, seed=seed, process=process)
        tenant = result.tenants[0]
        if tenant.latency is None:
            return
        bound = toy_design.pipeline_depth_images * result.epoch_cycles
        assert tenant.latency.min >= bound - 1e-9

    @FAST
    @given(
        rate_mult=st.floats(min_value=0.05, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**32),
        queue_depth=st.integers(min_value=1, max_value=64),
        process=st.sampled_from(["constant", "poisson", "bursty"]),
    )
    def test_determinism_under_fixed_seed(self, toy_design, rate_mult, seed,
                                          queue_depth, process):
        first = _serve(toy_design, rate_mult, seed=seed,
                       queue_depth=queue_depth, process=process)
        second = _serve(toy_design, rate_mult, seed=seed,
                        queue_depth=queue_depth, process=process)
        assert first == second

    @FAST
    @given(
        rate_mult=st.floats(min_value=0.02, max_value=3.0),
        factor=st.integers(min_value=2, max_value=4),
        epochs=st.sampled_from([11, 23, 40]),
    )
    def test_p99_monotone_in_arrival_rate(self, toy_design, rate_mult,
                                          factor, epochs):
        """More offered load never improves tail latency.

        Constant-rate streams make this exact: a rate-r stream is a
        subset of the rate-k*r stream, and with FIFO service every
        shared request is delayed at least as much under the higher
        rate.  Drained runs keep the completed populations comparable.
        """
        calm = _serve(toy_design, rate_mult, epochs=epochs, drain=True)
        loaded = _serve(toy_design, rate_mult * factor, epochs=epochs,
                        drain=True)
        calm_t, loaded_t = calm.tenants[0], loaded.tenants[0]
        if calm_t.latency is None or loaded_t.latency is None:
            return
        assert loaded_t.latency.p99 >= calm_t.latency.p99 - 1e-9


# ------------------------------------------------------------ differential
class TestDifferentialAgainstModel:
    def test_saturated_throughput_matches_epoch_rate(self, alexnet_485t_design):
        """Ties serve to opt: steady completion rate == 1 / epoch_cycles.

        Under saturating traffic the dispatcher admits one image per
        epoch boundary, so the measured inter-completion rate must equal
        the analytic model's epoch-derived throughput to float precision.
        """
        design = alexnet_485t_design
        result = _serve(design, 3.0, epochs=60)
        steady = result.tenants[0].steady_rate_per_cycle
        assert steady == pytest.approx(1.0 / design.epoch_cycles, rel=1e-12)

    def test_saturated_throughput_matches_on_toy(self, toy_design):
        result = _serve(toy_design, 2.0, epochs=100)
        steady = result.tenants[0].steady_rate_per_cycle
        assert steady == pytest.approx(1.0 / toy_design.epoch_cycles, rel=1e-12)

    def test_low_rate_serves_every_request(self, toy_design):
        """Below capacity nothing queues for long and nothing drops."""
        result = _serve(toy_design, 0.25, epochs=80, drain=True)
        tenant = result.tenants[0]
        assert tenant.drops == 0
        assert tenant.completions == tenant.arrivals
        # Waiting never exceeds one epoch when the queue stays empty:
        # latency is pipeline depth plus boundary alignment.
        depth = toy_design.pipeline_depth_images
        bound = (depth + 1) * result.epoch_cycles
        assert tenant.latency.max <= bound + 1e-9

    def test_capacity_matches_design_throughput(self, alexnet_485t_design):
        assert service_capacity_rps(
            alexnet_485t_design, 100.0
        ) == pytest.approx(alexnet_485t_design.throughput(100.0), rel=1e-12)

    def test_pipeline_latency_matches_design(self, alexnet_485t_design):
        from repro.serve import pipeline_latency_cycles

        assert pipeline_latency_cycles(
            alexnet_485t_design
        ) == pytest.approx(alexnet_485t_design.latency_cycles())

    def test_calibrated_epoch_matches_system_sim(self, toy_design):
        """Ties serve to sim.system: simulated epoch == analytic epoch."""
        from repro.sim.system import simulate_system

        modeled = _serve(toy_design, 1.0, epochs=10)
        calibrated = simulate_traffic(
            toy_design,
            [TenantSpec("toy", ConstantRate(1.0 / toy_design.epoch_cycles))],
            duration_cycles=10 * toy_design.epoch_cycles,
            calibrate="simulate",
        )
        sim_epoch = simulate_system(toy_design).epoch_cycles
        assert calibrated.epoch_cycles == pytest.approx(sim_epoch)
        assert calibrated.epoch_cycles == pytest.approx(
            modeled.epoch_cycles, rel=1e-12
        )

    def test_bandwidth_cap_stretches_epoch(self, toy_design):
        capped = simulate_traffic(
            toy_design,
            [TenantSpec("toy", ConstantRate(1.0 / toy_design.epoch_cycles))],
            duration_cycles=10 * toy_design.epoch_cycles,
            bytes_per_cycle=0.5,
        )
        assert capped.epoch_cycles == pytest.approx(
            toy_design.epoch_cycles_under_bandwidth(0.5)
        )
        assert capped.epoch_cycles > toy_design.epoch_cycles


# ------------------------------------------------------- engine behaviour
class TestEngineBehaviour:
    def test_bounded_queue_drops_overload(self, toy_design):
        result = _serve(toy_design, 4.0, epochs=40, queue_depth=4)
        tenant = result.tenants[0]
        assert tenant.drops > 0
        assert tenant.peak_queue_depth <= 4

    def test_drop_head_favours_fresh_requests(self, toy_design):
        tail = _serve(toy_design, 4.0, epochs=40, queue_depth=4,
                      policy="drop-tail")
        head = _serve(toy_design, 4.0, epochs=40, queue_depth=4,
                      policy="drop-head")
        # Same offered load, same losses -- but drop-head serves newer
        # requests, so its completed latencies are no worse.
        assert head.tenants[0].drops == tail.tenants[0].drops
        assert head.tenants[0].latency.p50 <= tail.tenants[0].latency.p50

    def test_joint_design_per_tenant_slots(self, joint_design_690t):
        joint = joint_design_690t
        epoch = joint.epoch_cycles
        tenants = [
            TenantSpec("AlexNet", ConstantRate(2.0 / epoch)),
            TenantSpec("SqueezeNet", ConstantRate(2.0 / epoch)),
        ]
        result = simulate_traffic(
            joint, tenants, duration_cycles=50 * epoch, queue_depth=10**6
        )
        # Both tenants progress concurrently: one image each per epoch.
        for tenant in result.tenants:
            assert tenant.steady_rate_per_cycle == pytest.approx(
                1.0 / epoch, rel=1e-12
            )

    def test_joint_tenant_names_validated(self, joint_design_690t):
        epoch = joint_design_690t.epoch_cycles
        with pytest.raises(ValueError):
            simulate_traffic(
                joint_design_690t,
                [TenantSpec("AlexNet", ConstantRate(1.0 / epoch))],
                duration_cycles=10 * epoch,
            )

    def test_clp_utilization_tracks_load(self, toy_design):
        idle = _serve(toy_design, 0.2, epochs=60)
        busy = _serve(toy_design, 3.0, epochs=60)
        assert all(0.0 <= f <= 1.0 for f in idle.clp_busy_fraction)
        for lazy, hard in zip(idle.clp_busy_fraction, busy.clp_busy_fraction):
            assert hard > lazy
        # At saturation the epoch-limiting CLP approaches full duty.
        assert max(busy.clp_busy_fraction) > 0.9

    def test_rejects_bad_arguments(self, toy_design):
        spec = [TenantSpec("toy", ConstantRate(1e-4))]
        with pytest.raises(ValueError):
            simulate_traffic(toy_design, spec, duration_cycles=0)
        with pytest.raises(ValueError):
            simulate_traffic(toy_design, spec, duration_cycles=10, queue_depth=0)
        with pytest.raises(ValueError):
            simulate_traffic(toy_design, spec, duration_cycles=10,
                             policy="tail-drop")
        with pytest.raises(ValueError):
            simulate_traffic(toy_design, spec, duration_cycles=10,
                             calibrate="vibes")

    def test_request_limit_bounds_stream(self, toy_design):
        result = simulate_traffic(
            toy_design,
            [TenantSpec("toy", ConstantRate(1.0), limit=7)],
            duration_cycles=20 * toy_design.epoch_cycles,
            drain=True,
        )
        assert result.tenants[0].arrivals == 7
        assert result.tenants[0].completions == 7


# ------------------------------------------------------------- serialization
class TestSerialization:
    def test_round_trip(self, toy_design):
        result = _serve(toy_design, 1.5, epochs=25, seed=9, process="poisson")
        assert serve_result_from_dict(serve_result_to_dict(result)) == result

    def test_round_trip_without_completions(self, toy_design):
        result = _serve(toy_design, 0.5, epochs=1)
        assert result.tenants[0].latency is None
        assert serve_result_from_dict(serve_result_to_dict(result)) == result

    def test_rejects_unknown_schema(self, toy_design):
        record = serve_result_to_dict(_serve(toy_design, 1.0, epochs=5))
        record["schema"] = 99
        with pytest.raises(ValueError):
            serve_result_from_dict(record)

    def test_format_mentions_tenants_and_capacity(self, toy_design):
        text = _serve(toy_design, 1.0, epochs=20).format()
        assert "toy" in text
        assert "capacity" in text
        assert "CLP utilization" in text

    def test_tenant_lookup(self, toy_design):
        result = _serve(toy_design, 1.0, epochs=5)
        assert result.tenant("toy").name == "toy"
        with pytest.raises(KeyError):
            result.tenant("nope")


# --------------------------------------------------------------------- SLO
class TestSLO:
    def test_generous_slo_met(self, toy_design):
        result = _serve(toy_design, 0.3, epochs=60)
        report = evaluate_slo(result, SLOSpec(p99_ms=1e6, max_drop_rate=0.0))
        assert report.meets
        assert report.attainment == 1.0

    def test_overload_violates_drop_budget(self, toy_design):
        result = _serve(toy_design, 4.0, epochs=40, queue_depth=2)
        report = evaluate_slo(result, SLOSpec(max_drop_rate=0.0))
        assert not report.meets
        assert report.worst_drop_rate > 0
        assert any("drops" in v for t in report.tenants for v in t.violations)

    def test_tight_latency_violated(self, toy_design):
        result = _serve(toy_design, 1.0, epochs=40)
        # The pipeline alone exceeds one epoch, so demand sub-epoch p99.
        impossible_ms = result.cycles_to_ms(result.epoch_cycles) / 2
        report = evaluate_slo(result, SLOSpec(p99_ms=impossible_ms,
                                              max_drop_rate=1.0))
        assert not report.meets

    def test_no_traffic_trivially_passes(self, toy_design):
        result = simulate_traffic(
            toy_design,
            [TenantSpec("toy", TraceArrivals(()))],
            duration_cycles=5 * toy_design.epoch_cycles,
        )
        report = evaluate_slo(result, SLOSpec(p99_ms=1.0))
        assert report.meets

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SLOSpec(p99_ms=0.0)
        with pytest.raises(ValueError):
            SLOSpec(max_drop_rate=1.5)
        with pytest.raises(ValueError):
            SLOSpec(min_throughput_rps=-1.0)


# ------------------------------------------------------------- dse ranking
class TestRankByTraffic:
    @pytest.fixture(scope="class")
    def sweep_results(self):
        from repro.dse import DesignPoint, run_sweep

        points = [
            DesignPoint(network="alexnet", dsp=800, bram18k=700, single=True),
            DesignPoint(network="alexnet", dsp=2240, bram18k=1648),
        ]
        return run_sweep(points).results

    def test_bigger_budget_ranks_first_under_load(self, sweep_results):
        from repro.dse import rank_by_traffic, traffic_rank_table

        slo = SLOSpec(p99_ms=500.0, max_drop_rate=0.05)
        rankings = rank_by_traffic(
            sweep_results, rate_rps=30.0, slo=slo, duration_ms=400.0
        )
        assert len(rankings) == 2
        assert rankings[0].result.point.dsp == 2240
        table = traffic_rank_table(rankings, rate_rps=30.0, slo=slo)
        assert "SLO ranking" in table
        assert "alexnet" in table

    def test_rankings_are_deterministic(self, sweep_results):
        from repro.dse import rank_by_traffic

        slo = SLOSpec(p99_ms=500.0, max_drop_rate=0.05)
        first = rank_by_traffic(sweep_results, 30.0, slo, duration_ms=200.0)
        second = rank_by_traffic(sweep_results, 30.0, slo, duration_ms=200.0)
        assert [r.serve for r in first] == [r.serve for r in second]


# --------------------------------------------------------------------- CLI
class TestServeCli:
    def test_serve_single_network(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.serialize import load_serve_result

        path = tmp_path / "default.json"
        assert main([
            "serve", "--network", "alexnet", "--rate", "40",
            "--duration-ms", "200", "--seed", "1", "--save", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out
        assert "p99 ms" in out
        # The CLI floors the window at 3 pipeline latencies, so even a
        # short --duration-ms completes requests and reports percentiles.
        tenant = load_serve_result(str(path)).tenants[0]
        assert tenant.completions > 0
        assert tenant.latency is not None

    def test_serve_joint_comma_separated(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "--network", "alexnet,squeezenet", "--part", "VX690T",
            "--dtype", "fixed16", "--rate", "100", "--duration-ms", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "AlexNet" in out and "SqueezeNet" in out

    def test_serve_save_round_trips(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.serialize import load_serve_result

        path = tmp_path / "serve.json"
        assert main([
            "serve", "--network", "alexnet", "--rate", "100",
            "--duration-ms", "150", "--drain", "--save", str(path),
        ]) == 0
        result = load_serve_result(str(path))
        assert result.tenants[0].arrivals > 0

    def test_serve_rejects_rate_mismatch(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "serve", "--network", "alexnet", "--rates", "10", "20",
            ])
