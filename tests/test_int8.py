"""Tests for the int8 extension (fractional DSP-per-MAC datatype).

Not evaluated in the paper, but a direct consequence of its scaling
argument (Section 6.2): packing two MACs per DSP slice doubles the
arithmetic units a budget buys, widening the Single-CLP mismatch that
Multi-CLP partitioning repairs.
"""

import pytest

from repro.core.cost_model import dsp_count, max_units_for_budget
from repro.core.datatypes import FIXED16, FLOAT32, INT8, DataType
from repro.core.layer import ConvLayer
from repro.core.cost_model import bram_breakdown, buffer_spec
from repro.fpga.parts import budget_for
from repro.networks import alexnet
from repro.opt import optimize_multi_clp, optimize_single_clp


class TestInt8Datatype:
    def test_lookup(self):
        assert DataType.from_name("int8") is INT8
        assert DataType.from_name("fixed8") is INT8

    def test_half_dsp_per_mac(self):
        assert INT8.dsp_per_mac == 0.5

    def test_word_size(self):
        assert INT8.word_bytes == 1
        assert INT8.words_per_bram_entry == 4


class TestInt8DspModel:
    def test_even_units(self):
        assert dsp_count(4, 8, INT8) == 16

    def test_odd_units_round_up(self):
        assert dsp_count(3, 3, INT8) == 5  # ceil(9/2)

    def test_budget_doubles_units(self):
        assert max_units_for_budget(2880, INT8) == 2 * max_units_for_budget(
            2880, FIXED16
        )

    def test_int8_never_more_than_fixed16(self):
        for tn, tm in [(1, 1), (3, 7), (16, 64), (9, 13)]:
            assert dsp_count(tn, tm, INT8) <= dsp_count(tn, tm, FIXED16)


class TestInt8BramModel:
    def test_four_way_bank_packing(self):
        layer = ConvLayer("l", n=8, m=8, r=30, c=30, k=5)
        spec = buffer_spec([layer], [(30, 30)])
        in_f32, _, out_f32 = bram_breakdown(8, 8, spec, FLOAT32)
        in_i8, _, out_i8 = bram_breakdown(8, 8, spec, INT8)
        assert in_i8 * 4 == in_f32
        assert out_i8 * 4 == out_f32


class TestInt8EndToEnd:
    def test_single_clp_utilization_collapses_further(self):
        # More units than fixed16 -> even lower Single-CLP utilization
        # (the Section 6.2 scaling trend extended by one step).
        budget = budget_for("690t")
        fixed = optimize_single_clp(alexnet(), budget, FIXED16)
        int8 = optimize_single_clp(alexnet(), budget, INT8)
        assert (
            int8.arithmetic_utilization < fixed.arithmetic_utilization
        )

    def test_multi_clp_recovers(self):
        budget = budget_for("690t")
        single = optimize_single_clp(alexnet(), budget, INT8)
        multi = optimize_multi_clp(alexnet(), budget, INT8)
        assert multi.epoch_cycles < single.epoch_cycles
        assert multi.arithmetic_utilization > 0.85

    def test_budget_respected(self):
        budget = budget_for("485t")
        design = optimize_multi_clp(alexnet(), budget, INT8)
        assert design.dsp <= budget.dsp
        assert design.bram <= budget.bram18k
