"""Tests for the discrete-event Multi-CLP system simulator.

The canned two-layer ``toy_design`` lives in tests/conftest.py and is
shared with the serving-layer tests (test_serve.py)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.system import SharedChannel, simulate_system


class TestEngine:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append("b"))
        sim.schedule(1, lambda: log.append("a"))
        sim.schedule(9, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 9

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append(1))
        sim.schedule(1, lambda: log.append(2))
        sim.run()
        assert log == [1, 2]

    def test_until_limit(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append(1))
        sim.schedule(10, lambda: log.append(2))
        sim.run(until=5)
        assert log == [1]
        assert sim.now == 5

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: sim.schedule(1, lambda: log.append("inner")))
        sim.run()
        assert log == ["inner"]
        assert sim.now == 2


class TestSharedChannel:
    def test_single_job_duration(self):
        sim = Simulator()
        channel = SharedChannel(sim, bytes_per_cycle=4.0)
        done = []
        channel.submit(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(25.0)]

    def test_two_jobs_share_bandwidth(self):
        sim = Simulator()
        channel = SharedChannel(sim, bytes_per_cycle=4.0)
        done = {}
        channel.submit(100.0, lambda: done.setdefault("a", sim.now))
        channel.submit(100.0, lambda: done.setdefault("b", sim.now))
        sim.run()
        # Equal shares: both finish at 2 * 25 cycles.
        assert done["a"] == pytest.approx(50.0)
        assert done["b"] == pytest.approx(50.0)

    def test_weighted_share(self):
        sim = Simulator()
        channel = SharedChannel(sim, bytes_per_cycle=4.0)
        done = {}
        channel.submit(100.0, lambda: done.setdefault("heavy", sim.now), 3.0)
        channel.submit(100.0, lambda: done.setdefault("light", sim.now), 1.0)
        sim.run()
        assert done["heavy"] < done["light"]

    def test_unlimited_is_instant(self):
        sim = Simulator()
        channel = SharedChannel(sim, bytes_per_cycle=None)
        done = []
        channel.submit(1e12, lambda: done.append(sim.now))
        sim.run()
        assert done == [0.0]

    def test_late_arrival_slows_first_job(self):
        sim = Simulator()
        channel = SharedChannel(sim, bytes_per_cycle=4.0)
        done = {}
        channel.submit(100.0, lambda: done.setdefault("first", sim.now))
        sim.schedule(12.5, lambda: channel.submit(
            100.0, lambda: done.setdefault("second", sim.now)))
        sim.run()
        # First job: 50 bytes alone (12.5 cy), then shares; finishes at 37.5.
        assert done["first"] == pytest.approx(37.5)

    def test_bytes_accounting(self):
        sim = Simulator()
        channel = SharedChannel(sim, bytes_per_cycle=2.0)
        channel.submit(10.0, lambda: None)
        channel.submit(6.0, lambda: None)
        sim.run()
        assert channel.bytes_moved == pytest.approx(16.0)
        assert channel.busy_cycles == pytest.approx(8.0)

    def test_rejects_bad_arguments(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SharedChannel(sim, bytes_per_cycle=0)
        channel = SharedChannel(sim, bytes_per_cycle=1.0)
        with pytest.raises(ValueError):
            channel.submit(-1, lambda: None)
        with pytest.raises(ValueError):
            channel.submit(1, lambda: None, weight=0)


class TestSimulateSystem:
    def test_unlimited_matches_analytic_epoch(self, toy_design):
        design = toy_design
        result = simulate_system(design)
        assert result.epoch_cycles == design.epoch_cycles

    def test_all_clps_finish(self, toy_design):
        design = toy_design
        result = simulate_system(design, bytes_per_cycle=2.0)
        assert len(result.clp_finish_cycles) == 2
        assert all(f > 0 for f in result.clp_finish_cycles)

    def test_bandwidth_cap_slows_epoch(self, toy_design):
        design = toy_design
        free = simulate_system(design).epoch_cycles
        capped = simulate_system(design, bytes_per_cycle=0.5).epoch_cycles
        assert capped > free

    def test_sim_close_to_analytic_under_cap(self, toy_design):
        design = toy_design
        for bw in (0.5, 1.0, 4.0, 16.0):
            sim_epoch = simulate_system(design, bytes_per_cycle=bw).epoch_cycles
            analytic = design.epoch_cycles_under_bandwidth(bw)
            assert sim_epoch == pytest.approx(analytic, rel=0.2)

    def test_modelled_bandwidth_is_sufficient(self, toy_design):
        # Provisioning the modelled requirement keeps the simulated epoch
        # within ~10% of the unconstrained epoch.
        design = toy_design
        need = design.required_bandwidth_bytes_per_cycle()
        result = simulate_system(design, bytes_per_cycle=need * 1.1)
        assert result.epoch_cycles <= design.epoch_cycles * 1.1

    def test_channel_statistics(self, toy_design):
        design = toy_design
        result = simulate_system(design, bytes_per_cycle=4.0)
        assert 0 < result.channel_utilization() <= 1.0 + 1e-9
        words = sum(clp.total_transfer_words for clp in design.clps)
        assert result.bytes_moved == pytest.approx(words * 4)

    def test_equal_share_mode(self, toy_design):
        design = toy_design
        result = simulate_system(
            design, bytes_per_cycle=2.0, proportional_shares=False
        )
        assert result.epoch_cycles > 0
