"""Tests for OptimizeMemory: tile planning and BRAM allocation."""

import pytest

from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.layer import ConvLayer, input_extent
from repro.opt.compute import CLPCandidate, PartitionCandidate
from repro.opt.memory import (
    clp_pareto,
    optimize_memory,
    system_tradeoff_curve,
    tile_candidates,
)


def make_candidate(tn, tm, layers):
    cycles = sum(
        layer.r * layer.c * -(-layer.n // tn) * -(-layer.m // tm)
        * layer.k * layer.k
        for layer in layers
    )
    return CLPCandidate(
        tn=tn, tm=tm, layers=tuple(layers), cycles=cycles, dsp=tn * tm * 5
    )


@pytest.fixture
def conv2_layer():
    return ConvLayer("conv2a", n=48, m=128, r=27, c=27, k=5)


class TestTileCandidates:
    def test_contains_full_map_tile(self, conv2_layer):
        options = tile_candidates(conv2_layer, 7, 64)
        assert any(tr == 27 and tc == 27 for tr, tc, _ in options)

    def test_all_tiles_within_layer(self, conv2_layer):
        for tr, tc, _ in tile_candidates(conv2_layer, 7, 64):
            assert 1 <= tr <= 27
            assert 1 <= tc <= 27

    def test_no_dominated_options(self, conv2_layer):
        options = tile_candidates(conv2_layer, 7, 64)
        seen = []
        for tr, tc, transfer in options:
            in_w = input_extent(tr, 1, 5) * input_extent(tc, 1, 5)
            out_w = tr * tc
            for p_in, p_out, p_words in seen:
                assert not (
                    p_in <= in_w
                    and p_out <= out_w
                    and p_words <= transfer.total_words
                ), "dominated option retained"
            seen.append((in_w, out_w, transfer.total_words))

    def test_full_tile_minimizes_transfer(self, conv2_layer):
        options = tile_candidates(conv2_layer, 7, 64)
        best = min(options, key=lambda o: o[2].total_words)
        # The whole-map tile removes all weight re-fetching.
        assert (best[0], best[1]) == (27, 27)

    def test_memoized(self, conv2_layer):
        assert tile_candidates(conv2_layer, 7, 64) is tile_candidates(
            conv2_layer, 7, 64
        )


class TestClpPareto:
    def test_curve_is_pareto(self, conv2_layer):
        candidate = make_candidate(7, 64, [conv2_layer])
        curve = clp_pareto(candidate, FLOAT32, candidate.cycles * 1.02)
        for earlier, later in zip(curve, curve[1:]):
            assert later.bram > earlier.bram
            assert (
                later.bandwidth_bytes_per_cycle
                < earlier.bandwidth_bytes_per_cycle
            )

    def test_more_bram_never_needs_more_bandwidth(self, conv2_layer):
        candidate = make_candidate(7, 64, [conv2_layer])
        curve = clp_pareto(candidate, FLOAT32, candidate.cycles * 1.02)
        bandwidths = [p.bandwidth_bytes_per_cycle for p in curve]
        assert bandwidths == sorted(bandwidths, reverse=True)

    def test_tile_plans_match_layer_count(self, conv2_layer):
        other = ConvLayer("conv3a", n=256, m=192, r=13, c=13, k=3)
        candidate = make_candidate(7, 64, [conv2_layer, other])
        curve = clp_pareto(candidate, FLOAT32, candidate.cycles * 1.02)
        assert curve
        for point in curve:
            assert len(point.tile_plans) == 2

    def test_looser_cycle_budget_lowers_bandwidth(self, conv2_layer):
        candidate = make_candidate(7, 64, [conv2_layer])
        tight = clp_pareto(candidate, FLOAT32, candidate.cycles * 1.001)
        loose = clp_pareto(candidate, FLOAT32, candidate.cycles * 2.0)
        assert (
            loose[0].bandwidth_bytes_per_cycle
            <= tight[0].bandwidth_bytes_per_cycle
        )


class TestOptimizeMemory:
    def _partition(self, conv2_layer):
        other = ConvLayer("conv3a", n=256, m=192, r=13, c=13, k=3)
        return PartitionCandidate(
            clps=(
                make_candidate(7, 64, [conv2_layer]),
                make_candidate(4, 48, [other]),
            )
        )

    def test_solution_fits_budget(self, conv2_layer):
        partition = self._partition(conv2_layer)
        target = partition.epoch_cycles
        solution = optimize_memory(
            partition, FLOAT32, bram_budget=1648, cycle_target=target
        )
        assert solution is not None
        assert solution.total_bram <= 1648
        assert len(solution.plans) == 2

    def test_infeasible_bram_returns_none(self, conv2_layer):
        partition = self._partition(conv2_layer)
        solution = optimize_memory(
            partition, FLOAT32, bram_budget=1,
            cycle_target=partition.epoch_cycles,
        )
        assert solution is None

    def test_bandwidth_budget_respected(self, conv2_layer):
        partition = self._partition(conv2_layer)
        target = partition.epoch_cycles
        unconstrained = optimize_memory(
            partition, FLOAT32, bram_budget=1648, cycle_target=target
        )
        bw = unconstrained.total_bandwidth_bytes_per_cycle
        solution = optimize_memory(
            partition, FLOAT32, bram_budget=1648, cycle_target=target,
            bandwidth_budget_bytes_per_cycle=bw * 1.5,
        )
        assert solution is not None
        assert solution.total_bandwidth_bytes_per_cycle <= bw * 1.5

    def test_impossible_bandwidth_returns_none(self, conv2_layer):
        partition = self._partition(conv2_layer)
        solution = optimize_memory(
            partition, FLOAT32, bram_budget=1648,
            cycle_target=partition.epoch_cycles,
            bandwidth_budget_bytes_per_cycle=1e-9,
        )
        assert solution is None

    def test_larger_bram_budget_never_increases_bandwidth(self, conv2_layer):
        partition = self._partition(conv2_layer)
        target = partition.epoch_cycles
        small = optimize_memory(
            partition, FLOAT32, bram_budget=700, cycle_target=target
        )
        large = optimize_memory(
            partition, FLOAT32, bram_budget=2000, cycle_target=target
        )
        assert small is not None and large is not None
        assert (
            large.total_bandwidth_bytes_per_cycle
            <= small.total_bandwidth_bytes_per_cycle
        )

    def test_fixed16_uses_less_bram_than_float(self, conv2_layer):
        def solve(dtype):
            cand = make_candidate(8, 64, [conv2_layer])
            partition = PartitionCandidate(clps=(cand,))
            return optimize_memory(
                partition, dtype, bram_budget=4000,
                cycle_target=partition.epoch_cycles,
            )

        fixed = solve(FIXED16)
        flt = solve(FLOAT32)
        assert fixed.total_bram < flt.total_bram


class TestSystemTradeoffCurve:
    def test_curve_shape(self, conv2_layer):
        partition = PartitionCandidate(
            clps=(make_candidate(7, 64, [conv2_layer]),)
        )
        curve = system_tradeoff_curve(
            partition, FLOAT32, partition.epoch_cycles
        )
        assert len(curve) >= 2
        brams = [b for b, _ in curve]
        bws = [w for _, w in curve]
        assert brams == sorted(brams)
        assert bws == sorted(bws, reverse=True)
