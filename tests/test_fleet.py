"""Tests for the multi-FPGA cluster simulator (repro.fleet).

Four layers of assurance:

* unit tests for device specs, balancer policies, and topology
  validation;
* property-based (hypothesis) tests — request conservation across
  replicas under every policy, the round-robin fairness bound, and
  determinism under a fixed seed;
* a fixed-seed study pinning power-of-two-choices to never lose to
  random routing on p99 (the reason the policy exists);
* differential tests pinning a 1-replica fleet *exactly* to the
  single-device ``repro.serve`` engine (same seed, identical per-tenant
  metrics), plus capacity-planner monotonicity in rate and clock.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.clp import CLPConfig
from repro.core.datatypes import FLOAT32
from repro.core.design import MultiCLPDesign
from repro.core.layer import ConvLayer
from repro.core.network import Network
from repro.core.serialize import (
    fleet_result_from_dict,
    fleet_result_to_dict,
)
from repro.fleet import (
    AutoscalerPolicy,
    BALANCER_NAMES,
    ClusterSimulator,
    DeviceSpec,
    autoscale,
    make_balancer,
    plan_capacity,
    simulate_fleet,
)
from repro.serve import (
    ConstantRate,
    PoissonArrivals,
    SLOSpec,
    TenantSpec,
    evaluate_slo,
    make_arrival_process,
    simulate_traffic,
)

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="session")
def toy2_design():
    """A second toy network/design, for heterogeneous-fleet tests."""
    network = Network(
        "toy2",
        [
            ConvLayer("x", n=8, m=16, r=13, c=13, k=3),
            ConvLayer("y", n=16, m=16, r=13, c=13, k=3),
        ],
    )
    layer_x, layer_y = network.layers
    return MultiCLPDesign(
        network,
        [
            CLPConfig(4, 8, [layer_x], FLOAT32, [(13, 13)]),
            CLPConfig(4, 16, [layer_y], FLOAT32, [(13, 13)]),
        ],
        FLOAT32,
    )


def _tenants(design, rate_mult, process="poisson"):
    epoch = design.epoch_cycles
    proc = make_arrival_process(process, rate_mult / epoch,
                                period_cycles=8.0 * epoch)
    return [TenantSpec(design.network.name, proc)]


def _fleet(design, replicas, rate_mult, *, epochs=60, seed=0,
           balancer="round-robin", process="poisson", queue_depth=10**6,
           policy="drop-tail", drain=False):
    return simulate_fleet(
        DeviceSpec(design).replicated(replicas),
        _tenants(design, rate_mult, process),
        duration_cycles=epochs * design.epoch_cycles,
        balancer=balancer,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drain=drain,
    )


# ----------------------------------------------------------------- devices
class TestDeviceSpec:
    def test_networks_and_epoch(self, toy_design):
        device = DeviceSpec(toy_design, part="485t")
        assert device.networks == ("toy",)
        assert device.resolve_epoch() == toy_design.epoch_cycles

    def test_replicated_keeps_template(self, toy_design):
        device = DeviceSpec(toy_design, part="485t", calibrate="model")
        four = device.replicated(4)
        assert four.count == 4 and four.part == "485t"
        assert device.count == 1  # original untouched

    def test_joint_design_serves_all_members(self, joint_design_690t):
        device = DeviceSpec(joint_design_690t)
        assert set(device.networks) == {"AlexNet", "SqueezeNet"}

    def test_display_label(self, toy_design):
        assert DeviceSpec(toy_design, part="485t").display_label == "toy@485t"
        assert DeviceSpec(toy_design, label="edge").display_label == "edge"

    def test_validation(self, toy_design):
        with pytest.raises(ValueError):
            DeviceSpec(toy_design, count=0)
        with pytest.raises(ValueError):
            DeviceSpec(toy_design, calibrate="wrong")
        with pytest.raises(ValueError):
            DeviceSpec(toy_design, bytes_per_cycle=-1.0)


# --------------------------------------------------------------- balancers
class TestBalancers:
    def test_registry_round_trips_names(self):
        for name in BALANCER_NAMES:
            assert make_balancer(name).name == name
        with pytest.raises(ValueError):
            make_balancer("hash-ring")

    def test_round_robin_rotates_per_tenant(self):
        policy = make_balancer("round-robin")
        policy.bind([], None)
        picks = [policy.route("a", (0, 1, 2), 0.0) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        # An independent tenant starts its own rotation.
        assert policy.route("b", (0, 1, 2), 0.0) == 0

    def test_least_outstanding_prefers_light_replica(self):
        class Fake:
            def __init__(self, outstanding):
                self.outstanding = outstanding

        policy = make_balancer("least-outstanding")
        policy.bind([Fake(5), Fake(1), Fake(5)], None)
        assert policy.route("a", (0, 1, 2), 0.0) == 1
        # Ties break to the lowest index, deterministically.
        policy.bind([Fake(2), Fake(2)], None)
        assert policy.route("a", (0, 1), 0.0) == 0

    def test_tenant_affinity_is_stable(self):
        policy = make_balancer("tenant-affinity")
        policy.bind([], None)
        eligible = (0, 1, 2, 3)
        first = policy.route("AlexNet", eligible, 0.0)
        assert all(
            policy.route("AlexNet", eligible, t) == first for t in range(5)
        )

    def test_power_of_two_single_choice_needs_no_rng(self):
        policy = make_balancer("power-of-two")
        policy.bind([], None)  # no RNG bound: must not be consulted
        assert policy.route("a", (7,), 0.0) == 7

    def test_custom_configured_balancer_instance_survives(self, toy_design):
        # A user policy with constructor configuration must be reused
        # (reset between runs), not blindly re-instantiated.
        from repro.fleet import Balancer

        class Pinned(Balancer):
            name = "pinned"

            def __init__(self, target):
                self.target = target

            def route(self, tenant, eligible, now):
                return self.target

        fleet = simulate_fleet(
            DeviceSpec(toy_design).replicated(3),
            _tenants(toy_design, 1.0),
            duration_cycles=15 * toy_design.epoch_cycles,
            balancer=Pinned(2),
            drain=True,
        )
        assert fleet.balancer == "pinned"
        routed = [replica.arrivals for replica in fleet.replicas]
        assert routed[2] > 0 and routed[0] == routed[1] == 0

    def test_stateful_instance_resets_between_runs(self, toy_design):
        # One round-robin object reused for two runs must behave like a
        # fresh policy each time (counters cleared by reset()).
        policy = make_balancer("round-robin")
        runs = [
            simulate_fleet(
                DeviceSpec(toy_design).replicated(3),
                _tenants(toy_design, 2.0),
                duration_cycles=15 * toy_design.epoch_cycles,
                balancer=policy,
                seed=5,
                drain=True,
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


# ------------------------------------------------------------- differential
class TestSingleReplicaDifferential:
    """A 1-replica fleet IS the serve engine: exact, bit-for-bit."""

    @pytest.mark.parametrize("process,drain,policy,queue_depth", [
        ("poisson", False, "drop-tail", 64),
        ("poisson", True, "drop-tail", 3),
        ("constant", True, "drop-head", 2),
        ("bursty", False, "drop-tail", 8),
    ])
    def test_exact_match(self, toy_design, process, drain, policy, queue_depth):
        epoch = toy_design.epoch_cycles
        tenants = _tenants(toy_design, 1.5, process)
        kwargs = dict(duration_cycles=40 * epoch, seed=7,
                      queue_depth=queue_depth, policy=policy, drain=drain)
        solo = simulate_traffic(toy_design, tenants, **kwargs)
        fleet = simulate_fleet(DeviceSpec(toy_design), tenants,
                               balancer="power-of-two", **kwargs)
        assert fleet.tenants == solo.tenants
        assert fleet.replicas[0].tenants == solo.tenants
        assert fleet.replicas[0].clp_busy_fraction == solo.clp_busy_fraction
        assert fleet.elapsed_cycles == solo.elapsed_cycles
        assert fleet.horizon_cycles == solo.horizon_cycles

    def test_exact_match_joint_multi_tenant(self, joint_design_690t):
        epoch = joint_design_690t.epoch_cycles
        tenants = [
            TenantSpec("AlexNet", PoissonArrivals(0.8 / epoch)),
            TenantSpec("SqueezeNet", ConstantRate(1.2 / epoch)),
        ]
        kwargs = dict(duration_cycles=30 * epoch, seed=11, queue_depth=16,
                      drain=True)
        solo = simulate_traffic(joint_design_690t, tenants, **kwargs)
        fleet = simulate_fleet(
            DeviceSpec(joint_design_690t), tenants, **kwargs
        )
        assert fleet.tenants == solo.tenants
        assert fleet.capacity_rps == pytest.approx(2 * solo.capacity_rps)

    def test_every_balancer_degenerates_identically(self, toy_design):
        tenants = _tenants(toy_design, 2.0)
        results = [
            simulate_fleet(
                DeviceSpec(toy_design), tenants,
                duration_cycles=30 * toy_design.epoch_cycles,
                balancer=name, seed=3, drain=True,
            ).tenants
            for name in BALANCER_NAMES
        ]
        assert all(result == results[0] for result in results)


# ----------------------------------------------------------- hypothesis
class TestFleetProperties:
    @FAST
    @given(
        replicas=st.integers(min_value=1, max_value=4),
        rate_mult=st.floats(min_value=0.2, max_value=6.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        queue_depth=st.integers(min_value=1, max_value=64),
        balancer=st.sampled_from(BALANCER_NAMES),
        drain=st.booleans(),
    )
    def test_conservation_across_replicas(
        self, toy_design, replicas, rate_mult, seed, queue_depth, balancer,
        drain,
    ):
        result = _fleet(
            toy_design, replicas, rate_mult, seed=seed, balancer=balancer,
            queue_depth=queue_depth, drain=drain, epochs=25,
        )
        tenant = result.tenants[0]
        # Every arrival was routed to exactly one replica...
        assert tenant.arrivals == sum(r.arrivals for r in result.replicas)
        # ...and is accounted for exactly once, fleet-wide.
        assert tenant.arrivals == (
            tenant.completions + tenant.drops + tenant.in_flight
        )
        if drain:
            assert tenant.in_flight == 0
        assert tenant.completions == sum(
            r.completions for r in result.replicas
        )
        assert tenant.drops == sum(r.drops for r in result.replicas)

    @FAST
    @given(
        replicas=st.integers(min_value=2, max_value=5),
        rate_mult=st.floats(min_value=0.5, max_value=8.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_round_robin_fairness_bound(
        self, toy_design, replicas, rate_mult, seed
    ):
        result = _fleet(
            toy_design, replicas, rate_mult, seed=seed,
            balancer="round-robin", epochs=25,
        )
        routed = [replica.arrivals for replica in result.replicas]
        # Strict rotation: per-replica routed counts differ by at most 1.
        assert max(routed) - min(routed) <= 1

    @FAST
    @given(
        replicas=st.integers(min_value=1, max_value=3),
        rate_mult=st.floats(min_value=0.5, max_value=4.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        balancer=st.sampled_from(BALANCER_NAMES),
    )
    def test_determinism_under_fixed_seed(
        self, toy_design, replicas, rate_mult, seed, balancer
    ):
        first = _fleet(toy_design, replicas, rate_mult, seed=seed,
                       balancer=balancer, epochs=20)
        second = _fleet(toy_design, replicas, rate_mult, seed=seed,
                        balancer=balancer, epochs=20)
        assert first == second

    def test_power_of_two_never_worse_than_random_on_p99(self, toy_design):
        """The policy's whole selling point, pinned across fixed seeds."""
        for seed in range(8):
            power = _fleet(toy_design, 4, 3.0, seed=seed,
                           balancer="power-of-two", drain=True, epochs=80)
            random_ = _fleet(toy_design, 4, 3.0, seed=seed,
                             balancer="random", drain=True, epochs=80)
            assert (
                power.tenants[0].latency.p99
                <= random_.tenants[0].latency.p99
            )


# ------------------------------------------------------------ heterogeneous
class TestHeterogeneousFleet:
    def test_dedicated_boards_per_tenant(self, toy_design, toy2_design):
        epoch = toy_design.epoch_cycles
        tenants = [
            TenantSpec("toy", ConstantRate(0.5 / epoch)),
            TenantSpec("toy2", ConstantRate(0.5 / epoch)),
        ]
        result = simulate_fleet(
            [DeviceSpec(toy_design), DeviceSpec(toy2_design)],
            tenants,
            duration_cycles=20 * epoch,
            drain=True,
        )
        assert result.num_replicas == 2
        # Each tenant's traffic lands only on the board that serves it.
        toy_replica, toy2_replica = result.replicas
        assert [t.name for t in toy_replica.tenants] == ["toy"]
        assert [t.name for t in toy2_replica.tenants] == ["toy2"]
        assert result.tenant("toy").arrivals == toy_replica.arrivals
        assert result.tenant("toy2").arrivals == toy2_replica.arrivals
        # Replicas keep their own epoch lengths.
        assert toy_replica.epoch_cycles == toy_design.epoch_cycles
        assert toy2_replica.epoch_cycles == toy2_design.epoch_cycles

    def test_unserved_tenant_rejected(self, toy_design):
        with pytest.raises(ValueError, match="not served"):
            ClusterSimulator(
                DeviceSpec(toy_design),
                [
                    TenantSpec("toy", ConstantRate(1e-4)),
                    TenantSpec("ghost", ConstantRate(1e-4)),
                ],
            )

    def test_streamless_replica_network_rejected(self, toy_design, toy2_design):
        with pytest.raises(ValueError, match="no tenant stream"):
            ClusterSimulator(
                [DeviceSpec(toy_design), DeviceSpec(toy2_design)],
                [TenantSpec("toy", ConstantRate(1e-4))],
            )

    def test_bad_arguments(self, toy_design):
        tenants = [TenantSpec("toy", ConstantRate(1e-4))]
        with pytest.raises(ValueError):
            ClusterSimulator([], tenants)
        with pytest.raises(ValueError):
            ClusterSimulator(DeviceSpec(toy_design), [])
        with pytest.raises(ValueError):
            ClusterSimulator(DeviceSpec(toy_design), tenants, queue_depth=0)
        with pytest.raises(ValueError):
            ClusterSimulator(DeviceSpec(toy_design), tenants, policy="fifo")
        with pytest.raises(ValueError):
            ClusterSimulator(DeviceSpec(toy_design), tenants * 2)
        with pytest.raises(ValueError):
            ClusterSimulator(DeviceSpec(toy_design), tenants).run(0.0)


# ---------------------------------------------------------------- planner
class TestCapacityPlanner:
    #: toy board capacity at 100MHz, in requests/second.
    @pytest.fixture(scope="class")
    def board_capacity(self, toy_design):
        return 1e8 / toy_design.epoch_cycles

    def test_planned_fleet_meets_slo(self, toy_design, board_capacity):
        slo = SLOSpec(p99_ms=2.0, max_drop_rate=0.0)
        plan = plan_capacity(
            DeviceSpec(toy_design), 3.0 * board_capacity, slo,
            duration_ms=10.0, seed=1,
        )
        assert plan.meets and plan.replicas is not None
        # The acceptance criterion: re-scoring the planned fleet passes.
        assert evaluate_slo(plan.result, slo).meets
        assert plan.report.meets
        # And the plan is minimal: one board fewer fails (if probed).
        smaller = [p for p in plan.probes if p.replicas == plan.replicas - 1]
        assert all(not probe.meets for probe in smaller)

    def test_monotone_in_arrival_rate(self, toy_design, board_capacity):
        slo = SLOSpec(p99_ms=2.0, max_drop_rate=0.0)
        planned = [
            plan_capacity(
                DeviceSpec(toy_design), mult * board_capacity, slo,
                duration_ms=10.0, seed=1,
            ).replicas
            for mult in (0.5, 1.5, 3.0, 6.0)
        ]
        assert all(count is not None for count in planned)
        assert planned == sorted(planned)
        assert planned[0] == 1 and planned[-1] > planned[0]

    def test_monotone_in_board_throughput(self, toy_design, board_capacity):
        # A faster clock serves more per board: never needs MORE boards.
        slo = SLOSpec(p99_ms=2.0, max_drop_rate=0.0)
        rate = 3.0 * board_capacity
        slow = plan_capacity(
            DeviceSpec(toy_design), rate, slo,
            duration_ms=10.0, seed=1, frequency_mhz=100.0,
        )
        fast = plan_capacity(
            DeviceSpec(toy_design), rate, slo,
            duration_ms=10.0, seed=1, frequency_mhz=200.0,
        )
        assert slow.meets and fast.meets
        assert fast.replicas <= slow.replicas

    def test_unattainable_slo_reported(self, toy_design, board_capacity):
        # The pipeline floor makes a microsecond p99 impossible at any
        # count; the planner must say so rather than loop or lie.
        plan = plan_capacity(
            DeviceSpec(toy_design), board_capacity,
            SLOSpec(p99_ms=1e-3), max_replicas=4, duration_ms=5.0,
        )
        assert not plan.meets and plan.replicas is None
        assert plan.result is None and plan.report is None
        assert "not met" in plan.format()

    def test_rejects_bad_arguments(self, toy_design):
        with pytest.raises(ValueError):
            plan_capacity(DeviceSpec(toy_design), -1.0, SLOSpec())
        with pytest.raises(ValueError):
            plan_capacity(
                DeviceSpec(toy_design), 10.0, SLOSpec(), max_replicas=0
            )

    def test_rejects_tenant_affinity(self, toy_design):
        # Pinning breaks the monotone-in-replicas premise the bisection
        # rests on (a pinned tenant gains nothing from added boards, and
        # digest % n moves non-monotonically with n): refuse loudly.
        with pytest.raises(ValueError, match="tenant-affinity"):
            plan_capacity(
                DeviceSpec(toy_design), 10.0, SLOSpec(),
                balancer="tenant-affinity",
            )
        with pytest.raises(ValueError, match="tenant-affinity"):
            plan_capacity(
                DeviceSpec(toy_design), 10.0, SLOSpec(),
                balancer=make_balancer("tenant-affinity"),
            )


class TestAutoscaler:
    def test_spike_scales_up_then_down(self, toy_design):
        capacity = 1e8 / toy_design.epoch_cycles
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=8,
            p99_high_ms=1.5, queue_high=4.0,
            p99_low_ms=0.8, queue_low=0.5,
        )
        schedule = [0.5 * capacity] + [3.0 * capacity] * 4 + [0.3 * capacity] * 4
        trace = autoscale(
            DeviceSpec(toy_design), schedule, policy,
            window_ms=5.0, seed=0,
        )
        assert trace.peak_replicas > 1  # the spike forced a scale-up
        assert trace.final_replicas < trace.peak_replicas  # and it recovered
        assert all(
            policy.min_replicas <= w.replicas <= policy.max_replicas
            for w in trace.windows
        )
        assert "autoscaler trace" in trace.format()

    def test_bounds_are_respected_under_permanent_overload(self, toy_design):
        capacity = 1e8 / toy_design.epoch_cycles
        policy = AutoscalerPolicy(
            min_replicas=1, max_replicas=3, p99_high_ms=0.5
        )
        trace = autoscale(
            DeviceSpec(toy_design), [20.0 * capacity] * 6, policy,
            window_ms=5.0,
        )
        assert trace.peak_replicas == 3
        assert trace.windows[-1].action == 0  # pinned at the cap, not beyond

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalerPolicy()  # no scale-up clause at all
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_replicas=0, p99_high_ms=1.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(min_replicas=4, max_replicas=2, p99_high_ms=1.0)
        with pytest.raises(ValueError):
            AutoscalerPolicy(p99_high_ms=1.0, step=0)

    def test_schedule_validation(self, toy_design):
        policy = AutoscalerPolicy(p99_high_ms=1.0)
        with pytest.raises(ValueError):
            autoscale(DeviceSpec(toy_design), [], policy)
        with pytest.raises(ValueError):
            autoscale(DeviceSpec(toy_design), [-5.0], policy)
        with pytest.raises(ValueError):
            autoscale(
                DeviceSpec(toy_design), [10.0], policy, initial_replicas=99
            )


# ------------------------------------------------------------ serialization
class TestFleetSerialization:
    @pytest.fixture()
    def result(self, toy_design):
        return _fleet(toy_design, 3, 2.0, balancer="least-outstanding",
                      queue_depth=8, drain=True, epochs=25)

    def test_round_trip(self, result):
        assert fleet_result_from_dict(fleet_result_to_dict(result)) == result

    def test_json_round_trip_through_text(self, result):
        text = json.dumps(fleet_result_to_dict(result))
        assert fleet_result_from_dict(json.loads(text)) == result

    def test_rejects_unknown_schema(self, result):
        record = fleet_result_to_dict(result)
        record["schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            fleet_result_from_dict(record)

    def test_dump_load_file(self, result, tmp_path):
        from repro.core.serialize import dump_fleet_result, load_fleet_result

        path = tmp_path / "fleet.json"
        dump_fleet_result(result, str(path))
        assert load_fleet_result(str(path)) == result

    def test_format_mentions_fleet_shape(self, result):
        text = result.format()
        assert "fleet of 3 replicas" in text
        assert "least-outstanding" in text
        assert "imbalance" in text

    def test_tenant_lookup(self, result):
        assert result.tenant("toy").name == "toy"
        assert result.replicas[0].tenant("toy").name == "toy"
        with pytest.raises(KeyError):
            result.tenant("ghost")
        with pytest.raises(KeyError):
            result.replicas[0].tenant("ghost")

    def test_capacity_and_totals(self, result, toy_design):
        per_board = 1e8 / toy_design.epoch_cycles
        assert result.capacity_rps == pytest.approx(3 * per_board)
        assert result.tenant_capacity_rps("toy") == result.capacity_rps
        assert result.total_arrivals == result.tenants[0].arrivals
        assert result.total_completions + result.total_drops == (
            result.total_arrivals
        )


# --------------------------------------------------------- cost-to-serve
class TestCostToServe:
    @pytest.fixture(scope="class")
    def sweep_results(self):
        from repro.dse import DesignPoint, run_sweep

        points = [
            DesignPoint(network="alexnet", dsp=800, bram18k=700, single=True),
            DesignPoint(network="alexnet", dsp=2240, bram18k=1648),
        ]
        return run_sweep(points).results

    def test_cheap_sufficient_design_wins(self, sweep_results):
        from repro.dse import cost_to_serve_table, rank_by_cost_to_serve

        # At a light rate both designs meet the SLO with one board, so
        # the provisioning objective flips rank_by_traffic's verdict:
        # the small budget is the cheaper service.
        slo = SLOSpec(p99_ms=2000.0, max_drop_rate=0.05)
        rankings = rank_by_cost_to_serve(
            sweep_results, rate_rps=10.0, slo=slo,
            max_replicas=4, duration_ms=100.0,
        )
        assert len(rankings) == 2
        assert all(r.plan.meets for r in rankings)
        assert rankings[0].result.point.dsp == 800
        assert rankings[0].total_cost < rankings[1].total_cost
        table = cost_to_serve_table(rankings, rate_rps=10.0, slo=slo)
        assert "cost-to-serve" in table and "boards" in table

    def test_synthetic_board_cost_is_dsp_proportional(self, sweep_results):
        from repro.dse.analysis import _board_cost

        costs = {r.point.dsp: _board_cost(r.point) for r in sweep_results}
        assert costs[2240] == pytest.approx(1.0)
        assert costs[800] == pytest.approx(800 / 2240)

    def test_catalog_part_cost_used(self):
        from repro.dse import DesignPoint
        from repro.dse.analysis import _board_cost

        point = DesignPoint.build(network="alexnet", part="690t")
        assert _board_cost(point) == pytest.approx(1.45)


# ------------------------------------------------------------------- CLI
class TestFleetCLI:
    def test_simulate_prints_fleet_table(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "simulate", "--network", "alexnet", "--replicas", "2",
            "--rate", "100", "--duration-ms", "50", "--seed", "1",
            "--balancer", "power-of-two",
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet of 2 replicas" in out
        assert "power-of-two" in out

    def test_simulate_save_round_trips(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.serialize import load_fleet_result

        path = tmp_path / "fleet.json"
        assert main([
            "fleet", "simulate", "--network", "alexnet", "--replicas", "2",
            "--rate", "60", "--duration-ms", "50", "--save", str(path),
        ]) == 0
        result = load_fleet_result(str(path))
        assert result.num_replicas == 2
        assert "written to" in capsys.readouterr().out

    def test_plan_reports_minimum_fleet(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "plan", "--network", "alexnet", "--rate", "100",
            "--p99-ms", "1000", "--max-replicas", "4",
            "--duration-ms", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "capacity plan" in out
        assert "minimum fleet" in out

    def test_autoscale_prints_trace(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "autoscale", "--network", "alexnet",
            "--rates", "30", "200", "30", "--window-ms", "40",
            "--queue-high", "2", "--queue-low", "0.3",
            "--max-replicas", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "autoscaler trace" in out

    def test_replicas_validated(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="replicas"):
            main([
                "fleet", "simulate", "--network", "alexnet",
                "--replicas", "0",
            ])

    def test_dse_cost_cli(self, tmp_path, capsys):
        from repro.cli import main

        store = tmp_path / "sweep.jsonl"
        assert main([
            "dse", "sweep", "--networks", "alexnet", "--budgets", "800:700",
            "--modes", "single", "--store", str(store), "--quiet",
        ]) == 0
        capsys.readouterr()
        assert main([
            "dse", "cost", "--store", str(store), "--rate", "10",
            "--p99-ms", "2000", "--max-replicas", "2",
            "--duration-ms", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "cost-to-serve" in out
