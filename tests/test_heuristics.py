"""Tests for the layer-ordering heuristics."""

import pytest

from repro.core.layer import ConvLayer
from repro.networks import alexnet, squeezenet
from repro.opt.heuristics import (
    ORDERINGS,
    get_ordering,
    order_by_compute_to_data,
    order_by_nm_distance,
    order_natural,
)


def small_layers():
    return [
        ConvLayer("a", n=3, m=48, r=55, c=55, k=11, s=4),
        ConvLayer("b", n=256, m=192, r=13, c=13, k=3),
        ConvLayer("c", n=4, m=50, r=30, c=30, k=3),
    ]


class TestNaturalOrder:
    def test_identity(self):
        layers = small_layers()
        assert order_natural(layers) == layers

    def test_copy_not_alias(self):
        layers = small_layers()
        result = order_natural(layers)
        assert result is not layers


class TestComputeToDataOrder:
    def test_descending_ratio(self):
        ordered = order_by_compute_to_data(small_layers())
        ratios = [layer.compute_to_data_ratio for layer in ordered]
        assert ratios == sorted(ratios, reverse=True)

    def test_is_permutation(self):
        layers = small_layers()
        assert sorted(l.name for l in order_by_compute_to_data(layers)) == [
            "a", "b", "c"
        ]


class TestNMDistanceOrder:
    def test_chain_groups_similar_layers(self):
        # Layers a (3,48) and c (4,50) are near-identical in (N, M); they
        # must end up adjacent, with the distant b (256,192) at one end.
        ordered = order_by_nm_distance(small_layers())
        names = [layer.name for layer in ordered]
        assert abs(names.index("a") - names.index("c")) == 1

    def test_starts_from_smallest_corner(self):
        ordered = order_by_nm_distance(small_layers())
        assert ordered[0].name == "a"  # smallest N+M

    def test_is_permutation_on_real_network(self):
        net = squeezenet()
        ordered = order_by_nm_distance(list(net))
        assert sorted(l.name for l in ordered) == sorted(
            l.name for l in net
        )

    def test_alexnet_pairs_stay_adjacent(self):
        # Both halves of each AlexNet stage have identical (N, M), so the
        # chain must visit them back to back.
        ordered = order_by_nm_distance(list(alexnet()))
        names = [layer.name for layer in ordered]
        for stage in range(1, 6):
            a = names.index(f"conv{stage}a")
            b = names.index(f"conv{stage}b")
            assert abs(a - b) == 1

    def test_empty(self):
        assert order_by_nm_distance([]) == []

    def test_deterministic(self):
        layers = small_layers()
        assert order_by_nm_distance(layers) == order_by_nm_distance(layers)


class TestRegistry:
    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_lookup(self, name):
        assert get_ordering(name) is ORDERINGS[name]

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_ordering("alphabetical")
