"""Cross-checks between the paper's published numbers and our models.

These tests treat `repro.analysis.paper_data` as data and our cost
models as the oracle: every configuration the paper publishes must be
*internally consistent* under the models (cycle counts recompute from
(Tn, Tm) and the layer dimensions; DSP sums fit the stated budgets).
Passing means the transcription is faithful AND the models describe the
same machine the authors measured.
"""

import pytest

from repro.analysis import paper_data
from repro.core.cost_model import dsp_count, layer_cycles
from repro.core.datatypes import FIXED16, FLOAT32
from repro.fpga.parts import budget_for
from repro.networks import alexnet, squeezenet


@pytest.fixture(scope="module")
def anet():
    return alexnet()


class TestTable2Consistency:
    @pytest.mark.parametrize(
        "scenario", ["485t_single", "690t_single", "485t_multi", "690t_multi"]
    )
    def test_cycles_recompute_from_model(self, anet, scenario):
        for config in paper_data.TABLE2_CONFIGS[scenario]:
            cycles = sum(
                layer_cycles(anet.layer_by_name(name), config.tn, config.tm)
                for name in config.layers
            )
            assert round(cycles / 1000) == config.cycles_k, (
                scenario, config.layers
            )

    @pytest.mark.parametrize(
        "scenario,part", [("485t_multi", "485t"), ("690t_multi", "690t")]
    )
    def test_dsp_fits_budget(self, scenario, part):
        budget = budget_for(part)
        total = sum(
            dsp_count(c.tn, c.tm, FLOAT32)
            for c in paper_data.TABLE2_CONFIGS[scenario]
        )
        assert total <= budget.dsp

    def test_multi_epoch_is_max_of_clps(self):
        for scenario in ("485t_multi", "690t_multi"):
            configs = paper_data.TABLE2_CONFIGS[scenario]
            epoch = max(c.cycles_k for c in configs)
            assert epoch == paper_data.TABLE2_OVERALL_CYCLES_K[scenario]

    def test_single_overall_is_sum(self):
        for scenario in ("485t_single", "690t_single"):
            configs = paper_data.TABLE2_CONFIGS[scenario]
            # Stage rows share one CLP; the overall count is their sum.
            assert (
                abs(
                    sum(c.cycles_k for c in configs)
                    - paper_data.TABLE2_OVERALL_CYCLES_K[scenario]
                )
                <= 2  # rounding of the per-stage thousands
            )

    def test_multi_covers_alexnet_exactly_once(self, anet):
        for scenario in ("485t_multi", "690t_multi"):
            covered = [
                name
                for c in paper_data.TABLE2_CONFIGS[scenario]
                for name in c.layers
            ]
            assert sorted(covered) == sorted(l.name for l in anet)


class TestTable4Consistency:
    @pytest.mark.parametrize(
        "scenario,part",
        [("485t_single", "485t"), ("690t_single", "690t"),
         ("485t_multi", "485t"), ("690t_multi", "690t")],
    )
    def test_dsp_fits_budget(self, scenario, part):
        budget = budget_for(part)
        total = sum(
            dsp_count(c.tn, c.tm, FIXED16)
            for c in paper_data.TABLE4_CONFIGS[scenario]
        )
        assert total <= budget.dsp

    def test_single_clp_cycles_match_model(self):
        # The paper does not list per-layer assignments for SqueezeNet,
        # but Single-CLP cycles are fully determined by (Tn, Tm).
        net = squeezenet()
        for scenario in ("485t_single", "690t_single"):
            (config,) = paper_data.TABLE4_CONFIGS[scenario]
            cycles = sum(
                layer_cycles(layer, config.tn, config.tm) for layer in net
            )
            assert round(cycles / 1000) == pytest.approx(
                config.cycles_k, abs=2
            )


class TestTable3And5Consistency:
    def test_table3_dsp_is_five_per_unit(self):
        for (part, kind), row in paper_data.TABLE3_RESOURCES.items():
            assert row.dsp % 5 == 0  # float32 MACs cost 5 slices

    def test_gops_is_throughput_times_work(self):
        flops = alexnet().total_flops
        for row in paper_data.TABLE3_RESOURCES.values():
            assert row.gops == pytest.approx(
                row.throughput * flops / 1e9, rel=0.02
            )

    def test_table5_gops_consistent(self):
        ops = squeezenet().total_flops
        for row in paper_data.TABLE5_RESOURCES.values():
            assert row.gops == pytest.approx(
                row.throughput * ops / 1e9, rel=0.05
            )

    def test_multi_always_beats_single(self):
        for table in (paper_data.TABLE3_RESOURCES, paper_data.TABLE5_RESOURCES):
            for part in ("485t", "690t"):
                assert (
                    table[(part, "multi")].throughput
                    > table[(part, "single")].throughput
                )


class TestTables6to9Consistency:
    def test_impl_never_below_model(self):
        for table in (
            paper_data.TABLE6_MODEL_VS_IMPL,
            paper_data.TABLE7_MODEL_VS_IMPL,
        ):
            for rows in table.values():
                for row in rows:
                    assert row.dsp_impl >= row.dsp_model
                    assert row.bram_impl >= row.bram_model

    def test_table6_single_matches_table3(self):
        row = paper_data.TABLE6_MODEL_VS_IMPL["485t_single"][0]
        table3 = paper_data.TABLE3_RESOURCES[("485t", "single")]
        assert row.dsp_model == table3.dsp
        assert row.bram_model == table3.bram

    def test_table8_matches_table6_totals(self):
        t8 = paper_data.TABLE8_RESOURCES["485t_single"]
        t6 = paper_data.TABLE6_MODEL_VS_IMPL["485t_single"][0]
        assert t8.dsp == t6.dsp_impl
        assert t8.bram == t6.bram_impl

    def test_table9_matches_table7_totals(self):
        t9 = paper_data.TABLE9_RESOURCES["690t_multi"]
        rows = paper_data.TABLE7_MODEL_VS_IMPL["690t_multi"]
        assert t9.dsp == pytest.approx(sum(r.dsp_impl for r in rows), abs=15)
        assert t9.bram == sum(r.bram_impl for r in rows)


class TestSection32Consistency:
    def test_quoted_utilizations_recompute(self):
        from repro.core.utilization import layer_utilization, clp_utilization

        net = squeezenet()
        tn, tm = paper_data.SECTION32_UTILIZATION["grid"]
        assert layer_utilization(net[0], tn, tm) == pytest.approx(
            paper_data.SECTION32_UTILIZATION["layer1"], abs=0.001
        )
        assert layer_utilization(net[1], tn, tm) == pytest.approx(
            paper_data.SECTION32_UTILIZATION["layer2"], abs=0.001
        )
        assert clp_utilization(list(net), tn, tm) == pytest.approx(
            paper_data.SECTION32_UTILIZATION["overall"], abs=0.001
        )
