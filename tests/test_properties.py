"""Property-based tests (hypothesis) on the core models and invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.bandwidth import bandwidth_bound_cycles, layer_transfer
from repro.core.cost_model import (
    bram_count,
    buffer_spec,
    dsp_count,
    layer_cycles,
)
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.layer import ConvLayer, input_extent
from repro.core.utilization import layer_utilization
from repro.sim.functional import random_layer_data, reference_conv, tiled_conv


# ------------------------------------------------------------- strategies
@st.composite
def layers(draw, max_dim=24):
    return ConvLayer(
        name="prop",
        n=draw(st.integers(1, max_dim)),
        m=draw(st.integers(1, max_dim)),
        r=draw(st.integers(1, max_dim)),
        c=draw(st.integers(1, max_dim)),
        k=draw(st.integers(1, 5)),
        s=draw(st.integers(1, 3)),
    )


@st.composite
def layer_and_grid(draw):
    layer = draw(layers())
    tn = draw(st.integers(1, 32))
    tm = draw(st.integers(1, 32))
    return layer, tn, tm


@st.composite
def layer_grid_tiles(draw):
    layer = draw(layers())
    tn = draw(st.integers(1, 16))
    tm = draw(st.integers(1, 16))
    tr = draw(st.integers(1, layer.r))
    tc = draw(st.integers(1, layer.c))
    return layer, tn, tm, tr, tc


# ---------------------------------------------------------- cycle model
class TestCycleProperties:
    @given(layer_and_grid())
    def test_cycles_lower_bounded_by_work(self, args):
        layer, tn, tm = args
        # Tn*Tm units can retire at most Tn*Tm MACs per cycle.
        assert layer_cycles(layer, tn, tm) * tn * tm >= layer.macs

    @given(layer_and_grid())
    def test_utilization_in_unit_interval(self, args):
        layer, tn, tm = args
        util = layer_utilization(layer, tn, tm)
        assert 0 < util <= 1

    @given(layer_and_grid())
    def test_perfect_fit_has_full_utilization(self, args):
        layer, tn, tm = args
        assume(layer.n % tn == 0 and layer.m % tm == 0)
        assert layer_utilization(layer, tn, tm) == pytest.approx(1.0)

    @given(layer_and_grid(), st.integers(1, 4))
    def test_cycles_monotone_in_tn(self, args, factor):
        layer, tn, tm = args
        assert layer_cycles(layer, tn * factor, tm) <= layer_cycles(
            layer, tn, tm
        )

    @given(layer_and_grid())
    def test_oversized_grid_hits_floor(self, args):
        layer, _, _ = args
        floor = layer.r * layer.c * layer.k * layer.k
        assert layer_cycles(layer, layer.n, layer.m) == floor


# ------------------------------------------------------------ DSP model
class TestDspProperties:
    @given(st.integers(1, 64), st.integers(1, 512))
    def test_float_is_five_times_fixed(self, tn, tm):
        assert dsp_count(tn, tm, FLOAT32) == 5 * dsp_count(tn, tm, FIXED16)

    @given(st.integers(1, 64), st.integers(1, 512))
    def test_dsp_positive(self, tn, tm):
        assert dsp_count(tn, tm, FIXED16) == tn * tm


# ----------------------------------------------------------- BRAM model
class TestBramProperties:
    @given(layer_grid_tiles())
    def test_bram_nonnegative(self, args):
        layer, tn, tm, tr, tc = args
        spec = buffer_spec([layer], [(tr, tc)])
        assert bram_count(tn, tm, spec, FLOAT32) >= 0

    @given(layer_grid_tiles())
    def test_fixed_never_uses_more_than_float(self, args):
        layer, tn, tm, tr, tc = args
        spec = buffer_spec([layer], [(tr, tc)])
        assert bram_count(tn, tm, spec, FIXED16) <= bram_count(
            tn, tm, spec, FLOAT32
        )

    @given(layer_grid_tiles())
    def test_bram_monotone_in_tile_growth(self, args):
        layer, tn, tm, tr, tc = args
        small = buffer_spec([layer], [(tr, tc)])
        large = buffer_spec([layer], [(layer.r, layer.c)])
        assert bram_count(tn, tm, large, FLOAT32) >= bram_count(
            tn, tm, small, FLOAT32
        )

    @given(layers(), st.integers(1, 16), st.integers(1, 16))
    def test_buffer_spec_covers_every_layer(self, layer, tr_raw, tc_raw):
        tr = min(tr_raw, layer.r)
        tc = min(tc_raw, layer.c)
        spec = buffer_spec([layer], [(tr, tc)])
        assert spec.input_bank_words >= input_extent(
            1, layer.s, layer.k
        ) * input_extent(1, layer.s, layer.k)
        assert spec.output_bank_words == tr * tc


# ------------------------------------------------------ transfer model
class TestTransferProperties:
    @given(layer_grid_tiles())
    def test_transfer_at_least_touches_data_once(self, args):
        layer, tn, tm, tr, tc = args
        t = layer_transfer(layer, tn, tm, tr, tc)
        # When K < S the stride skips input pixels, so only K >= S
        # guarantees the whole input array is read at least once.
        if layer.k >= layer.s:
            assert t.input_words >= layer.input_words
        assert t.weight_words >= layer.weight_words
        assert t.output_words == layer.output_words

    @given(layer_grid_tiles())
    def test_full_tiles_minimize_weight_traffic(self, args):
        layer, tn, tm, tr, tc = args
        t = layer_transfer(layer, tn, tm, tr, tc)
        full = layer_transfer(layer, tn, tm, layer.r, layer.c)
        assert full.weight_words <= t.weight_words

    @given(layer_grid_tiles(), st.floats(0.1, 100.0))
    def test_bound_cycles_at_least_compute(self, args, bw):
        layer, tn, tm, tr, tc = args
        t = layer_transfer(layer, tn, tm, tr, tc)
        assert bandwidth_bound_cycles([t], FLOAT32, bw) >= t.compute_cycles

    @given(layer_grid_tiles())
    def test_first_tile_bounded_by_totals(self, args):
        layer, tn, tm, tr, tc = args
        t = layer_transfer(layer, tn, tm, tr, tc)
        assert t.first_tile_words <= t.input_words + t.weight_words


# ------------------------------------------------- functional simulation
class TestFunctionalProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(1, 6),   # n
        st.integers(1, 6),   # m
        st.integers(1, 7),   # r
        st.integers(1, 7),   # c
        st.integers(1, 3),   # k
        st.integers(1, 2),   # s
        st.integers(1, 8),   # tn
        st.integers(1, 8),   # tm
        st.integers(1, 7),   # tr
        st.integers(1, 7),   # tc
        st.integers(0, 3),   # seed
    )
    def test_tiled_equals_reference(
        self, n, m, r, c, k, s, tn, tm, tr, tc, seed
    ):
        layer = ConvLayer("prop", n=n, m=m, r=r, c=c, k=k, s=s)
        tr = min(tr, r)
        tc = min(tc, c)
        inputs, weights, bias = random_layer_data(layer, seed=seed)
        ref = reference_conv(layer, inputs, weights, bias)
        out, counters = tiled_conv(
            layer, inputs, weights, tn=tn, tm=tm, tr=tr, tc=tc, bias=bias
        )
        np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-9)
        # Executed transfers must match the analytic model exactly.
        t = layer_transfer(layer, tn, tm, tr, tc)
        assert counters.input_words == t.input_words
        assert counters.weight_words == t.weight_words
        assert counters.output_words == t.output_words
