"""Tests for design/network JSON serialization."""

import json

import pytest

from repro.core.clp import CLPConfig
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.design import MultiCLPDesign
from repro.core.layer import ConvLayer
from repro.core.network import Network
from repro.core.serialize import (
    SCHEMA_VERSION,
    design_from_dict,
    design_to_dict,
    dump_design,
    layer_from_dict,
    layer_to_dict,
    load_design,
    network_from_dict,
    network_to_dict,
)
from repro.networks import alexnet


@pytest.fixture
def design():
    layers = [
        ConvLayer("a", n=16, m=32, r=13, c=13, k=3),
        ConvLayer("b", n=32, m=64, r=13, c=13, k=3),
    ]
    net = Network("toy", layers)
    clps = [
        CLPConfig(4, 16, [layers[0]], FLOAT32, [(13, 13)]),
        CLPConfig(8, 16, [layers[1]], FLOAT32, [(7, 13)]),
    ]
    return MultiCLPDesign(net, clps, FLOAT32)


class TestLayerRoundTrip:
    def test_round_trip(self):
        layer = ConvLayer("x", n=3, m=48, r=55, c=55, k=11, s=4)
        assert layer_from_dict(layer_to_dict(layer)) == layer

    def test_missing_field(self):
        with pytest.raises(ValueError):
            layer_from_dict({"name": "x", "n": 1})


class TestNetworkRoundTrip:
    def test_round_trip(self):
        net = alexnet()
        restored = network_from_dict(network_to_dict(net))
        assert restored.name == net.name
        assert restored.layers == net.layers

    def test_json_serializable(self):
        json.dumps(network_to_dict(alexnet()))


class TestDesignRoundTrip:
    def test_round_trip_preserves_everything(self, design):
        restored = design_from_dict(design_to_dict(design))
        assert restored.dtype is design.dtype
        assert restored.epoch_cycles == design.epoch_cycles
        assert restored.dsp == design.dsp
        assert restored.bram == design.bram
        assert [c.tile_plans for c in restored.clps] == [
            c.tile_plans for c in design.clps
        ]

    def test_summary_fields_present(self, design):
        record = design_to_dict(design)
        assert record["schema"] == SCHEMA_VERSION
        assert record["summary"]["epoch_cycles"] == design.epoch_cycles

    def test_wrong_schema_rejected(self, design):
        record = design_to_dict(design)
        record["schema"] = 99
        with pytest.raises(ValueError):
            design_from_dict(record)

    def test_fixed16_round_trip(self):
        layer = ConvLayer("a", n=8, m=8, r=8, c=8, k=3)
        net = Network("n", [layer])
        design = MultiCLPDesign(
            net, [CLPConfig(2, 4, [layer], FIXED16)], FIXED16
        )
        restored = design_from_dict(design_to_dict(design))
        assert restored.dtype is FIXED16

    def test_file_round_trip(self, design, tmp_path):
        path = tmp_path / "design.json"
        dump_design(design, str(path))
        restored = load_design(str(path))
        assert restored.epoch_cycles == design.epoch_cycles
        # The file should be human-readable JSON.
        parsed = json.loads(path.read_text())
        assert parsed["network"]["name"] == "toy"

    def test_optimized_design_round_trip(self):
        from repro.analysis.tables import design_for

        design = design_for("alexnet", "485t", "float32", single=False)
        restored = design_from_dict(design_to_dict(design))
        assert restored.epoch_cycles == design.epoch_cycles
        assert restored.arithmetic_utilization == pytest.approx(
            design.arithmetic_utilization
        )
