"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "dse" in capsys.readouterr().out

    def test_version_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.network == "alexnet"
        assert args.part == "485t"
        assert not args.single


class TestCommands:
    def test_networks_lists_zoo(self, capsys):
        out = run(capsys, "networks")
        for name in ("AlexNet", "VGGNet-E", "SqueezeNet", "GoogLeNet"):
            assert name in out

    def test_networks_single(self, capsys):
        out = run(capsys, "networks", "--network", "alexnet")
        assert "conv1a" in out

    def test_optimize_single(self, capsys):
        out = run(capsys, "optimize", "--single")
        assert "Tn=7" in out and "Tm=64" in out  # Zhang FPGA'15 optimum
        assert "throughput" in out

    def test_optimize_save(self, capsys, tmp_path):
        path = tmp_path / "design.json"
        out = run(capsys, "optimize", "--single", "--save", str(path))
        assert str(path) in out
        record = json.loads(path.read_text())
        assert record["network"]["name"] == "AlexNet"

    def test_table2(self, capsys):
        out = run(capsys, "table2", "--scenario", "485t_single")
        assert "2006k" in out or "2006" in out

    def test_gantt(self, capsys):
        out = run(capsys, "gantt", "--network", "alexnet", "--part", "485t")
        assert "CLP0" in out and "epoch" in out

    def test_gantt_from_file(self, capsys, tmp_path):
        path = tmp_path / "design.json"
        run(capsys, "optimize", "--single", "--save", str(path))
        out = run(capsys, "gantt", "--load", str(path))
        assert "CLP0" in out

    def test_latency(self, capsys):
        out = run(capsys, "latency", "--max-clps", "2")
        assert "frontier" in out.lower()
        assert "CLPs" in out

    def test_hls(self, capsys):
        out = run(capsys, "hls", "--network", "alexnet", "--single")
        assert "#define TN" in out
        assert "DATAFLOW" in out

    def test_joint(self, capsys):
        out = run(capsys, "joint", "alexnet", "squeezenet",
                  "--part", "690t", "--dtype", "fixed16")
        assert "AlexNet" in out and "SqueezeNet" in out
