"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "dse" in capsys.readouterr().out

    def test_version_exits_zero(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_optimize_defaults(self):
        args = build_parser().parse_args(["optimize"])
        assert args.network == "alexnet"
        assert args.part == "485t"
        assert not args.single


class TestCommands:
    def test_networks_lists_zoo(self, capsys):
        out = run(capsys, "networks")
        for name in ("AlexNet", "VGGNet-E", "SqueezeNet", "GoogLeNet"):
            assert name in out

    def test_networks_single(self, capsys):
        out = run(capsys, "networks", "--network", "alexnet")
        assert "conv1a" in out

    def test_optimize_single(self, capsys):
        out = run(capsys, "optimize", "--single")
        assert "Tn=7" in out and "Tm=64" in out  # Zhang FPGA'15 optimum
        assert "throughput" in out

    def test_optimize_save(self, capsys, tmp_path):
        path = tmp_path / "design.json"
        out = run(capsys, "optimize", "--single", "--save", str(path))
        assert str(path) in out
        record = json.loads(path.read_text())
        assert record["network"]["name"] == "AlexNet"

    def test_table2(self, capsys):
        out = run(capsys, "table2", "--scenario", "485t_single")
        assert "2006k" in out or "2006" in out

    def test_gantt(self, capsys):
        out = run(capsys, "gantt", "--network", "alexnet", "--part", "485t")
        assert "CLP0" in out and "epoch" in out

    def test_gantt_from_file(self, capsys, tmp_path):
        path = tmp_path / "design.json"
        run(capsys, "optimize", "--single", "--save", str(path))
        out = run(capsys, "gantt", "--load", str(path))
        assert "CLP0" in out

    def test_latency(self, capsys):
        out = run(capsys, "latency", "--max-clps", "2")
        assert "frontier" in out.lower()
        assert "CLPs" in out

    def test_hls(self, capsys):
        out = run(capsys, "hls", "--network", "alexnet", "--single")
        assert "#define TN" in out
        assert "DATAFLOW" in out

    def test_joint(self, capsys):
        out = run(capsys, "joint", "alexnet", "squeezenet",
                  "--part", "690t", "--dtype", "fixed16")
        assert "AlexNet" in out and "SqueezeNet" in out


SAMPLE_RUN = __import__("os").path.join(
    __import__("os").path.dirname(__file__), "data", "sample_fleet_run.json"
)


class TestReportCommand:
    def test_report_on_run_json(self, capsys):
        out = run(capsys, "report", SAMPLE_RUN)
        assert out.startswith("# Run report")
        assert "## SLO attainment" in out
        assert "## Time series" in out

    def test_report_out_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        out = run(capsys, "report", SAMPLE_RUN, "--out", str(path))
        assert str(path) in out
        assert path.read_text().startswith("# Run report")

    def test_report_with_slo(self, capsys):
        out = run(capsys, "report", SAMPLE_RUN, "--p99-ms", "1000",
                  "--max-drop-rate", "1.0")
        assert "(no SLO given" not in out

    def test_report_missing_path_errors(self):
        with pytest.raises(SystemExit):
            main(["report", "/nonexistent/run.json"])


class TestServeObsFlags:
    @pytest.fixture(scope="class")
    def design_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("design") / "design.json"
        main(["optimize", "--single", "--save", str(path)])
        return str(path)

    def test_fleet_json_omits_timeseries_by_default(self, capsys, design_file):
        out = run(capsys, "fleet", "simulate", "--load", design_file,
                  "--replicas", "2", "--rate", "100",
                  "--process", "constant", "--json")
        record = json.loads(out)
        assert record["num_replicas"] == 2
        assert "timeseries" not in record

    def test_fleet_json_includes_timeseries_on_request(
        self, capsys, design_file
    ):
        out = run(capsys, "fleet", "simulate", "--load", design_file,
                  "--replicas", "2", "--rate", "100",
                  "--process", "constant", "--json", "--emit-timeseries")
        record = json.loads(out)
        assert record["timeseries"]["series"]

    def test_serve_trace_and_report(self, capsys, design_file, tmp_path):
        trace = tmp_path / "trace.json"
        report = tmp_path / "report.md"
        out = run(capsys, "serve", "--load", design_file, "--rate", "100",
                  "--process", "constant", "--emit-timeseries",
                  "--trace-out", str(trace), "--report", str(report))
        assert str(trace) in out and str(report) in out
        assert json.loads(trace.read_text())["traceEvents"]
        assert report.read_text().startswith("# Run report")

    def test_serve_fast_engine_rejects_trace(self, design_file, tmp_path):
        with pytest.raises(SystemExit, match="cannot emit a trace"):
            main(["serve", "--load", design_file, "--engine", "fast",
                  "--trace-out", str(tmp_path / "t.json")])

    def test_autoscale_report_and_trace(self, capsys, design_file, tmp_path):
        trace = tmp_path / "scaling.json"
        report = tmp_path / "autoscale.md"
        out = run(capsys, "fleet", "autoscale", "--load", design_file,
                  "--rates", "50", "400", "--window-ms", "40",
                  "--max-replicas", "3",
                  "--trace-out", str(trace), "--report", str(report))
        assert str(trace) in out and str(report) in out
        assert "traceEvents" in trace.read_text()
        text = report.read_text()
        assert text.startswith("# Autoscale report")
        assert "## Window series" in text
