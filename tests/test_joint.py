"""Tests for joint multi-CNN and latency-constrained optimization."""

import pytest

from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.schedule import build_schedule
from repro.fpga.parts import budget_for
from repro.networks import alexnet, squeezenet
from repro.opt import (
    combine_networks,
    latency_throughput_frontier,
    optimize_latency_constrained,
    optimize_multi_clp,
)


class TestCombineNetworks:
    def test_layer_count(self):
        combined = combine_networks([alexnet(), squeezenet()])
        assert len(combined) == 10 + 26

    def test_names_are_namespaced(self):
        combined = combine_networks([alexnet(), squeezenet()])
        assert combined.layer_by_name("AlexNet::conv1a").n == 3
        assert combined.layer_by_name("SqueezeNet::conv10").m == 1000

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            combine_networks([alexnet(), alexnet()])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_networks([])


class TestOptimizeJoint:
    @pytest.fixture
    def joint(self, joint_design_690t):
        # Session-scoped canned design from tests/conftest.py: the same
        # AlexNet+SqueezeNet 690T scenario is shared with test_serve.py.
        return joint_design_690t

    def test_covers_both_networks(self, joint):
        for network_name in ("AlexNet", "SqueezeNet"):
            assert joint.clps_serving(network_name)

    def test_fits_budget(self, joint):
        budget = budget_for("690t")
        assert joint.design.dsp <= budget.dsp
        assert joint.design.bram <= budget.bram18k

    def test_throughput_per_network(self, joint):
        rates = joint.throughput_per_network(170.0)
        assert set(rates) == {"AlexNet", "SqueezeNet"}
        assert all(rate > 0 for rate in rates.values())

    def test_epoch_covers_combined_work(self, joint):
        # Serving both networks takes longer than serving AlexNet alone.
        alex_only = optimize_multi_clp(
            alexnet(), budget_for("690t"), FIXED16
        )
        assert joint.epoch_cycles > alex_only.epoch_cycles

    def test_describe(self, joint):
        text = joint.describe()
        assert "AlexNet" in text and "SqueezeNet" in text


class TestLatencyConstrained:
    def test_assignment_is_adjacent(self):
        design = optimize_latency_constrained(
            alexnet(), budget_for("485t"), FLOAT32
        )
        assert design.has_adjacent_assignment
        assert design.pipeline_depth_images == design.num_clps

    def test_latency_below_general_design(self):
        budget = budget_for("485t")
        general = optimize_multi_clp(alexnet(), budget, FLOAT32)
        latency = optimize_latency_constrained(alexnet(), budget, FLOAT32)
        # General designs keep one image per *layer* in flight.
        assert latency.latency_cycles() < general.pipeline_depth_images * (
            general.epoch_cycles
        )

    def test_adjacent_schedule_mode(self):
        design = optimize_latency_constrained(
            alexnet(), budget_for("485t"), FLOAT32, max_clps=3
        )
        schedule = build_schedule(design, epochs=4, mode="adjacent")
        assert schedule.pipeline_depth == design.num_clps
        # Every layer an image needs in an epoch stays on one CLP.
        for entry in schedule.entries:
            assert entry.image_index >= 0

    def test_general_design_rejects_adjacent_mode(self):
        # nm-distance ordering reorders layers, breaking adjacency for
        # AlexNet multi-CLP designs on the 690T (conv5 before conv3).
        design = optimize_multi_clp(
            alexnet(), budget_for("690t"), FLOAT32
        )
        if not design.has_adjacent_assignment:
            with pytest.raises(ValueError):
                build_schedule(design, epochs=2, mode="adjacent")

    def test_frontier_shape(self):
        frontier = latency_throughput_frontier(
            alexnet(), budget_for("485t"), FLOAT32, max_clps=3
        )
        assert len(frontier) == 3
        caps = [cap for cap, _, _ in frontier]
        assert caps == [1, 2, 3]
        epochs = [epoch for _, _, epoch in frontier]
        # More CLPs never lengthen the epoch.
        assert all(b <= a for a, b in zip(epochs, epochs[1:]))

    def test_throughput_cost_of_latency_mode(self):
        # Constraining to natural order can cost throughput vs the free
        # ordering, but never helps.
        budget = budget_for("690t")
        free = optimize_multi_clp(alexnet(), budget, FLOAT32)
        constrained = optimize_latency_constrained(alexnet(), budget, FLOAT32)
        assert constrained.epoch_cycles >= free.epoch_cycles
