"""Tests for HLS template generation and the virtual toolflow."""

import pytest

from repro.core.clp import CLPConfig
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.layer import ConvLayer
from repro.analysis.tables import design_for
from repro.hls.synthesis import implement_clp, implement_design
from repro.hls.template import (
    LayerDescriptor,
    generate_clp_source,
    generate_system,
    layer_descriptor,
    template_parameters,
)


@pytest.fixture
def clp():
    layers = [
        ConvLayer("a", n=16, m=48, r=13, c=13, k=3),
        ConvLayer("b", n=48, m=64, r=13, c=13, k=5),
    ]
    return CLPConfig(4, 16, layers, FLOAT32, [(13, 13), (13, 13)])


class TestTemplateParameters:
    def test_grid(self, clp):
        p = template_parameters(clp)
        assert (p.tn, p.tm) == (4, 16)

    def test_buffer_sizing_tracks_worst_layer(self, clp):
        p = template_parameters(clp)
        assert p.k_max == 5
        assert p.m_max == 64
        assert p.insize == 17 * 17  # (13-1)*1+5 squared
        assert p.outsize == 169

    def test_port_counts_positive(self, clp):
        p = template_parameters(clp)
        assert p.np_ports >= 1 and p.wp_ports >= 1 and p.mp_ports >= 1


class TestLayerDescriptor:
    def test_round_trip(self, clp):
        desc = layer_descriptor(clp, "b")
        assert desc.pack() == LayerDescriptor.unpack(desc.pack()).pack()

    def test_is_32_bytes(self, clp):
        assert len(layer_descriptor(clp, "a").pack()) == 32

    def test_steps(self, clp):
        desc = layer_descriptor(clp, "a")
        rsteps, csteps, msteps, nsteps = desc.steps(clp.tn, clp.tm)
        assert (rsteps, csteps) == (1, 1)
        assert msteps == 3  # ceil(48/16)
        assert nsteps == 4  # ceil(16/4)

    def test_unknown_layer(self, clp):
        with pytest.raises(KeyError):
            layer_descriptor(clp, "zzz")

    def test_unpack_rejects_bad_size(self):
        with pytest.raises(ValueError):
            LayerDescriptor.unpack(b"\x00" * 30)


class TestSourceGeneration:
    def test_parameters_embedded(self, clp):
        source = generate_clp_source(clp, name="clp7")
        assert "#define TN 4" in source
        assert "#define TM 16" in source
        assert "#define KMAX 5" in source
        assert "void clp7(" in source

    def test_float_type(self, clp):
        assert "typedef float data_t;" in generate_clp_source(clp)

    def test_fixed_type(self):
        layer = ConvLayer("a", n=8, m=8, r=8, c=8, k=3)
        clp = CLPConfig(2, 4, [layer], FIXED16)
        assert "ap_fixed<16, 8>" in generate_clp_source(clp)

    def test_braces_balanced(self, clp):
        source = generate_clp_source(clp)
        assert source.count("{") == source.count("}")

    def test_pragmas_present(self, clp):
        source = generate_clp_source(clp)
        for pragma in ("DATAFLOW", "PIPELINE", "UNROLL", "ARRAY_PARTITION"):
            assert pragma in source

    def test_system_lists_all_clps_and_descriptors(self):
        design = design_for("alexnet", "485t", "float32", single=False)
        manifest = generate_system(design)
        for index in range(design.num_clps):
            assert f"clp{index}:" in manifest
        for layer in design.network:
            assert f"descriptor {layer.name}:" in manifest


class TestVirtualToolflow:
    def test_impl_exceeds_model(self, clp):
        impl = implement_clp(clp)
        assert impl.dsp_impl > impl.dsp_model
        assert impl.bram_impl > impl.bram_model

    def test_compute_module_dsps_match_model(self, clp):
        # Section 6.4: the compute-module DSP count matches exactly; the
        # overhead is control logic only.
        impl = implement_clp(clp)
        assert impl.dsp_model == clp.dsp
        assert 40 <= impl.dsp_overhead <= 120

    def test_fixed_point_overheads_larger(self):
        layer = ConvLayer("a", n=32, m=64, r=14, c=14, k=3)
        f32 = implement_clp(CLPConfig(8, 32, [layer], FLOAT32))
        f16 = implement_clp(CLPConfig(8, 32, [layer], FIXED16))
        assert f16.dsp_overhead > f32.dsp_overhead

    def test_design_totals_are_clp_sums(self):
        design = design_for("alexnet", "485t", "float32", single=False)
        impl = implement_design(design)
        assert impl.dsp_impl == sum(c.dsp_impl for c in impl.clps)
        assert impl.bram_impl == sum(c.bram_impl for c in impl.clps)

    def test_table8_485t_single_clp_calibration(self):
        # Our virtual toolflow should land near the paper's Vivado
        # numbers for the reference design (Table 8, 485T Single-CLP).
        design = design_for("alexnet", "485t", "float32", single=True)
        impl = implement_design(design)
        assert impl.dsp_impl == pytest.approx(2309, rel=0.03)
        assert impl.bram_impl == pytest.approx(698, rel=0.10)
        assert impl.flip_flops == pytest.approx(219815, rel=0.10)
        assert impl.luts == pytest.approx(146325, rel=0.10)
        assert impl.power_watts == pytest.approx(6.6, rel=0.15)

    def test_utilization_percentages(self):
        from repro.fpga.parts import get_part

        design = design_for("alexnet", "485t", "float32", single=True)
        impl = implement_design(design)
        util = impl.utilization_of(get_part("485t"))
        assert 0 < util["DSP"] < 1
        assert set(util) == {"DSP", "BRAM-18K", "FF", "LUT"}
