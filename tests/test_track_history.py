"""Tests for the benchmark-trajectory tracker (scripts/track_history.py).

The tracker is the CI gate that turns BENCH_*.json artifacts into a
committed time series and fails the build on a >20% throughput drop —
so its comparison logic (same benchmark, same smoke/full mode, newest
comparable predecessor) is pinned here with pure-function tests plus
one end-to-end record/check run against a temp directory.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "scripts"))

import track_history as th  # noqa: E402


def _entry(commit, **benches):
    return {
        "commit": commit,
        "entries": {
            name: {"requests_per_s": float(rps), "smoke": smoke}
            for name, (rps, smoke) in benches.items()
        },
    }


class TestPureFunctions:
    def test_load_missing_history_is_empty(self, tmp_path):
        assert th.load_history(tmp_path / "nope.jsonl") == []

    def test_history_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        entries = [_entry("a", fleet=(1000, True)),
                   _entry("b", fleet=(1100, True))]
        path.write_text(
            "".join(json.dumps(e, sort_keys=True) + "\n" for e in entries)
        )
        assert th.load_history(path) == entries

    def test_append_does_not_mutate(self):
        history = [_entry("a", fleet=(1000, True))]
        grown = th.append_entry(history, "b", {"fleet": {
            "requests_per_s": 900.0, "smoke": True}})
        assert len(history) == 1 and len(grown) == 2
        assert grown[-1]["commit"] == "b"

    def test_collect_bench_skips_non_throughput_artifacts(self, tmp_path):
        (tmp_path / "BENCH_fleet.json").write_text(json.dumps(
            {"benchmark": "fleet", "smoke": True,
             "requests_per_s": 50_000.0}))
        (tmp_path / "BENCH_table1.json").write_text(json.dumps(
            {"benchmark": "table1", "smoke": True, "bram_ratio": 0.8}))
        benches = th.collect_bench(tmp_path)
        assert list(benches) == ["fleet"]
        assert benches["fleet"] == {"requests_per_s": 50_000.0,
                                    "smoke": True}


class TestRegressionCheck:
    def test_large_drop_flags(self):
        history = [_entry("a", fleet=(1000, True)),
                   _entry("b", fleet=(700, True))]  # -30%
        problems = th.check_regressions(history, threshold=0.2)
        assert len(problems) == 1 and "fleet" in problems[0]

    def test_small_drop_and_improvement_pass(self):
        history = [_entry("a", fleet=(1000, True), serve=(500, True)),
                   _entry("b", fleet=(900, True), serve=(800, True))]
        assert th.check_regressions(history, threshold=0.2) == []

    def test_smoke_never_compared_against_full(self):
        # A laptop full run is 10x CI smoke; mode mismatch must not trip.
        history = [_entry("a", fleet=(500_000, False)),
                   _entry("b", fleet=(50_000, True))]
        assert th.check_regressions(history) == []

    def test_compares_against_newest_comparable(self):
        # The full-mode point in between is skipped, not compared.
        history = [_entry("a", fleet=(1000, True)),
                   _entry("b", fleet=(900_000, False)),
                   _entry("c", fleet=(700, True))]
        problems = th.check_regressions(history, threshold=0.2)
        assert len(problems) == 1

    def test_first_appearance_never_flags(self):
        history = [_entry("a", fleet=(1000, True)),
                   _entry("b", fleet=(990, True), scenario=(10, True))]
        assert th.check_regressions(history) == []

    def test_empty_history_passes(self):
        assert th.check_regressions([]) == []

    def test_fast_speedup_below_floor_flags(self):
        entry = _entry("a", serve_fast=(2_000_000, True))
        entry["entries"]["serve_fast"].update(
            speedup_vs_event=3.2, speedup_floor=4.0)
        problems = th.check_regressions([entry])
        assert len(problems) == 1
        assert "serve_fast" in problems[0] and "3.2x" in problems[0]

    def test_fast_speedup_at_floor_passes(self):
        entry = _entry("a", serve_fast=(2_000_000, True),
                       fleet_fast=(400_000, True))
        entry["entries"]["serve_fast"].update(
            speedup_vs_event=17.5, speedup_floor=10.0)
        entry["entries"]["fleet_fast"].update(
            speedup_vs_event=4.0, speedup_floor=4.0)
        assert th.check_regressions([entry]) == []

    def test_goodput_retention_below_floor_flags(self):
        entry = _entry("a", overload=(30_000, True))
        entry["entries"]["overload"].update(
            goodput_retention=0.4, retention_floor=0.9)
        problems = th.check_regressions([entry])
        assert len(problems) == 1
        assert "overload" in problems[0] and "0.40" in problems[0]

    def test_goodput_retention_at_floor_passes(self):
        entry = _entry("a", overload=(30_000, True))
        entry["entries"]["overload"].update(
            goodput_retention=1.1, retention_floor=0.9)
        assert th.check_regressions([entry]) == []

    def test_collect_bench_carries_retention(self, tmp_path):
        (tmp_path / "BENCH_overload.json").write_text(json.dumps(
            {"benchmark": "overload", "smoke": True,
             "requests_per_s": 30_000.0,
             "goodput_retention": 1.27, "retention_floor": 0.9}))
        benches = th.collect_bench(tmp_path)
        assert benches["overload"]["goodput_retention"] == 1.27
        assert benches["overload"]["retention_floor"] == 0.9

    def test_collect_bench_carries_speedup(self, tmp_path):
        (tmp_path / "BENCH_serve_fast.json").write_text(json.dumps(
            {"benchmark": "serve_fast", "smoke": True,
             "requests_per_s": 2_000_000.0,
             "speedup_vs_event": 17.5, "speedup_floor": 4.0}))
        benches = th.collect_bench(tmp_path)
        assert benches["serve_fast"]["speedup_vs_event"] == 17.5
        assert benches["serve_fast"]["speedup_floor"] == 4.0


class TestMain:
    def test_record_then_check_end_to_end(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        history = tmp_path / "history.jsonl"
        (results / "BENCH_fleet.json").write_text(json.dumps(
            {"benchmark": "fleet", "smoke": True,
             "requests_per_s": 50_000.0}))
        argv = ["--results-dir", str(results), "--history", str(history)]
        assert th.main(["record", "--commit", "c1"] + argv) == 0
        assert th.main(["check"] + argv) == 0

        (results / "BENCH_fleet.json").write_text(json.dumps(
            {"benchmark": "fleet", "smoke": True,
             "requests_per_s": 10_000.0}))  # -80%
        assert th.main(["record", "--commit", "c2"] + argv) == 0
        assert th.main(["check"] + argv) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_record_with_no_artifacts_fails(self, tmp_path):
        empty = tmp_path / "results"
        empty.mkdir()
        assert th.main([
            "record", "--results-dir", str(empty),
            "--history", str(tmp_path / "h.jsonl"),
        ]) == 1
