"""Cost-model tests, pinned to the paper's published numbers.

The cycle model must reproduce every row of Table 2 and the BRAM model
every "model" column of Table 6 — these are exact, not approximate.
"""

import pytest

from repro.core.cost_model import (
    BufferSpec,
    bram_breakdown,
    bram_count,
    buffer_spec,
    dsp_count,
    layer_cycles,
    max_units_for_budget,
)
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.layer import ConvLayer
from repro.networks import alexnet, squeezenet


@pytest.fixture(scope="module")
def anet():
    return alexnet()


def cycles_for_pair(net, stage, tn, tm):
    a = net.layer_by_name(f"conv{stage}a")
    b = net.layer_by_name(f"conv{stage}b")
    return layer_cycles(a, tn, tm) + layer_cycles(b, tn, tm)


class TestCyclesTable2SingleCLP:
    """Table 2(a): AlexNet 485T Single-CLP, Tn=7, Tm=64."""

    @pytest.mark.parametrize(
        "stage,expected_k",
        [(1, 732), (2, 510), (3, 338), (4, 256), (5, 170)],
    )
    def test_485t_per_stage(self, anet, stage, expected_k):
        cycles = cycles_for_pair(anet, stage, tn=7, tm=64)
        assert round(cycles / 1000) == expected_k

    def test_485t_overall(self, anet):
        total = sum(cycles_for_pair(anet, s, 7, 64) for s in range(1, 6))
        assert round(total / 1000) == 2006


class TestCyclesTable2SingleCLP690T:
    """Table 2(b): AlexNet 690T Single-CLP, Tn=9, Tm=64."""

    @pytest.mark.parametrize(
        "stage,expected_k",
        [(1, 732), (2, 437), (3, 265), (4, 201), (5, 134)],
    )
    def test_690t_per_stage(self, anet, stage, expected_k):
        cycles = cycles_for_pair(anet, stage, tn=9, tm=64)
        assert round(cycles / 1000) == expected_k

    def test_690t_overall(self, anet):
        total = sum(cycles_for_pair(anet, s, 9, 64) for s in range(1, 6))
        assert round(total / 1000) == 1769


class TestCyclesTable2MultiCLP:
    """Table 2(c)/(d): the published Multi-CLP configurations."""

    def test_485t_clp0(self, anet):
        # Tn=2, Tm=64 computing conv5a/b then conv4a/b.
        assert round(cycles_for_pair(anet, 5, 2, 64) / 1000) == 584
        assert round(cycles_for_pair(anet, 4, 2, 64) / 1000) == 876

    def test_485t_clp1(self, anet):
        assert round(cycles_for_pair(anet, 3, 1, 96) / 1000) == 1558

    def test_485t_clp2(self, anet):
        assert round(cycles_for_pair(anet, 1, 3, 24) / 1000) == 1464

    def test_485t_clp3(self, anet):
        assert round(cycles_for_pair(anet, 2, 8, 19) / 1000) == 1531

    def test_690t_clps(self, anet):
        # Table 2(d): six CLPs, epoch 1,168k cycles.
        assert round(cycles_for_pair(anet, 5, 1, 64) / 1000) == 1168
        assert round(cycles_for_pair(anet, 4, 1, 96) / 1000) == 1168
        assert round(cycles_for_pair(anet, 3, 2, 64) / 1000) == 1168
        one_a = layer_cycles(anet.layer_by_name("conv1a"), 1, 48)
        assert round(one_a / 1000) == 1098
        assert round(cycles_for_pair(anet, 2, 3, 64) / 1000) == 1166


class TestCycleModelBasics:
    def test_exact_fit_has_no_rounding(self):
        layer = ConvLayer("l", n=64, m=64, r=10, c=10, k=3)
        assert layer_cycles(layer, 64, 64) == 10 * 10 * 9

    def test_ceil_on_n(self):
        layer = ConvLayer("l", n=65, m=64, r=10, c=10, k=3)
        assert layer_cycles(layer, 64, 64) == 10 * 10 * 9 * 2

    def test_tr_tc_do_not_affect_cycles(self):
        # The cycle model depends only on Tn, Tm (Section 4.2).
        layer = ConvLayer("l", n=64, m=64, r=55, c=55, k=3)
        assert layer_cycles(layer, 8, 8) == 55 * 55 * 8 * 8 * 9

    def test_rejects_bad_grid(self):
        layer = ConvLayer("l", n=4, m=4, r=4, c=4, k=1)
        with pytest.raises(ValueError):
            layer_cycles(layer, 0, 4)


class TestDspModel:
    def test_float_is_five_per_unit(self):
        # Table 3: Tn=7 x Tm=64 costs 2,240 DSP slices.
        assert dsp_count(7, 64, FLOAT32) == 2240

    def test_690t_float(self):
        assert dsp_count(9, 64, FLOAT32) == 2880

    def test_fixed_is_one_per_unit(self):
        # Table 5: Tn=32 x Tm=68 costs 2,176 DSP slices.
        assert dsp_count(32, 68, FIXED16) == 2176

    def test_multi_clp_dsp_sum_matches_single(self):
        # Section 6.3: the 690T Multi-CLP spreads the same 576 units.
        multi = [(1, 64), (1, 96), (2, 64), (1, 48), (1, 48), (3, 64)]
        assert sum(tn * tm for tn, tm in multi) == 9 * 64

    def test_max_units(self):
        assert max_units_for_budget(2240, FLOAT32) == 448
        assert max_units_for_budget(2880, FIXED16) == 2880

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            max_units_for_budget(0, FLOAT32)


class TestBufferSpec:
    def test_single_layer(self):
        layer = ConvLayer("l", n=48, m=128, r=27, c=27, k=5)
        spec = buffer_spec([layer], [(14, 27)])
        assert spec.input_bank_words == 18 * 31
        assert spec.weight_bank_words == 25
        assert spec.output_bank_words == 14 * 27

    def test_max_across_layers(self):
        l1 = ConvLayer("a", n=3, m=48, r=55, c=55, k=11, s=4)
        l2 = ConvLayer("b", n=192, m=128, r=13, c=13, k=3)
        spec = buffer_spec([l1, l2], [(8, 8), (13, 13)])
        assert spec.input_bank_words == 39 * 39  # layer a dominates
        assert spec.weight_bank_words == 121
        assert spec.output_bank_words == 169  # layer b dominates

    def test_rejects_mismatched_plans(self):
        layer = ConvLayer("l", n=1, m=1, r=4, c=4, k=1)
        with pytest.raises(ValueError):
            buffer_spec([layer], [])

    def test_rejects_oversized_tile(self):
        layer = ConvLayer("l", n=1, m=1, r=4, c=4, k=1)
        with pytest.raises(ValueError):
            buffer_spec([layer], [(5, 4)])


class TestBramModelTable6:
    """Table 6 "model" column, reproduced exactly."""

    def test_485t_single_clp_618(self, anet):
        plans = {
            1: (8, 8), 2: (14, 27), 3: (13, 13), 4: (13, 13), 5: (13, 13)
        }
        layers, tiles = [], []
        for stage in range(1, 6):
            for suffix in "ab":
                layers.append(anet.layer_by_name(f"conv{stage}{suffix}"))
                tiles.append(plans[stage])
        spec = buffer_spec(layers, tiles)
        assert bram_count(7, 64, spec, FLOAT32) == 618
        inp, wgt, out = bram_breakdown(7, 64, spec, FLOAT32)
        assert (inp, wgt, out) == (42, 448, 128)

    def test_690t_single_clp_758(self, anet):
        plans = {
            1: (8, 8), 2: (14, 27), 3: (13, 13), 4: (13, 13), 5: (13, 13)
        }
        layers, tiles = [], []
        for stage in range(1, 6):
            for suffix in "ab":
                layers.append(anet.layer_by_name(f"conv{stage}{suffix}"))
                tiles.append(plans[stage])
        spec = buffer_spec(layers, tiles)
        assert bram_count(9, 64, spec, FLOAT32) == 758

    def test_485t_multi_clp_totals(self, anet):
        def clp_bram(tn, tm, stages, plans):
            layers, tiles = [], []
            for stage, plan in zip(stages, plans):
                for suffix in "ab":
                    layers.append(anet.layer_by_name(f"conv{stage}{suffix}"))
                    tiles.append(plan)
            return bram_count(tn, tm, buffer_spec(layers, tiles), FLOAT32)

        clp0 = clp_bram(2, 64, [5, 4], [(13, 13), (13, 13)])
        clp1 = clp_bram(1, 96, [3], [(13, 13)])
        clp2 = clp_bram(3, 24, [1], [(14, 19)])
        clp3 = clp_bram(8, 19, [2], [(14, 27)])
        assert (clp0, clp1, clp2, clp3) == (130, 193, 186, 222)
        assert clp0 + clp1 + clp2 + clp3 == 731

    def test_small_weight_banks_map_to_lutram(self):
        # K=3 filters (9 words) fall below the 10-word LUTRAM cutoff.
        layer = ConvLayer("l", n=128, m=64, r=13, c=13, k=3)
        spec = buffer_spec([layer], [(13, 13)])
        _, weights, _ = bram_breakdown(2, 64, spec, FLOAT32)
        assert weights == 0

    def test_output_banks_need_two_brams_even_when_small(self):
        layer = ConvLayer("l", n=8, m=8, r=13, c=13, k=3)
        spec = buffer_spec([layer], [(13, 13)])
        _, _, out = bram_breakdown(8, 8, spec, FLOAT32)
        assert out == 2 * 8  # 169 words <= 512, but accumulation needs 2

    def test_fixed16_halves_bank_count(self):
        layer = ConvLayer("l", n=8, m=8, r=30, c=30, k=5)
        spec = buffer_spec([layer], [(30, 30)])
        in_float, _, out_float = bram_breakdown(8, 8, spec, FLOAT32)
        in_fixed, _, out_fixed = bram_breakdown(8, 8, spec, FIXED16)
        assert in_fixed * 2 == in_float
        assert out_fixed * 2 == out_float
