"""Tests for failure injection and resilience planning (repro.scenario).

The load-bearing guarantees, in test order:

* fault schedules are pure functions of (spec, horizon, fleet size,
  rng) — deterministic, bounded to the horizon, valid replica indices;
* surge arrival processes are seeded and shape-correct (diurnal mean,
  flash-crowd multiplier, on/off duty gating);
* the scenario library round-trips through JSON and ``with_redundancy``
  composes without mutating the base spec;
* **no-op differential**: running with the ``steady`` scenario is
  bit-exact to running with no scenario at all — fault plumbing on its
  own RNG substream can never perturb a plain simulation;
* **request conservation** (hypothesis): under every fault schedule,
  gray degradation, and failure policy, ``arrivals == completions +
  drops + lost + timed_out + in_flight`` per tenant and in aggregate,
  with each failed-over request counted at most once;
* the N+k planner is monotone: surviving one forced failure never takes
  *fewer* replicas than surviving zero;
* the autoscaler sees in-incident p99 — reproducing the late-scale-up
  miss a window-wide percentile causes on a short flash crowd.
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialize import (
    SCENARIO_SCHEMA_VERSION,
    fleet_result_from_dict,
    fleet_result_to_dict,
    scenario_spec_from_dict,
    scenario_spec_to_dict,
)
from repro.fleet import (
    AutoscalerPolicy,
    DeviceSpec,
    plan_capacity,
    simulate_fleet,
)
from repro.fleet.metrics import FleetResult, ReplicaStats
from repro.scenario import (
    FAILURE_POLICIES,
    SCENARIO_NAMES,
    SCENARIOS,
    DiurnalArrivals,
    FlashCrowdArrivals,
    Incident,
    OnOffArrivals,
    RackFailure,
    RampArrivals,
    RandomFaults,
    RedundancyOutage,
    ResilienceReport,
    RollingReboot,
    ScenarioSpec,
    ScheduledOutage,
    WindowMetrics,
    compute_resilience,
    describe_scenario,
    get_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.scenario.faults import fault_from_dict, fault_to_dict
from repro.serve import SLOSpec, TenantSpec, make_arrival_process
from repro.serve.metrics import LatencySummary, TenantStats

import random

FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HORIZON = 1_000_000.0


def _tenants(design, rate_mult):
    epoch = design.epoch_cycles
    proc = make_arrival_process("poisson", rate_mult / epoch)
    return [TenantSpec(design.network.name, proc)]


def _fleet(design, replicas, rate_mult, *, epochs=60, seed=0,
           balancer="round-robin", queue_depth=10**6, policy="drop-tail",
           drain=False, scenario=None, detector=None):
    return simulate_fleet(
        DeviceSpec(design).replicated(replicas),
        _tenants(design, rate_mult),
        duration_cycles=epochs * design.epoch_cycles,
        balancer=balancer,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drain=drain,
        scenario=scenario,
        detector=detector,
    )


# ------------------------------------------------------------- fault specs
class TestFaultSpecs:
    def test_random_faults_deterministic(self):
        spec = RandomFaults(mttf=0.3, mttr=0.05)
        a = spec.materialize(HORIZON, 4, random.Random("x"))
        b = spec.materialize(HORIZON, 4, random.Random("x"))
        assert a == b and a  # same stream, same schedule, non-empty

    def test_random_faults_bounded(self):
        spec = RandomFaults(mttf=0.2, mttr=0.1)
        for outage in spec.materialize(HORIZON, 3, random.Random(7)):
            # Starts inside the run; recovery may overhang (the cluster
            # clips the recorded incident at the observation window).
            assert 0.0 <= outage.start < HORIZON
            assert outage.start < outage.end
            assert 0 <= outage.replica < 3

    def test_scheduled_outage_skips_missing_replica(self):
        spec = ScheduledOutage(replica=5, start=0.2, duration=0.1)
        assert spec.materialize(HORIZON, 2, random.Random(0)) == []

    def test_rack_failure_takes_first_half(self):
        spec = RackFailure(fraction=0.5, start=0.4, duration=0.2)
        outages = spec.materialize(HORIZON, 4, random.Random(0))
        assert sorted(o.replica for o in outages) == [0, 1]
        assert all(o.start == 0.4 * HORIZON for o in outages)

    def test_rolling_reboot_one_at_a_time(self):
        spec = RollingReboot(duration=0.05, window_start=0.1,
                             window_end=0.9)
        outages = spec.materialize(HORIZON, 6, random.Random(0))
        assert len(outages) == 6
        spans = sorted((o.start, o.end) for o in outages)
        for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
            assert next_start >= prev_end  # never two down at once

    def test_redundancy_outage_fails_last_replicas(self):
        spec = RedundancyOutage(count=2, start=0.35, duration=0.3)
        outages = spec.materialize(HORIZON, 5, random.Random(0))
        assert sorted(o.replica for o in outages) == [3, 4]

    @pytest.mark.parametrize("spec", [
        RandomFaults(mttf=0.5, mttr=0.05),
        ScheduledOutage(replica=1, start=0.3, duration=0.2),
        RackFailure(fraction=0.25, start=0.5, duration=0.1),
        RollingReboot(duration=0.04),
        RedundancyOutage(count=3, start=0.2, duration=0.5),
    ])
    def test_fault_json_round_trip(self, spec):
        assert fault_from_dict(fault_to_dict(spec)) == spec

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            RandomFaults(mttf=0.0)
        with pytest.raises(ValueError):
            ScheduledOutage(replica=-1)
        with pytest.raises(ValueError):
            RackFailure(fraction=1.5)
        with pytest.raises(ValueError):
            RedundancyOutage(count=0)


# ------------------------------------------------------------------ surges
class TestSurges:
    def test_diurnal_oscillates_about_mean(self):
        proc = DiurnalArrivals(rate=0.001, amplitude=0.5,
                               period_cycles=1000.0)
        rates = [proc.rate_at(t) for t in range(0, 1000, 10)]
        assert min(rates) < 0.001 < max(rates)
        assert abs(sum(rates) / len(rates) - 0.001) < 1e-4

    def test_flash_crowd_multiplier_inside_spike(self):
        proc = FlashCrowdArrivals(rate=0.001, multiplier=4.0,
                                  spike_start_cycles=100.0,
                                  spike_cycles=50.0)
        assert proc.rate_at(50.0) == pytest.approx(0.001)
        assert proc.rate_at(125.0) == pytest.approx(0.004)
        assert proc.rate_at(200.0) == pytest.approx(0.001)

    def test_ramp_endpoints(self):
        proc = RampArrivals(start_rate=0.001, end_rate=0.003,
                            ramp_cycles=500.0)
        assert proc.rate_at(0.0) == pytest.approx(0.001)
        assert proc.rate_at(500.0) == pytest.approx(0.003)
        assert proc.rate_at(9999.0) == pytest.approx(0.003)

    def test_on_off_duty_gating(self):
        proc = OnOffArrivals(rate=0.001, duty=0.6, period_cycles=100.0)
        assert proc.rate_at(30.0) == pytest.approx(0.001)  # in duty
        assert proc.rate_at(80.0) == 0.0                   # off phase

    def test_times_seeded_and_increasing(self):
        proc = DiurnalArrivals(rate=0.01, period_cycles=1000.0)

        def take(seed, n=50):
            rng = random.Random(seed)
            out = []
            for t in proc.times(rng):
                out.append(t)
                if len(out) == n:
                    return out

        a, b, c = take("s"), take("s"), take("other")
        assert a == b != c
        assert all(x < y for x, y in zip(a, a[1:]))


# ----------------------------------------------------------------- library
class TestScenarioLibrary:
    def test_names_sorted_and_resolvable(self):
        assert list(SCENARIO_NAMES) == sorted(SCENARIOS)
        for name in SCENARIO_NAMES:
            spec = get_scenario(name)
            assert spec.name == name
            assert describe_scenario(spec)  # renders without error

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="rack-loss"):
            get_scenario("no-such-drill")

    def test_steady_is_the_only_noop(self):
        noops = [n for n in SCENARIO_NAMES if get_scenario(n).is_noop]
        assert noops == ["steady"]

    def test_with_redundancy_composes_without_mutation(self):
        base = get_scenario("rack-loss")
        plus = base.with_redundancy(2)
        assert plus.name == "rack-loss+n2"
        assert len(plus.faults) == len(base.faults) + 1
        assert isinstance(plus.faults[-1], RedundancyOutage)
        assert plus.faults[-1].count == 2
        assert get_scenario("rack-loss") == base  # library untouched
        assert base.with_redundancy(0) is base
        with pytest.raises(ValueError):
            base.with_redundancy(-1)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_library_json_round_trip(self, name):
        spec = get_scenario(name)
        assert scenario_from_dict(scenario_to_dict(spec)) == spec

    def test_core_serializer_stamps_schema(self):
        record = scenario_spec_to_dict(get_scenario("flash-crowd"))
        assert record["schema"] == SCENARIO_SCHEMA_VERSION
        json.dumps(record)  # JSON-clean
        assert scenario_spec_from_dict(record) == get_scenario("flash-crowd")
        record["schema"] = 99
        with pytest.raises(ValueError):
            scenario_spec_from_dict(record)


# ---------------------------------------------------- no-op differential
def _strip_scenario(result):
    """Drop the scenario metadata, keeping every simulation output."""
    return dataclasses.replace(
        result, scenario=None, incidents=(), resilience=None
    )


class TestNoopDifferential:
    def test_steady_scenario_is_bit_exact(self, toy_design):
        """The RNG-substream audit, as a regression test.

        Fault injection draws from ``{seed}/scenario/faults`` and the
        health filter only engages when outages exist, so a no-op
        scenario must reproduce a plain run *exactly* — same event
        order, same draws, same floats.
        """
        for balancer in ("round-robin", "random", "least-outstanding"):
            plain = _fleet(toy_design, 3, 2.5, seed=11, balancer=balancer)
            steady = _fleet(toy_design, 3, 2.5, seed=11, balancer=balancer,
                            scenario="steady")
            assert steady.scenario == "steady"
            assert steady.resilience is not None
            assert _strip_scenario(steady) == plain

    def test_fault_draws_do_not_shift_arrivals(self, toy_design):
        """Faults consume their own substream: arrival times (hence
        aggregate arrival counts over a fixed horizon) are identical
        whether or not replicas are dying."""
        plain = _fleet(toy_design, 4, 2.0, seed=3)
        chaos = _fleet(toy_design, 4, 2.0, seed=3, scenario="chaos")
        assert chaos.total_arrivals == plain.total_arrivals

    def test_same_seed_same_scenario_reproduces(self, toy_design):
        a = _fleet(toy_design, 3, 2.0, seed=5, scenario="rack-loss")
        b = _fleet(toy_design, 3, 2.0, seed=5, scenario="rack-loss")
        assert a == b


# -------------------------------------------------- conservation property
FAULTY = [
    "rack-loss", "rolling-reboot", "chaos",
    # Gray drills: stragglers, flaky boards, slow links — these embed
    # probe detectors with request timeouts, so the property also
    # covers the timed_out / failed_over classes.
    "gray-failure", "straggler-storm", "flaky-replica",
]


class TestConservation:
    @FAST
    @given(
        seed=st.integers(0, 2**32 - 1),
        name=st.sampled_from(FAULTY),
        policy=st.sampled_from(FAILURE_POLICIES),
        queue_depth=st.sampled_from([2, 8, 10**6]),
        drain=st.booleans(),
    )
    def test_requests_conserved_under_failures(
        self, toy_design, seed, name, policy, queue_depth, drain
    ):
        base = get_scenario(name)
        scenario = dataclasses.replace(base, failure_policy=policy)
        result = _fleet(toy_design, 3, 3.0, seed=seed, scenario=scenario,
                        queue_depth=queue_depth, drain=drain)
        total = {"arrivals": 0, "out": 0}
        for tenant in result.tenants:
            out = (tenant.completions + tenant.drops + tenant.lost
                   + tenant.timed_out + tenant.in_flight)
            assert tenant.arrivals == out, tenant
            # A logical request increments failed_over at most once no
            # matter how many failover hops it takes.
            assert 0 <= tenant.failed_over <= tenant.arrivals
            total["arrivals"] += tenant.arrivals
            total["out"] += out
        assert total["arrivals"] == total["out"]
        if drain:
            assert all(t.in_flight == 0 for t in result.tenants)

    def test_fault_scenarios_actually_lose_requests(self, toy_design):
        """The property above is vacuous if nothing ever dies."""
        result = _fleet(toy_design, 4, 3.0, seed=0, scenario="rack-loss",
                        drain=True)
        assert result.total_lost > 0
        assert any(i.kind == "fault" for i in result.incidents)


# ------------------------------------------------------------ N+k planner
class TestRedundancyPlanning:
    def _plan(self, design, redundancy, scenario="rack-loss"):
        capacity = 1e8 / design.epoch_cycles  # one board's img/s @100MHz
        slo = SLOSpec(p99_ms=5.0, max_drop_rate=0.25)
        return plan_capacity(
            DeviceSpec(design), 3.0 * capacity, slo,
            max_replicas=32, duration_ms=10.0, seed=0,
            scenario=scenario, redundancy=redundancy,
        )

    def test_redundant_plan_never_smaller(self, toy_design):
        base = self._plan(toy_design, 0)
        plus1 = self._plan(toy_design, 1)
        assert base.meets and plus1.meets
        assert plus1.replicas >= base.replicas
        assert plus1.replicas >= 2  # floor: must outlive the forced failure
        assert plus1.scenario == "rack-loss+n1"
        assert plus1.redundancy == 1
        assert plus1.result is not None
        assert plus1.result.resilience is not None

    def test_redundancy_without_scenario_uses_steady(self, toy_design):
        plan = self._plan(toy_design, 1, scenario=None)
        assert plan.scenario == "steady+n1"
        assert plan.replicas >= 2

    def test_redundancy_validation(self, toy_design):
        with pytest.raises(ValueError):
            self._plan(toy_design, -1)
        slo = SLOSpec(p99_ms=5.0, max_drop_rate=0.25)
        with pytest.raises(ValueError):
            plan_capacity(DeviceSpec(toy_design), 1000.0, slo,
                          max_replicas=2, redundancy=2)


# ----------------------------------------------- incident-aware autoscaler
def _window(p99_cycles, completions=100):
    return WindowMetrics(
        cycles=1e6, completions=completions,
        goodput_per_cycle=completions / 1e6,
        p99_cycles=p99_cycles, p50_cycles=p99_cycles,
    )


def _synthetic_result(window_p99_ms, during_p99_ms):
    """A 100 MHz fleet window: 1 ms == 1e5 cycles."""
    latency = LatencySummary(
        count=100, mean=window_p99_ms * 1e5, p50=window_p99_ms * 1e5,
        p95=window_p99_ms * 1e5, p99=window_p99_ms * 1e5,
        min=1.0, max=window_p99_ms * 1e5,
    )
    tenant = TenantStats(
        name="t", offered_rate_per_cycle=1e-4, arrivals=100,
        completions=100, drops=0, in_flight=0, latency=latency,
        mean_queue_depth=0.0, peak_queue_depth=1,
        steady_rate_per_cycle=1e-4,
    )
    resilience = ResilienceReport(
        availability=1.0, incident_cycles=2e5, lost_requests=0,
        mean_time_to_recover_cycles=None,
        during=_window(during_p99_ms * 1e5, completions=10),
        outside=_window(window_p99_ms * 1e5),
    )
    return FleetResult(
        balancer="round-robin", num_replicas=2, frequency_mhz=100.0,
        horizon_cycles=1e6, elapsed_cycles=1e6, seed=0, queue_depth=64,
        policy="drop-tail", drained=False, tenants=(tenant,),
        replicas=(), scenario="flash-crowd",
        incidents=(Incident("surge", "fleet", 4e5, 6e5, True),),
        resilience=resilience,
    )


class TestIncidentAwareAutoscaler:
    POLICY = AutoscalerPolicy(min_replicas=1, max_replicas=8, step=2,
                              p99_high_ms=100.0, p99_low_ms=None,
                              queue_high=None, queue_low=None)

    def test_scales_up_on_in_window_degradation(self):
        """Window-wide p99 is calm (50 ms); the flash crowd inside it is
        not (300 ms).  The incident-aware controller reacts now."""
        result = _synthetic_result(window_p99_ms=50.0, during_p99_ms=300.0)
        assert self.POLICY.decide(result) > 0

    def test_without_resilience_report_reacts_a_window_late(self):
        """The miss this feature fixes: strip the resilience report and
        the same window reads as healthy — the controller holds."""
        blind = dataclasses.replace(
            _synthetic_result(50.0, 300.0), resilience=None
        )
        assert self.POLICY.decide(blind) == 0

    def test_calm_incident_does_not_trigger(self):
        result = _synthetic_result(window_p99_ms=50.0, during_p99_ms=60.0)
        assert self.POLICY.decide(result) == 0


# ------------------------------------------------------ resilience metrics
class TestResilienceMetrics:
    def test_split_by_incident_windows(self):
        incidents = (Incident("fault", "r0", 100.0, 200.0, True),)
        completions = [(150.0, 10.0), (150.0, 30.0), (500.0, 20.0)]
        report = compute_resilience(
            completions=completions, incidents=incidents,
            horizon_cycles=1000.0, num_replicas=2, lost_requests=3,
        )
        assert report.during.completions == 2
        assert report.outside.completions == 1
        assert report.lost_requests == 3
        assert report.incident_cycles == pytest.approx(100.0)
        # one replica down 100 of 2 * 1000 replica-cycles
        assert report.availability == pytest.approx(1 - 100.0 / 2000.0)
        assert report.mean_time_to_recover_cycles == pytest.approx(100.0)

    def test_no_incidents_means_full_availability(self):
        report = compute_resilience(
            completions=[(10.0, 5.0)], incidents=(),
            horizon_cycles=100.0, num_replicas=3, lost_requests=0,
        )
        assert report.availability == 1.0
        assert report.during.completions == 0
        assert report.during.p99_cycles is None
        assert report.outside.completions == 1

    def test_overlapping_windows_union(self):
        incidents = (
            Incident("fault", "r0", 100.0, 300.0, True),
            Incident("surge", "fleet", 200.0, 400.0, True),
        )
        report = compute_resilience(
            completions=[], incidents=incidents,
            horizon_cycles=1000.0, num_replicas=1, lost_requests=0,
        )
        assert report.incident_cycles == pytest.approx(300.0)  # union


# ------------------------------------------------------------ serialization
class TestScenarioSerialization:
    def test_fleet_result_round_trip_with_incidents(self, toy_design):
        result = _fleet(toy_design, 3, 2.5, seed=2, scenario="rack-loss",
                        drain=True)
        assert result.incidents  # non-trivial payload
        record = json.loads(json.dumps(fleet_result_to_dict(result)))
        assert fleet_result_from_dict(record) == result

    def test_pre_scenario_records_still_parse(self, toy_design):
        """Tolerant parsing: records written before this feature have no
        lost/scenario/incidents/resilience keys."""
        plain = _fleet(toy_design, 2, 2.0, seed=1)
        record = fleet_result_to_dict(plain)
        for key in ("scenario", "incidents", "resilience"):
            record.pop(key)
        for entry in record["tenants"]:
            entry.pop("lost")
        for replica in record["replicas"]:
            for entry in replica["tenants"]:
                entry.pop("lost")
        assert fleet_result_from_dict(record) == plain


# ------------------------------------------------------- resilience rank
class TestResilienceRanking:
    @pytest.fixture(scope="class")
    def sweep_results(self):
        from repro.dse import DesignPoint, run_sweep

        points = [
            DesignPoint(network="alexnet", dsp=800, bram18k=700,
                        single=True),
            DesignPoint(network="alexnet", dsp=2240, bram18k=1648),
        ]
        return run_sweep(points).results

    def test_rank_through_a_drill(self, sweep_results):
        from repro.dse import rank_by_resilience, resilience_rank_table

        slo = SLOSpec(p99_ms=2000.0, max_drop_rate=0.25)
        rankings = rank_by_resilience(
            sweep_results, rate_rps=20.0, slo=slo,
            scenario="rack-loss", replicas=4, duration_ms=400.0,
        )
        assert len(rankings) == 2
        for ranking in rankings:
            assert ranking.fleet.scenario == "rack-loss"
            assert ranking.fleet.resilience is not None
        # SLO-meeting designs sort ahead of failing ones.
        meets = [r.report.meets for r in rankings]
        assert meets == sorted(meets, reverse=True)
        table = resilience_rank_table(
            rankings, rate_rps=20.0, slo=slo, scenario="rack-loss"
        )
        assert "rack-loss" in table and "avail" in table

    def test_unknown_scenario_raises(self, sweep_results):
        from repro.dse import rank_by_resilience

        with pytest.raises(KeyError):
            rank_by_resilience(
                sweep_results, rate_rps=20.0,
                slo=SLOSpec(p99_ms=2000.0), scenario="no-such-drill",
            )


# ------------------------------------------------------------------- CLI
class TestScenarioCli:
    def _run(self, capsys, *argv):
        from repro.cli import main

        assert main(list(argv)) == 0
        return capsys.readouterr().out

    def test_list_names_every_scenario(self, capsys):
        out = self._run(capsys, "scenario", "list")
        for name in SCENARIO_NAMES:
            assert name in out

    def test_list_json_is_machine_readable(self, capsys):
        out = self._run(capsys, "scenario", "list", "--json")
        assert json.loads(out) == list(SCENARIO_NAMES)

    def test_describe_round_trips_through_json(self, capsys):
        out = self._run(capsys, "scenario", "describe", "rack-loss",
                        "--json")
        assert scenario_spec_from_dict(json.loads(out)) == \
            get_scenario("rack-loss")

    def test_describe_unknown_exits_nonzero(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["scenario", "describe", "no-such-drill"])

    def test_fleet_simulate_accepts_scenario_flag(self, capsys):
        out = self._run(
            capsys, "fleet", "simulate", "--network", "alexnet",
            "--replicas", "2", "--rate", "100", "--duration-ms", "400",
            "--seed", "1", "--scenario", "rack-loss",
        )
        assert "scenario: rack-loss" in out
        assert "availability" in out
