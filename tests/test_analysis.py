"""Tests for the experiment harness (tables, figures, report helpers)."""

import pytest

from repro.analysis import paper_data
from repro.analysis.report import ascii_plot, format_ratio, render_table
from repro.analysis.tables import design_for, table2, table3, table6, table8
from repro.analysis.figures import figure6, figure7


class TestReportHelpers:
    def test_render_table_alignment(self):
        out = render_table(["a", "long"], [(1, 2), (33, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [(1, 2)])

    def test_render_table_title(self):
        assert render_table(["x"], [(1,)], title="T").startswith("T\n")

    def test_format_ratio(self):
        assert "2.00x" in format_ratio(2.0, 1.0)
        assert "paper 0" in format_ratio(1.0, 0.0)

    def test_ascii_plot_dimensions(self):
        out = ascii_plot([(0, 0), (10, 5)], width=20, height=5)
        assert out.count("\n") >= 6

    def test_ascii_plot_empty(self):
        assert ascii_plot([]) == "(no points)"


class TestPaperData:
    def test_table1_has_16_cases(self):
        assert len(paper_data.TABLE1_UTILIZATION) == 16

    def test_table2_dsp_conservation(self):
        # Section 6.3: the 690T Multi-CLP uses exactly the Single-CLP's
        # 576 units spread over six CLPs.
        multi = paper_data.TABLE2_CONFIGS["690t_multi"]
        assert sum(c.tn * c.tm for c in multi) == 9 * 64

    def test_table4_485t_multi_dsp(self):
        multi = paper_data.TABLE4_CONFIGS["485t_multi"]
        assert sum(c.tn * c.tm for c in multi) == 2240

    def test_headline_speedups(self):
        assert paper_data.HEADLINE_SPEEDUPS["alexnet"] == 3.8


class TestDesignCache:
    def test_cache_returns_same_object(self):
        a = design_for("alexnet", "485t", "float32", single=True)
        b = design_for("alexnet", "485t", "float32", single=True)
        assert a is b

    def test_single_flag_distinguishes(self):
        single = design_for("alexnet", "485t", "float32", single=True)
        multi = design_for("alexnet", "485t", "float32", single=False)
        assert single.num_clps == 1
        assert multi.num_clps > 1


class TestTableGenerators:
    def test_table2_single_matches_paper_exactly(self):
        result = table2("485t_single")
        assert result.overall_cycles_k == result.paper_overall_cycles_k == 2006

    def test_table2_multi_at_least_matches_paper(self):
        result = table2("485t_multi")
        assert result.overall_cycles_k <= result.paper_overall_cycles_k

    def test_table3_dsp_matches_paper(self):
        result = table3()
        for row in result.rows:
            assert row.dsp == row.paper.dsp

    def test_table3_throughput_within_band(self):
        result = table3()
        for row in result.rows:
            assert row.throughput == pytest.approx(
                row.paper.throughput, rel=0.05
            )

    def test_table6_model_column_matches_paper(self):
        result = table6("485t_single")
        clp = result.implementation.clps[0]
        paper = result.paper_rows[0]
        assert clp.dsp_model == paper.dsp_model
        assert clp.bram_model == paper.bram_model

    def test_table8_rows_format(self):
        text = table8().format()
        assert "485t_single" in text
        assert "power" in text.lower()


class TestFigures:
    def test_figure6_curves_decrease(self):
        for curve in figure6():
            bws = [bw for _, bw in curve.points]
            assert bws == sorted(bws, reverse=True)
            assert len(curve.points) >= 2

    def test_figure6_bandwidth_at(self):
        curve = figure6(parts=("485t",))[0]
        big = curve.bandwidth_at(10**6)
        assert big is not None
        small = curve.bandwidth_at(curve.points[0][0])
        assert small >= big

    def test_figure7_small_sweep(self):
        result = figure7(dsp_sweep=(500, 2240))
        assert len(result.points) == 2
        last = result.points[-1]
        assert last.speedup is not None and last.speedup >= 1.0

    def test_figure7_format(self):
        text = figure7(dsp_sweep=(500,)).format()
        assert "DSP" in text
