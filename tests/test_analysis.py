"""Tests for the experiment harness (tables, figures, report helpers)."""

import pytest

from repro.analysis import paper_data
from repro.analysis.report import (
    _cell,
    ascii_plot,
    format_ratio,
    format_sig,
    markdown_table,
    render_table,
    sparkline,
)
from repro.analysis.tables import design_for, table2, table3, table6, table8
from repro.analysis.figures import figure6, figure7


class TestReportHelpers:
    def test_render_table_alignment(self):
        out = render_table(["a", "long"], [(1, 2), (33, 4)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [(1, 2)])

    def test_render_table_title(self):
        assert render_table(["x"], [(1,)], title="T").startswith("T\n")

    def test_format_ratio(self):
        assert "2.00x" in format_ratio(2.0, 1.0)
        assert "paper 0" in format_ratio(1.0, 0.0)

    def test_ascii_plot_dimensions(self):
        out = ascii_plot([(0, 0), (10, 5)], width=20, height=5)
        assert out.count("\n") >= 6

    def test_ascii_plot_empty(self):
        assert ascii_plot([]) == "(no points)"

    def test_ascii_plot_constant_y(self):
        # A flat series used to divide by a synthetic span and print a
        # meaningless "5.00 .. 5.00" range; now it's an annotated midline.
        out = ascii_plot([(0, 5.0), (10, 5.0)], width=20, height=5)
        assert "(5.00, constant)" in out
        assert "-" * 10 in out  # the midline is drawn

    def test_ascii_plot_constant_x(self):
        out = ascii_plot([(3, 1.0), (3, 2.0)], width=20, height=5)
        assert "(3, constant)" in out

    def test_ascii_plot_single_point(self):
        out = ascii_plot([(2, 7.0)], width=20, height=5)
        assert "(7.00, constant)" in out
        assert "(2, constant)" in out
        assert "*" in out

    def test_format_sig_keeps_small_rates_visible(self):
        # The old %.2f cell rounded a 0.4% drop rate to "0.00".
        assert format_sig(0.004) == "0.004"
        assert format_sig(0.00037) == "0.00037"
        assert format_sig(-0.004) == "-0.004"

    def test_format_sig_large_values_unchanged(self):
        assert format_sig(0.0) == "0.00"
        assert format_sig(1.2345) == "1.23"
        assert format_sig(97.1) == "97.10"
        assert format_sig(float("nan")) == "nan"

    def test_cell_uses_significant_digits(self):
        assert _cell(0.004) == "0.004"
        assert _cell("text") == "text"
        assert _cell(7) == "7"

    def test_render_table_small_floats(self):
        out = render_table(["rate"], [(0.004,)])
        assert "0.004" in out

    def test_sparkline_range(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_gaps_and_constant(self):
        assert sparkline([None, None]) == "··"
        assert sparkline([5.0, None, 5.0]) == "▄·▄"

    def test_markdown_table_shape(self):
        out = markdown_table(["a", "b"], [(1, 0.004)])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert "0.004" in lines[2]


class TestRunReport:
    @pytest.fixture(scope="class")
    def sample_result(self):
        import os

        from repro.analysis.report import load_run

        path = os.path.join(
            os.path.dirname(__file__), "data", "sample_fleet_run.json"
        )
        return path, load_run(path)

    def test_load_run_sniffs_fleet(self, sample_result):
        _, result = sample_result
        assert result.balancer == "round-robin"

    def test_render_run_report_sections(self, sample_result):
        from repro.analysis.report import render_run_report

        path, result = sample_result
        text = render_run_report([result], [path])
        assert text.startswith("# Run report")
        assert "## Runs" in text
        assert "## SLO attainment" in text
        assert "## Resilience" in text  # the sample ran rolling-reboot
        assert "## Time series" in text
        assert "rolling-reboot" in text
        # Single run: no cross-run aggregate section.
        assert "## Aggregate" not in text

    def test_multi_run_aggregates(self, sample_result):
        from repro.analysis.report import render_run_report

        path, result = sample_result
        text = render_run_report([result, result], [path, path])
        assert "## Aggregate across runs" in text

    def test_slo_section_uses_given_spec(self, sample_result):
        from repro.analysis.report import render_run_report
        from repro.serve import SLOSpec

        path, result = sample_result
        text = render_run_report(
            [result], [path], slo=SLOSpec(max_drop_rate=1.0)
        )
        assert "(no SLO given" not in text

    def test_bench_history_section(self, sample_result, tmp_path):
        import json

        from repro.analysis.report import render_run_report

        history = tmp_path / "history.jsonl"
        rows = [
            {"commit": "a", "entries": {"serve": {"requests_per_s": 100.0}}},
            {"commit": "b", "entries": {"serve": {"requests_per_s": 150.0}}},
        ]
        history.write_text(
            "\n".join(json.dumps(row) for row in rows) + "\nnot json\n"
        )
        path, result = sample_result
        text = render_run_report(
            [result], [path], history_path=str(history)
        )
        assert "## Benchmark trajectory" in text
        assert "+50.0%" in text

    def test_render_report_dispatches_directory(self, sample_result, tmp_path):
        import shutil

        from repro.analysis.report import render_report

        path, _ = sample_result
        shutil.copy(path, tmp_path / "run.json")
        (tmp_path / "noise.json").write_text("{}")
        text = render_report(str(tmp_path))
        assert "run.json" in text

    def test_render_report_rejects_empty_dir(self, tmp_path):
        from repro.analysis.report import render_report

        with pytest.raises(ValueError):
            render_report(str(tmp_path))

    def test_render_store_report(self, tmp_path):
        from repro.analysis.report import render_report
        from repro.dse import DesignPoint, run_sweep

        store = tmp_path / "store.jsonl"
        point = DesignPoint.build("alexnet", dsp=500, bram18k=400)
        run_sweep([point], store=str(store))
        text = render_report(str(store))
        assert text.startswith("# Sweep report")
        assert "## Top points by throughput" in text
        assert "alexnet" in text
        assert "solve time" in text  # store.describe() timing satellite


class TestPaperData:
    def test_table1_has_16_cases(self):
        assert len(paper_data.TABLE1_UTILIZATION) == 16

    def test_table2_dsp_conservation(self):
        # Section 6.3: the 690T Multi-CLP uses exactly the Single-CLP's
        # 576 units spread over six CLPs.
        multi = paper_data.TABLE2_CONFIGS["690t_multi"]
        assert sum(c.tn * c.tm for c in multi) == 9 * 64

    def test_table4_485t_multi_dsp(self):
        multi = paper_data.TABLE4_CONFIGS["485t_multi"]
        assert sum(c.tn * c.tm for c in multi) == 2240

    def test_headline_speedups(self):
        assert paper_data.HEADLINE_SPEEDUPS["alexnet"] == 3.8


class TestDesignCache:
    def test_cache_returns_same_object(self):
        a = design_for("alexnet", "485t", "float32", single=True)
        b = design_for("alexnet", "485t", "float32", single=True)
        assert a is b

    def test_single_flag_distinguishes(self):
        single = design_for("alexnet", "485t", "float32", single=True)
        multi = design_for("alexnet", "485t", "float32", single=False)
        assert single.num_clps == 1
        assert multi.num_clps > 1


class TestTableGenerators:
    def test_table2_single_matches_paper_exactly(self):
        result = table2("485t_single")
        assert result.overall_cycles_k == result.paper_overall_cycles_k == 2006

    def test_table2_multi_at_least_matches_paper(self):
        result = table2("485t_multi")
        assert result.overall_cycles_k <= result.paper_overall_cycles_k

    def test_table3_dsp_matches_paper(self):
        result = table3()
        for row in result.rows:
            assert row.dsp == row.paper.dsp

    def test_table3_throughput_within_band(self):
        result = table3()
        for row in result.rows:
            assert row.throughput == pytest.approx(
                row.paper.throughput, rel=0.05
            )

    def test_table6_model_column_matches_paper(self):
        result = table6("485t_single")
        clp = result.implementation.clps[0]
        paper = result.paper_rows[0]
        assert clp.dsp_model == paper.dsp_model
        assert clp.bram_model == paper.bram_model

    def test_table8_rows_format(self):
        text = table8().format()
        assert "485t_single" in text
        assert "power" in text.lower()


class TestFigures:
    def test_figure6_curves_decrease(self):
        for curve in figure6():
            bws = [bw for _, bw in curve.points]
            assert bws == sorted(bws, reverse=True)
            assert len(curve.points) >= 2

    def test_figure6_bandwidth_at(self):
        curve = figure6(parts=("485t",))[0]
        big = curve.bandwidth_at(10**6)
        assert big is not None
        small = curve.bandwidth_at(curve.points[0][0])
        assert small >= big

    def test_figure7_small_sweep(self):
        result = figure7(dsp_sweep=(500, 2240))
        assert len(result.points) == 2
        last = result.points[-1]
        assert last.speedup is not None and last.speedup >= 1.0

    def test_figure7_format(self):
        text = figure7(dsp_sweep=(500,)).format()
        assert "DSP" in text
