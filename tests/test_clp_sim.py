"""Tests for the cycle-level CLP simulator."""

import pytest

from repro.core.clp import CLPConfig
from repro.core.datatypes import FLOAT32
from repro.core.layer import ConvLayer
from repro.sim.clp_sim import simulate_clp, tile_sequence


@pytest.fixture
def small_clp():
    layer = ConvLayer("l", n=16, m=32, r=13, c=13, k=3)
    return CLPConfig(4, 16, [layer], FLOAT32, [(13, 13)])


class TestTileSequence:
    def test_job_count(self):
        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3)
        jobs = tile_sequence(layer, 3, 5, 4, 5)
        assert len(jobs) == 3 * 3 * 3 * 3  # rsteps*csteps*msteps*nsteps

    def test_compute_cycles_sum_to_model(self):
        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3)
        jobs = tile_sequence(layer, 3, 5, 4, 5)
        from repro.core.cost_model import layer_cycles

        assert sum(j.compute_cycles for j in jobs) == layer_cycles(layer, 3, 5)

    def test_write_words_total_output(self):
        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3)
        jobs = tile_sequence(layer, 3, 5, 4, 5)
        assert sum(j.write_words for j in jobs) == layer.output_words

    def test_writes_only_on_last_n_step(self):
        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3)
        jobs = tile_sequence(layer, 3, 5, 4, 5)
        nsteps = 3
        for idx, job in enumerate(jobs):
            expect_write = (idx % nsteps) == nsteps - 1
            assert (job.write_words > 0) == expect_write

    def test_load_words_match_transfer_model(self):
        from repro.core.bandwidth import layer_transfer

        layer = ConvLayer("l", n=7, m=13, r=9, c=11, k=3, s=2)
        jobs = tile_sequence(layer, 3, 5, 4, 5)
        transfer = layer_transfer(layer, 3, 5, 4, 5)
        assert sum(j.load_words for j in jobs) == (
            transfer.input_words + transfer.weight_words
        )


class TestSimulateClp:
    def test_unlimited_bandwidth_matches_model_exactly(self, small_clp):
        result = simulate_clp(small_clp)
        assert result.total_cycles == small_clp.total_cycles
        assert result.total_stall_cycles == 0

    def test_pipeline_depth_adds_per_tile(self, small_clp):
        base = simulate_clp(small_clp)
        deep = simulate_clp(small_clp, pipeline_depth=10)
        layer = small_clp.layers[0]
        tiles = len(tile_sequence(layer, 4, 16, 13, 13))
        assert deep.total_cycles == base.total_cycles + 10 * tiles

    def test_generous_bandwidth_never_stalls(self, small_clp):
        result = simulate_clp(small_clp, bytes_per_cycle=1e9)
        assert result.total_cycles == pytest.approx(
            small_clp.total_cycles, rel=1e-6
        )

    def test_tight_bandwidth_stalls(self, small_clp):
        result = simulate_clp(small_clp, bytes_per_cycle=0.5)
        assert result.total_cycles > small_clp.total_cycles
        assert result.total_stall_cycles > 0

    def test_transfer_bound_time_matches_volume(self, small_clp):
        bw = 0.25
        result = simulate_clp(small_clp, bytes_per_cycle=bw)
        total_bytes = result.transferred_words * 4
        # Fully serialized transfers lower-bound the run time.
        assert result.total_cycles >= total_bytes / bw - 1e-6

    def test_transferred_words_match_model(self, small_clp):
        result = simulate_clp(small_clp, bytes_per_cycle=1.0)
        assert result.transferred_words == small_clp.total_transfer_words

    def test_sim_within_analytic_envelope(self, small_clp):
        # Deep in the transfer- or compute-bound regimes the analytic
        # bound model and the simulator agree within ~10%; near the
        # crossover the closed form is optimistic about write/port
        # contention, so the envelope is wider there (~35%).
        for bw in (0.25, 0.5, 1.0, 2.0, 8.0):
            sim = simulate_clp(small_clp, bytes_per_cycle=bw).total_cycles
            model = small_clp.cycles_under_bandwidth(bw)
            assert sim == pytest.approx(model, rel=0.35)

    def test_sim_matches_model_away_from_knee(self, small_clp):
        for bw in (0.25, 0.5):  # deeply transfer-bound
            sim = simulate_clp(small_clp, bytes_per_cycle=bw).total_cycles
            model = small_clp.cycles_under_bandwidth(bw)
            assert sim == pytest.approx(model, rel=0.10)

    def test_multi_layer_back_to_back(self):
        l1 = ConvLayer("a", n=8, m=16, r=9, c=9, k=3)
        l2 = ConvLayer("b", n=16, m=16, r=9, c=9, k=3)
        clp = CLPConfig(4, 8, [l1, l2], FLOAT32, [(9, 9), (9, 9)])
        result = simulate_clp(clp)
        assert result.total_cycles == clp.total_cycles
        assert len(result.layers) == 2
        assert result.layers[0].layer_name == "a"
        assert result.layers[1].start_cycle >= result.layers[0].end_cycle - 1e-9

    def test_rejects_bad_arguments(self, small_clp):
        with pytest.raises(ValueError):
            simulate_clp(small_clp, bytes_per_cycle=0)
        with pytest.raises(ValueError):
            simulate_clp(small_clp, pipeline_depth=-1)
