"""Tests for CLPConfig and MultiCLPDesign containers."""

import pytest

from repro.core.clp import CLPConfig
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.design import MultiCLPDesign
from repro.core.layer import ConvLayer
from repro.core.network import Network
from repro.fpga.parts import ResourceBudget


@pytest.fixture
def layers():
    return [
        ConvLayer("a", n=16, m=32, r=13, c=13, k=3),
        ConvLayer("b", n=32, m=64, r=13, c=13, k=3),
    ]


@pytest.fixture
def network(layers):
    return Network("toy", layers)


class TestCLPConfig:
    def test_default_tile_plans_full_maps(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32)
        assert clp.tile_plans == ((13, 13), (13, 13))

    def test_total_cycles_sum(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32)
        assert clp.total_cycles == sum(clp.per_layer_cycles.values())

    def test_units_and_dsp(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32)
        assert clp.units == 32
        assert clp.dsp == 160
        assert CLPConfig(4, 8, layers, FIXED16).dsp == 32

    def test_utilization_with_epoch(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32)
        own = clp.utilization()
        padded = clp.utilization(epoch_cycles=clp.total_cycles * 2)
        assert padded == pytest.approx(own / 2)

    def test_utilization_rejects_short_epoch(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32)
        with pytest.raises(ValueError):
            clp.utilization(epoch_cycles=1)

    def test_tile_plan_lookup(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32, [(13, 13), (7, 5)])
        assert clp.tile_plan_for("b") == (7, 5)
        with pytest.raises(KeyError):
            clp.tile_plan_for("zzz")

    def test_with_tile_plans(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32)
        new = clp.with_tile_plans([(6, 6), (7, 7)])
        assert new.tile_plans == ((6, 6), (7, 7))
        assert new.total_cycles == clp.total_cycles  # tiles don't change cycles

    def test_bram_by_buffer_sums(self, layers):
        clp = CLPConfig(4, 8, layers, FLOAT32)
        assert sum(clp.bram_by_buffer) == clp.bram

    def test_validation(self, layers):
        with pytest.raises(ValueError):
            CLPConfig(0, 8, layers, FLOAT32)
        with pytest.raises(ValueError):
            CLPConfig(4, 8, [], FLOAT32)
        with pytest.raises(ValueError):
            CLPConfig(4, 8, layers, FLOAT32, [(13, 13)])  # plan count
        with pytest.raises(ValueError):
            CLPConfig(4, 8, layers, FLOAT32, [(99, 13), (13, 13)])

    def test_describe(self, layers):
        text = CLPConfig(4, 8, layers, FLOAT32).describe()
        assert "Tn=4" in text and "a, b" in text


class TestMultiCLPDesign:
    def _design(self, network, layers):
        clps = [
            CLPConfig(4, 8, [layers[0]], FLOAT32),
            CLPConfig(8, 8, [layers[1]], FLOAT32),
        ]
        return MultiCLPDesign(network, clps, FLOAT32)

    def test_epoch_is_max(self, network, layers):
        design = self._design(network, layers)
        assert design.epoch_cycles == max(c.total_cycles for c in design.clps)

    def test_assignment(self, network, layers):
        design = self._design(network, layers)
        assert design.assignment() == {"a": 0, "b": 1}

    def test_utilization_identity(self, network, layers):
        design = self._design(network, layers)
        manual = network.total_macs / (
            design.epoch_cycles * design.total_units
        )
        assert design.arithmetic_utilization == pytest.approx(manual)

    def test_per_clp_utilization_bounded(self, network, layers):
        design = self._design(network, layers)
        for util in design.per_clp_utilization():
            assert 0 < util <= 1

    def test_throughput(self, network, layers):
        design = self._design(network, layers)
        expected = 100e6 / design.epoch_cycles
        assert design.throughput(100.0) == pytest.approx(expected)

    def test_fits(self, network, layers):
        design = self._design(network, layers)
        assert design.fits(ResourceBudget(dsp=10_000, bram18k=10_000))
        assert not design.fits(ResourceBudget(dsp=1, bram18k=1))

    def test_single_clp_flag(self, network, layers):
        single = MultiCLPDesign(
            network, [CLPConfig(4, 8, layers, FLOAT32)], FLOAT32
        )
        assert single.is_single_clp
        assert not self._design(network, layers).is_single_clp

    def test_rejects_partial_cover(self, network, layers):
        with pytest.raises(ValueError):
            MultiCLPDesign(
                network, [CLPConfig(4, 8, [layers[0]], FLOAT32)], FLOAT32
            )

    def test_rejects_duplicate_cover(self, network, layers):
        with pytest.raises(ValueError):
            MultiCLPDesign(
                network,
                [
                    CLPConfig(4, 8, layers, FLOAT32),
                    CLPConfig(2, 2, [layers[0]], FLOAT32),
                ],
                FLOAT32,
            )

    def test_rejects_dtype_mismatch(self, network, layers):
        clps = [CLPConfig(4, 8, layers, FIXED16)]
        with pytest.raises(ValueError):
            MultiCLPDesign(network, clps, FLOAT32)

    def test_metrics_unconstrained(self, network, layers):
        design = self._design(network, layers)
        budget = ResourceBudget(dsp=10_000, bram18k=10_000)
        metrics = design.metrics(budget)
        assert metrics.epoch_cycles == design.epoch_cycles
        assert metrics.dsp == design.dsp
        assert metrics.gflops > 0

    def test_metrics_bandwidth_capped(self, network, layers):
        design = self._design(network, layers)
        generous = ResourceBudget(
            dsp=10_000, bram18k=10_000, bandwidth_gbps=1000.0
        )
        tight = ResourceBudget(
            dsp=10_000, bram18k=10_000, bandwidth_gbps=0.01
        )
        fast = design.metrics(generous)
        slow = design.metrics(tight)
        assert slow.epoch_cycles > fast.epoch_cycles
        assert slow.throughput_images_per_s < fast.throughput_images_per_s

    def test_required_bandwidth_positive(self, network, layers):
        design = self._design(network, layers)
        assert design.required_bandwidth_gbps(100.0) > 0

    def test_describe(self, network, layers):
        assert "toy" in self._design(network, layers).describe()
