"""Tests for repro.obs: telemetry, tracing, and bit-neutrality.

Three invariants matter most:

* turning observability on must not change a single scalar of the run
  (sampler events ride the same event loop but are read-only);
* the window grid must be total — every horizon/window combination
  covers [0, horizon] exactly, including truncated tails and
  zero-arrival windows;
* exported Chrome traces must be structurally valid: monotonic
  timestamps, every async span opened before it closes, incident
  duration events properly alternating per track.
"""

import json
import math
import os

import pytest

from repro.core.serialize import (
    fleet_result_from_dict,
    fleet_result_to_dict,
    serve_result_from_dict,
    serve_result_to_dict,
    timeseries_from_dict,
    timeseries_to_dict,
)
from repro.fleet import DeviceSpec, simulate_fleet
from repro.obs import (
    DEFAULT_WINDOWS,
    MetricsRecorder,
    ObsSpec,
    TimeSeries,
    TraceRecorder,
)
from repro.obs.telemetry import window_grid
from repro.serve import PoissonArrivals, TenantSpec, simulate_traffic

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")


@pytest.fixture(scope="module")
def toy_tenants(toy_design):
    epoch = toy_design.epoch_cycles
    return [TenantSpec("toy", PoissonArrivals(1.0 / epoch))]


def serve_kwargs(toy_design):
    return dict(duration_cycles=30.0 * toy_design.epoch_cycles, seed=11)


# ------------------------------------------------------------------ telemetry


class TestWindowGrid:
    def test_divisible(self):
        assert window_grid(100.0, 25.0) == (25.0, 50.0, 75.0, 100.0)

    def test_truncated_tail(self):
        # Horizon not divisible by the window: the last window is short
        # but still ends exactly at the horizon.
        grid = window_grid(100.0, 30.0)
        assert grid == (30.0, 60.0, 90.0, 100.0)

    def test_window_larger_than_horizon(self):
        assert window_grid(50.0, 80.0) == (50.0,)

    def test_covers_horizon_exactly(self):
        for horizon, window in ((97.0, 10.0), (1.0, 3.0), (64.0, 64.0)):
            grid = window_grid(horizon, window)
            assert grid[-1] == horizon
            assert len(grid) == max(1, math.ceil(horizon / window))


class TestMetricsRecorder:
    def test_gauge_and_count(self):
        rec = MetricsRecorder(100.0, 25.0)
        rec.gauge("depth", 0, 3.0)
        rec.gauge("depth", 3, 7.0)
        rec.count("events", 10.0)
        rec.count("events", 10.0)
        rec.count("events", 90.0)
        ts = rec.finalize()
        # Gauges are honest about unsampled windows (None); counts
        # backfill zeros — a quiet window had zero events, not no data.
        assert ts.get("depth") == (3.0, None, None, 7.0)
        assert ts.get("events") == (2.0, 0.0, 0.0, 1.0)

    def test_zero_activity_windows_emit_zeros(self):
        # A window with no samples still appears as an explicit 0, not a
        # hole — sparklines and sums must see the quiet periods.
        rec = MetricsRecorder(100.0, 10.0)
        rec.count("arrivals", 5.0)
        ts = rec.finalize()
        assert len(ts.get("arrivals")) == 10
        assert ts.get("arrivals")[1:] == (0.0,) * 9

    def test_cumulative_diffs_per_window(self):
        rec = MetricsRecorder(100.0, 25.0)
        for window, total in enumerate((3.0, 3.0, 10.0, 12.0)):
            rec.cumulative("done", window, total)
        ts = rec.finalize()
        assert ts.get("done") == (3.0, 0.0, 7.0, 2.0)

    def test_windowed_allows_none(self):
        rec = MetricsRecorder(100.0, 50.0)
        rec.windowed("p99", 0, None)
        rec.windowed("p99", 1, 42.0)
        ts = rec.finalize()
        assert ts.get("p99") == (None, 42.0)

    def test_window_index_clamps_drain_tail(self):
        rec = MetricsRecorder(100.0, 25.0)
        assert rec.window_index(0.0) == 0
        assert rec.window_index(99.9) == 3
        assert rec.window_index(250.0) == 3  # past-horizon drain tail

    def test_histogram(self):
        rec = MetricsRecorder(100.0, 50.0)
        rec.observe("lat", 5.0, edges=(10.0, 100.0))
        rec.observe("lat", 50.0, edges=(10.0, 100.0))
        rec.observe("lat", 5000.0, edges=(10.0, 100.0))
        ts = rec.finalize()
        hist = ts.histograms["lat"]
        assert hist.counts == (1, 1, 1)

    def test_obs_spec_window_resolution(self):
        spec = ObsSpec(timeseries=True)
        assert spec.resolve_window(600.0) == 600.0 / DEFAULT_WINDOWS
        pinned = ObsSpec(timeseries=True, window_cycles=40.0)
        assert pinned.resolve_window(600.0) == 40.0

    def test_inactive_spec_makes_no_recorder(self):
        assert ObsSpec().make_recorder(100.0) is None
        assert not ObsSpec().active


# -------------------------------------------------------------- bit-neutrality


def scalars(record):
    record = dict(record)
    record.pop("timeseries", None)
    return record


class TestBitNeutrality:
    def test_serve_scalars_unchanged_by_obs(self, toy_design, toy_tenants):
        base = simulate_traffic(
            toy_design, toy_tenants, **serve_kwargs(toy_design)
        )
        obs = simulate_traffic(
            toy_design,
            toy_tenants,
            obs=ObsSpec(timeseries=True, windows=8, trace=TraceRecorder()),
            **serve_kwargs(toy_design),
        )
        assert scalars(serve_result_to_dict(base)) == scalars(
            serve_result_to_dict(obs)
        )
        assert obs.timeseries is not None
        assert base.timeseries is None

    def test_fleet_scalars_unchanged_by_obs(self, toy_design, toy_tenants):
        kwargs = dict(
            duration_cycles=30.0 * toy_design.epoch_cycles,
            seed=5,
            scenario="rolling-reboot",
        )
        devices = DeviceSpec(toy_design).replicated(3)
        base = simulate_fleet(devices, toy_tenants, **kwargs)
        obs = simulate_fleet(
            devices,
            toy_tenants,
            obs=ObsSpec(timeseries=True, windows=8, trace=TraceRecorder()),
            **kwargs,
        )
        assert scalars(fleet_result_to_dict(base)) == scalars(
            fleet_result_to_dict(obs)
        )
        assert obs.timeseries is not None

    def test_fast_and_event_scalars_equal_with_obs(
        self, toy_design, toy_tenants
    ):
        # Explicit fast engine with timeseries requested: runs fast,
        # reports no timeseries, but every scalar matches the event run.
        fast = simulate_traffic(
            toy_design,
            toy_tenants,
            engine="fast",
            obs=ObsSpec(timeseries=True, windows=8),
            **serve_kwargs(toy_design),
        )
        event = simulate_traffic(
            toy_design,
            toy_tenants,
            engine="event",
            obs=ObsSpec(timeseries=True, windows=8),
            **serve_kwargs(toy_design),
        )
        assert fast.timeseries is None
        assert event.timeseries is not None
        assert scalars(serve_result_to_dict(fast)) == scalars(
            serve_result_to_dict(event)
        )

    def test_auto_engine_prefers_observability(self, toy_design, toy_tenants):
        result = simulate_traffic(
            toy_design,
            toy_tenants,
            engine="auto",
            obs=ObsSpec(timeseries=True, windows=8),
            **serve_kwargs(toy_design),
        )
        assert result.timeseries is not None

    def test_explicit_fast_with_trace_raises(self, toy_design, toy_tenants):
        with pytest.raises(ValueError, match="cannot emit a trace"):
            simulate_traffic(
                toy_design,
                toy_tenants,
                engine="fast",
                obs=ObsSpec(trace=TraceRecorder()),
                **serve_kwargs(toy_design),
            )

    def test_timeseries_deterministic(self, toy_design, toy_tenants):
        runs = [
            simulate_traffic(
                toy_design,
                toy_tenants,
                obs=ObsSpec(timeseries=True, windows=8),
                **serve_kwargs(toy_design),
            )
            for _ in range(2)
        ]
        assert runs[0].timeseries == runs[1].timeseries

    def test_arrival_windows_sum_to_totals(self, toy_design, toy_tenants):
        result = simulate_traffic(
            toy_design,
            toy_tenants,
            obs=ObsSpec(timeseries=True, windows=8),
            **serve_kwargs(toy_design),
        )
        ts = result.timeseries
        assert sum(ts.get("arrivals/toy")) == result.tenants[0].arrivals
        assert sum(ts.get("drops/toy")) == result.tenants[0].drops


# -------------------------------------------------------------------- tracing


@pytest.fixture(scope="module")
def fleet_trace(toy_design, toy_tenants):
    trace = TraceRecorder()
    result = simulate_fleet(
        DeviceSpec(toy_design).replicated(3),
        toy_tenants,
        duration_cycles=30.0 * toy_design.epoch_cycles,
        seed=5,
        scenario="rolling-reboot",
        obs=ObsSpec(trace=trace),
    )
    return trace, result


class TestTrace:
    def test_chrome_timestamps_monotonic(self, fleet_trace):
        trace, _ = fleet_trace
        events = trace.to_chrome()["traceEvents"]
        stamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)

    def test_async_spans_open_before_close(self, fleet_trace):
        trace, _ = fleet_trace
        events = trace.to_chrome()["traceEvents"]
        opened = set()
        closes = 0
        for event in events:
            if event["ph"] == "b":
                assert event["id"] not in opened
                opened.add(event["id"])
            elif event["ph"] == "e":
                assert event["id"] in opened
                closes += 1
        # Requests still queued or in-pipeline when a non-drained run
        # hits the horizon legitimately leave their spans open.
        assert 0 < closes <= len(opened)

    def test_incident_spans_nest_per_track(self, fleet_trace):
        trace, result = fleet_trace
        assert result.incidents  # the drill actually fired
        events = trace.to_chrome()["traceEvents"]
        depth: dict = {}
        for event in events:
            if event.get("cat") != "incident":
                continue
            tid = event["tid"]
            if event["ph"] == "B":
                depth[tid] = depth.get(tid, 0) + 1
                assert depth[tid] == 1  # union semantics: no overlap
            elif event["ph"] == "E":
                depth[tid] -= 1
                assert depth[tid] == 0
        assert depth and all(d == 0 for d in depth.values())

    def test_jsonl_export(self, fleet_trace, tmp_path):
        trace, _ = fleet_trace
        path = tmp_path / "trace.jsonl"
        trace.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines
        for line in lines:
            event = json.loads(line)
            assert event["ph"] != "M"  # metadata is chrome-only

    def test_chrome_file_loads(self, fleet_trace, tmp_path):
        trace, _ = fleet_trace
        path = tmp_path / "trace.json"
        trace.write_chrome(str(path))
        record = json.loads(path.read_text())
        assert record["traceEvents"]
        assert any(e["ph"] == "M" for e in record["traceEvents"])


# -------------------------------------------------------------- serialization


class TestSerialization:
    def test_plain_record_has_no_timeseries_key(self, toy_design, toy_tenants):
        result = simulate_traffic(
            toy_design, toy_tenants, **serve_kwargs(toy_design)
        )
        assert "timeseries" not in serve_result_to_dict(result)

    def test_legacy_fleet_json_round_trips(self):
        # A pre-observability record (no timeseries key) must load and
        # re-serialize unchanged.
        path = os.path.join(DATA_DIR, "sample_fleet_run.json")
        with open(path) as handle:
            record = json.load(handle)
        legacy = dict(record)
        legacy.pop("timeseries", None)
        result = fleet_result_from_dict(legacy)
        assert result.timeseries is None
        rewritten = json.loads(json.dumps(fleet_result_to_dict(result)))
        assert rewritten == legacy

    def test_timeseries_round_trip(self, toy_design, toy_tenants):
        result = simulate_traffic(
            toy_design,
            toy_tenants,
            obs=ObsSpec(timeseries=True, windows=8),
            **serve_kwargs(toy_design),
        )
        record = json.loads(json.dumps(serve_result_to_dict(result)))
        loaded = serve_result_from_dict(record)
        assert loaded.timeseries == result.timeseries

    def test_timeseries_dict_round_trip(self):
        ts = TimeSeries(
            window_cycles=10.0,
            times=(10.0, 20.0),
            series={"q": (1.0, None)},
        )
        assert timeseries_from_dict(timeseries_to_dict(ts)) == ts
        assert timeseries_from_dict(None) is None

    def test_sample_run_loads_with_timeseries(self):
        path = os.path.join(DATA_DIR, "sample_fleet_run.json")
        with open(path) as handle:
            result = fleet_result_from_dict(json.load(handle))
        assert result.timeseries is not None
        assert len(result.timeseries.times) == 16
        assert result.scenario == "rolling-reboot"
