"""End-to-end integration: optimize -> serialize -> simulate -> lower.

Walks the full pipeline for a matrix of scenarios, checking the pieces
agree with each other (not just each in isolation): the serialized
design reloads bit-identically, the discrete-event simulator reproduces
the analytic epoch, the schedule covers every layer exactly once per
steady-state epoch, and the HLS manifest describes the same design.
"""

import pytest

from repro.core.datatypes import DataType
from repro.core.schedule import build_schedule
from repro.core.serialize import design_from_dict, design_to_dict
from repro.fpga.parts import budget_for
from repro.hls import generate_system, implement_design, template_parameters
from repro.networks import get_network
from repro.opt import optimize_multi_clp
from repro.sim import simulate_system

pytestmark = pytest.mark.slow  # optimizer end-to-end matrix

SCENARIOS = [
    ("alexnet", "485t", "float32"),
    ("alexnet", "690t", "fixed16"),
    ("squeezenet", "485t", "fixed16"),
    ("vggnet-e", "690t", "float32"),
    ("googlenet", "485t", "float32"),
]


@pytest.fixture(scope="module", params=SCENARIOS, ids=lambda s: "-".join(s))
def pipeline(request):
    network_name, part, dtype_name = request.param
    network = get_network(network_name)
    dtype = DataType.from_name(dtype_name)
    budget = budget_for(part)
    design = optimize_multi_clp(network, budget, dtype)
    return network, budget, design


class TestFullPipeline:
    def test_design_fits_budget(self, pipeline):
        _, budget, design = pipeline
        assert design.fits(budget)

    def test_serialization_round_trip(self, pipeline):
        _, _, design = pipeline
        restored = design_from_dict(design_to_dict(design))
        assert restored.epoch_cycles == design.epoch_cycles
        assert restored.dsp == design.dsp
        assert restored.bram == design.bram
        assert restored.assignment() == design.assignment()

    def test_simulation_confirms_epoch(self, pipeline):
        _, _, design = pipeline
        result = simulate_system(design)
        assert result.epoch_cycles == design.epoch_cycles

    def test_schedule_covers_network_each_steady_epoch(self, pipeline):
        network, _, design = pipeline
        # Layer-pipelined mode reaches steady state after one epoch per
        # layer position, regardless of adjacency.
        depth = len(network.layers)
        schedule = build_schedule(design, epochs=depth + 1)
        steady = schedule.entries_for_epoch(depth)
        assert sorted(e.layer_name for e in steady) == sorted(
            layer.name for layer in network
        )

    def test_hls_manifest_matches_design(self, pipeline):
        _, _, design = pipeline
        manifest = generate_system(design)
        for index, clp in enumerate(design.clps):
            params = template_parameters(clp)
            assert f"clp{index}: Tn={params.tn} Tm={params.tm}" in manifest

    def test_virtual_toolflow_consistent(self, pipeline):
        _, _, design = pipeline
        impl = implement_design(design)
        assert impl.dsp_model == design.dsp
        assert impl.bram_model == design.bram
        assert impl.dsp_impl > impl.dsp_model
        assert impl.power_watts > 0

    def test_utilization_identity(self, pipeline):
        network, _, design = pipeline
        assert design.arithmetic_utilization == pytest.approx(
            network.total_macs / (design.epoch_cycles * design.total_units)
        )

    def test_epoch_equals_bottleneck(self, pipeline):
        _, _, design = pipeline
        assert design.epoch_cycles == max(
            clp.total_cycles for clp in design.clps
        )
