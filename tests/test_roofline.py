"""Tests for the roofline / CTC analysis."""

import pytest

from repro.analysis.roofline import roofline_point, roofline_table
from repro.analysis.tables import design_for


@pytest.fixture(scope="module")
def single():
    return design_for("alexnet", "485t", "float32", single=True)


@pytest.fixture(scope="module")
def multi():
    return design_for("alexnet", "485t", "float32", single=False)


class TestRooflinePoint:
    def test_achieved_below_peak(self, single):
        point = roofline_point(single, 100.0)
        assert point.achieved_gops <= point.peak_gops * 1.001

    def test_utilization_matches_design(self, single):
        point = roofline_point(single, 100.0)
        assert point.utilization == pytest.approx(
            single.arithmetic_utilization, rel=0.01
        )

    def test_alexnet_single_matches_zhang_scale(self, single):
        # Zhang FPGA'15's 485T design achieves ~61.6 GFLOP/s at ~50 op/B.
        point = roofline_point(single, 100.0)
        assert point.achieved_gops == pytest.approx(66.4, rel=0.05)
        assert 30 <= point.ctc_ops_per_byte <= 80

    def test_multi_clp_raises_achieved_not_peak(self, single, multi):
        p_single = roofline_point(single, 100.0)
        p_multi = roofline_point(multi, 100.0)
        # Same arithmetic (same DSP budget) -> same peak; Multi-CLP
        # closes the gap to it.
        assert p_multi.peak_gops == pytest.approx(p_single.peak_gops)
        assert p_multi.achieved_gops > p_single.achieved_gops

    def test_bound_classification(self, single):
        generous = roofline_point(single, 100.0, bandwidth_gbps=100.0)
        assert generous.bound == "compute"
        starved = roofline_point(single, 100.0, bandwidth_gbps=0.1)
        assert starved.bound == "memory"

    def test_default_bandwidth_is_requirement(self, single):
        point = roofline_point(single, 100.0)
        assert point.bandwidth_gbps == pytest.approx(
            single.required_bandwidth_gbps(100.0)
        )


class TestRooflineTable:
    def test_table_contains_all_labels(self, single, multi):
        table = roofline_table(
            [
                roofline_point(single, 100.0, label="S-CLP"),
                roofline_point(multi, 100.0, label="M-CLP"),
            ]
        )
        assert "S-CLP" in table and "M-CLP" in table
        assert "bound" in table
