"""Tests for OptimizeCompute (SegmentSearch)."""

import pytest

from repro.core.cost_model import layer_cycles
from repro.core.datatypes import FIXED16, FLOAT32
from repro.core.layer import ConvLayer
from repro.networks import alexnet
from repro.opt.compute import SegmentSearch
from repro.opt.heuristics import order_by_nm_distance


@pytest.fixture(scope="module")
def alexnet_search():
    ordered = order_by_nm_distance(list(alexnet()))
    return SegmentSearch(ordered, FLOAT32, dsp_budget=2240)


class TestFrontiers:
    def test_full_budget_single_segment_matches_zhang(self, alexnet_search):
        # The whole-network single segment with the full 485T budget must
        # reach the Zhang FPGA'15 optimum of ~2,006k cycles.
        count = len(alexnet_search.layers)
        assert alexnet_search.min_segment_cycles(0, count) == 2005892

    def test_min_dsp_monotone_in_target(self, alexnet_search):
        count = len(alexnet_search.layers)
        tight = alexnet_search.min_dsp_for(0, count, 2005892)
        loose = alexnet_search.min_dsp_for(0, count, 4000000)
        assert tight is not None and loose is not None
        assert loose <= tight

    def test_unreachable_target_returns_none(self, alexnet_search):
        count = len(alexnet_search.layers)
        assert alexnet_search.min_dsp_for(0, count, 100) is None

    def test_single_layer_segment(self, alexnet_search):
        layer = alexnet_search.layers[0]
        best = alexnet_search.min_segment_cycles(0, 1)
        # Must equal the exhaustive minimum over affordable grids.
        exhaustive = min(
            layer_cycles(layer, tn, tm)
            for tn in range(1, 65)
            for tm in range(1, min(512, 448 // tn) + 1)
        )
        assert best == exhaustive


class TestBestGrid:
    def test_finds_zhang_grid(self, alexnet_search):
        count = len(alexnet_search.layers)
        tn, tm, cycles, dsp = alexnet_search.best_grid(0, count, 2240)
        assert (tn, tm) == (7, 64)
        assert cycles == 2005892
        assert dsp == 2240

    def test_respects_cap(self, alexnet_search):
        tn, tm, _, dsp = alexnet_search.best_grid(0, 2, 500)
        assert dsp <= 500
        assert tn * tm * 5 == dsp

    def test_rejects_empty_cap(self, alexnet_search):
        with pytest.raises(ValueError):
            alexnet_search.best_grid(0, 1, 0)


class TestCandidates:
    def test_single_clp_candidate_at_relaxed_target(self, alexnet_search):
        candidates = alexnet_search.candidates(2005892, max_clps=1)
        assert len(candidates) == 1
        cand = candidates[0]
        assert cand.num_clps == 1
        assert cand.epoch_cycles <= 2005892

    def test_tight_target_returns_empty(self, alexnet_search):
        assert alexnet_search.candidates(1000, max_clps=6) == []

    def test_multi_clp_meets_target_single_cannot(self, alexnet_search):
        # AlexNet Multi-CLP reaches ~1.53M cycles on the 485T; a single
        # CLP cannot (its optimum is 2.0M).
        target = 1_560_000
        candidates = alexnet_search.candidates(target, max_clps=6)
        assert candidates, "multi-CLP should reach 1.56M cycles"
        assert all(c.num_clps >= 2 for c in candidates)
        for cand in candidates:
            assert cand.epoch_cycles <= target
            assert cand.total_dsp <= 2240

    def test_candidates_partition_all_layers(self, alexnet_search):
        candidates = alexnet_search.candidates(2_200_000, max_clps=4)
        expected = sorted(l.name for l in alexnet_search.layers)
        for cand in candidates:
            covered = sorted(
                l.name for clp in cand.clps for l in clp.layers
            )
            assert covered == expected

    def test_segments_are_contiguous_in_order(self, alexnet_search):
        candidates = alexnet_search.candidates(1_600_000, max_clps=6)
        order = [l.name for l in alexnet_search.layers]
        for cand in candidates:
            cursor = 0
            for clp in cand.clps:
                names = [l.name for l in clp.layers]
                assert names == order[cursor:cursor + len(names)]
                cursor += len(names)

    def test_rejects_bad_max_clps(self, alexnet_search):
        with pytest.raises(ValueError):
            alexnet_search.candidates(2_000_000, max_clps=0)

    def test_clp_cycle_counts_are_consistent(self, alexnet_search):
        for cand in alexnet_search.candidates(1_600_000, max_clps=6):
            for clp in cand.clps:
                expected = sum(
                    layer_cycles(layer, clp.tn, clp.tm) for layer in clp.layers
                )
                assert clp.cycles == expected


class TestFixedPoint:
    def test_fixed_budget_uses_one_dsp_per_unit(self):
        layers = [ConvLayer("l", n=64, m=64, r=28, c=28, k=3)]
        search = SegmentSearch(layers, FIXED16, dsp_budget=4096)
        tn, tm, _, dsp = search.best_grid(0, 1, 4096)
        assert dsp == tn * tm
        assert tn * tm <= 4096

    def test_tiny_budget_rejected_only_when_no_unit_fits(self):
        layers = [ConvLayer("l", n=4, m=4, r=4, c=4, k=1)]
        with pytest.raises(ValueError):
            SegmentSearch(layers, FLOAT32, dsp_budget=4)  # < 5 per unit
        search = SegmentSearch(layers, FLOAT32, dsp_budget=5)
        assert search.grid_count == 1
