"""Tests for the design-space exploration engine (repro.dse)."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.dse import (
    DesignPoint,
    ResultStore,
    SweepResult,
    SweepRunner,
    SweepSpec,
    best_per_group,
    frontier_table,
    pareto_frontier,
    point_key,
    run_sweep,
    summary_table,
)

# Small budgets keep each optimizer call fast; alexnet float32 at these
# sizes solves in well under a second.
SMALL_BUDGETS = ((200, 160), (500, 400))


@pytest.fixture(scope="module")
def small_outcome():
    spec = SweepSpec(
        networks=("alexnet",),
        budgets=SMALL_BUDGETS,
        modes=("single", "multi"),
    )
    return run_sweep(spec, workers=1)


# ================================================================== DesignPoint
class TestDesignPoint:
    def test_build_from_part_resolves_budget(self):
        point = DesignPoint.build("alexnet", part="485t")
        assert point.part == "485t"
        assert (point.dsp, point.bram18k) == (2240, 1648)  # 80% of the 485T

    def test_build_synthetic(self):
        point = DesignPoint.build("alexnet", dsp=1000, bram18k=800)
        assert point.part is None
        assert point.budget_label == "1000dsp/800bram"

    def test_build_rejects_ambiguous_budget(self):
        with pytest.raises(ValueError):
            DesignPoint.build("alexnet", part="485t", dsp=1000, bram18k=800)
        with pytest.raises(ValueError):
            DesignPoint.build("alexnet", dsp=1000)

    def test_validates_eagerly(self):
        with pytest.raises(ValueError):
            DesignPoint(network="alexnet", dsp=0, bram18k=16)
        with pytest.raises(ValueError):
            DesignPoint(network="alexnet", dsp=16, bram18k=16, dtype="float99")

    def test_dict_round_trip(self):
        point = DesignPoint.build(
            "squeezenet", part="690t", dtype="fixed16",
            bandwidth_gbps=12.5, frequency_mhz=170.0, single=True,
        )
        assert DesignPoint.from_dict(point.to_dict()) == point

    def test_key_depends_on_inputs(self):
        base = DesignPoint.build("alexnet", dsp=1000, bram18k=800)
        assert base.key() == DesignPoint.build("alexnet", dsp=1000, bram18k=800).key()
        assert base.key() != DesignPoint.build("alexnet", dsp=1001, bram18k=800).key()
        assert base.key() != DesignPoint.build(
            "alexnet", dsp=1000, bram18k=800, single=True
        ).key()

    def test_key_canonicalizes_numeric_types(self):
        """int-typed numerics must hash like their float round-trip."""
        as_int = DesignPoint.build("alexnet", dsp=1000, bram18k=800,
                                   frequency_mhz=170, bandwidth_gbps=10)
        as_float = DesignPoint.build("alexnet", dsp=1000, bram18k=800,
                                     frequency_mhz=170.0, bandwidth_gbps=10.0)
        assert as_int.key() == as_float.key()
        assert DesignPoint.from_dict(as_int.to_dict()).key() == as_int.key()

    def test_int_frequency_point_runs(self):
        """Regression: an int-typed axis used to desync the store key."""
        point = DesignPoint.build("alexnet", dsp=200, bram18k=160,
                                  frequency_mhz=170)
        outcome = run_sweep([point], workers=1)
        assert outcome.results[0].ok

    def test_single_canonicalizes_max_clps(self):
        """Same single-CLP scenario -> same key, whatever cap it came with."""
        capped = DesignPoint.build("alexnet", dsp=500, bram18k=400,
                                   single=True, max_clps=6)
        assert capped.max_clps == 1
        assert capped.key() == DesignPoint.build(
            "alexnet", dsp=500, bram18k=400, single=True, max_clps=1
        ).key()

    def test_rejects_unknown_ordering(self):
        with pytest.raises(ValueError):
            DesignPoint.build("alexnet", dsp=200, bram18k=160,
                              ordering="compute-to-datas")

    def test_key_stable_across_processes(self):
        """The store key must not depend on PYTHONHASHSEED or process."""
        point = DesignPoint.build(
            "alexnet", part="485t", dtype="fixed16", bandwidth_gbps=10.0
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "from repro.dse import DesignPoint; "
            "print(DesignPoint.build('alexnet', part='485t', dtype='fixed16', "
            "bandwidth_gbps=10.0).key())"
        )
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="12345")
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True, env=env,
        ).stdout.strip()
        assert output == point.key()
        assert output == point_key(point.to_dict())


# ==================================================================== SweepSpec
class TestSweepSpec:
    def test_expansion_is_full_cross_product(self):
        spec = SweepSpec(
            networks=("alexnet", "squeezenet"),
            parts=("485t", "690t"),
            dtypes=("float32", "fixed16"),
            modes=("multi",),
        )
        points = spec.expand()
        assert len(points) == 8
        assert len({p.key() for p in points}) == 8

    def test_single_mode_collapses_max_clps_axis(self):
        spec = SweepSpec(
            networks=("alexnet",),
            budgets=((500, 400),),
            modes=("single", "multi"),
            max_clps=(2, 4, 6),
        )
        points = spec.expand()
        # 1 single point (cap canonicalized to 1) + 3 multi points.
        assert len(points) == 4
        singles = [p for p in points if p.single]
        assert len(singles) == 1 and singles[0].max_clps == 1

    def test_expansion_deterministic(self):
        spec = SweepSpec(networks=("alexnet",), parts=("485t", "690t"),
                         modes=("single", "multi"))
        assert [p.key() for p in spec.expand()] == [p.key() for p in spec.expand()]

    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError):
            SweepSpec(networks=())
        with pytest.raises(ValueError):
            SweepSpec(networks=("alexnet",))  # no parts and no budgets
        with pytest.raises(ValueError):
            SweepSpec(networks=("alexnet",), parts=("485t",), modes=("dual",))
        with pytest.raises(ValueError):
            SweepSpec(networks=("nosuchnet",), parts=("485t",))
        with pytest.raises(ValueError):
            SweepSpec(networks=("alexnet",), parts=("485t",),
                      orderings=("compute-to-datas",))
        with pytest.raises(ValueError):
            SweepSpec(networks=("alexnet",), parts=("bogus-part",))
        with pytest.raises(ValueError):
            SweepSpec(networks=("alexnet",), budgets=((500, 0),))
        with pytest.raises(ValueError):
            SweepSpec(networks=("alexnet",), parts=("485t",), max_clps=(0,))
        with pytest.raises(TypeError):
            SweepSpec(networks="alexnet", parts=("485t",))


# ================================================================== ResultStore
class TestResultStore:
    def test_round_trip_byte_for_byte(self, small_outcome, tmp_path):
        """Records survive the store byte-for-byte (canonical JSON)."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_all(small_outcome.results)

        lines = path.read_text().splitlines()
        assert len(lines) == len(small_outcome.results)
        for line, result in zip(lines, small_outcome.results):
            reloaded = SweepResult.from_dict(json.loads(line))
            assert json.dumps(reloaded.to_dict()) == json.dumps(result.to_dict())
            assert line == json.dumps(result.to_dict())

        fresh = ResultStore(path)
        assert len(fresh) == len(small_outcome.results)
        for result in small_outcome.results:
            stored = fresh.get(result.point.key())
            assert stored is not None
            assert stored.to_dict() == result.to_dict()

    def test_memory_store_has_no_file(self, small_outcome):
        store = ResultStore()
        store.put(small_outcome.results[0])
        assert len(store) == 1 and store.path is None

    def test_tolerates_torn_final_line(self, small_outcome, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_all(small_outcome.results)
        with path.open("a") as handle:
            handle.write('{"key": "tr')  # interrupted mid-write
        reloaded = ResultStore(path)
        assert len(reloaded) == len(small_outcome.results)
        assert reloaded.skipped_lines == 1

    def test_skips_and_counts_corrupt_lines(self, small_outcome, tmp_path):
        """A mid-write kill must leave every intact line usable.

        Regression: malformed-but-parseable JSON lines (foreign schema,
        missing fields, wrong field types) used to crash the load and
        take the whole cache with them; now each bad shape is skipped
        and counted, and records *after* the bad line still load.
        """
        path = tmp_path / "store.jsonl"
        good = small_outcome.results
        with path.open("w") as handle:
            handle.write(json.dumps(good[0].to_dict()) + "\n")
            handle.write('{"key": "truncated mid-wri\n')  # torn JSON
            handle.write('{"schema": 999, "ok": true}\n')  # foreign schema
            handle.write('{"not-a": "sweep record"}\n')  # missing fields
            handle.write('{"schema": 1, "ok": true, "point": 42}\n')  # bad type
            handle.write("\n")  # blank lines are not corruption
            for result in good[1:]:
                handle.write(json.dumps(result.to_dict()) + "\n")
        store = ResultStore(path)
        assert len(store) == len(good)
        assert store.skipped_lines == 4
        for result in good:
            assert store.get(result.point.key()) is not None
        assert "4 corrupt line(s) skipped" in store.describe()

    def test_clean_store_reports_no_skips(self, small_outcome, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put_all(small_outcome.results)
        fresh = ResultStore(path)
        assert fresh.skipped_lines == 0
        assert "skipped" not in fresh.describe()

    def test_records_carry_schema_version(self, small_outcome):
        record = small_outcome.results[0].to_dict()
        assert record["schema"] == 1
        record["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            SweepResult.from_dict(record)

    def test_duplicate_keys_last_wins(self, small_outcome, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        first = small_outcome.results[0]
        store.put(first)
        store.put(first)
        assert len(ResultStore(path)) == 1


# ================================================================== SweepRunner
class TestSweepRunner:
    def test_results_in_spec_order(self, small_outcome):
        spec = SweepSpec(networks=("alexnet",), budgets=SMALL_BUDGETS,
                         modes=("single", "multi"))
        expected = [p.key() for p in spec.expand()]
        assert [r.point.key() for r in small_outcome.results] == expected

    def test_rerun_is_all_cache_hits(self, tmp_path):
        spec = SweepSpec(networks=("alexnet",), budgets=(SMALL_BUDGETS[0],),
                         modes=("single", "multi"))
        path = tmp_path / "store.jsonl"
        cold = run_sweep(spec, store=path)
        assert (cold.computed, cold.cached) == (2, 0)
        warm = run_sweep(spec, store=path)
        assert (warm.computed, warm.cached) == (0, 2)
        assert warm.cache_hit_rate == 1.0
        assert [r.to_dict() for r in warm.results] == [
            r.to_dict() for r in cold.results
        ]

    def test_growing_a_sweep_only_computes_new_points(self, tmp_path):
        path = tmp_path / "store.jsonl"
        run_sweep(
            SweepSpec(networks=("alexnet",), budgets=(SMALL_BUDGETS[0],)),
            store=path,
        )
        grown = run_sweep(
            SweepSpec(networks=("alexnet",), budgets=SMALL_BUDGETS),
            store=path,
        )
        assert (grown.computed, grown.cached) == (1, 1)

    def test_duplicate_points_not_reported_as_cache_hits(self):
        point = DesignPoint.build("alexnet", dsp=200, bram18k=160)
        outcome = run_sweep([point, point], workers=1)
        # One optimizer solve, no pre-existing cache entries.
        assert (outcome.total, outcome.computed, outcome.cached) == (2, 1, 0)
        assert outcome.results[0].to_dict() == outcome.results[1].to_dict()

    def test_pool_matches_serial(self):
        spec = SweepSpec(networks=("alexnet",), budgets=SMALL_BUDGETS,
                         modes=("single", "multi"))
        serial = run_sweep(spec, workers=1)
        pooled = run_sweep(spec, workers=2)
        assert pooled.workers == 2

        def strip(result):
            record = result.to_dict()
            record.pop("elapsed_s")
            return record

        assert [strip(r) for r in serial.results] == [
            strip(r) for r in pooled.results
        ]

    @pytest.mark.slow
    def test_infeasible_point_is_captured_not_fatal(self):
        points = [
            DesignPoint.build("alexnet", dsp=500, bram18k=2),   # BRAM-starved
            DesignPoint.build("alexnet", dsp=500, bram18k=400),
        ]
        outcome = run_sweep(points, workers=1)
        failed, solved = outcome.results
        assert not failed.ok
        assert failed.error_type == "OptimizationError"
        assert "500 DSP" in failed.error_message
        assert solved.ok
        assert outcome.infeasible == 1
        with pytest.raises(ValueError):
            failed.design(repro.networks.get_network("alexnet"))

    def test_progress_callback_sees_each_computed_point(self):
        spec = SweepSpec(networks=("alexnet",), budgets=(SMALL_BUDGETS[0],),
                         modes=("single", "multi"))
        seen = []
        run_sweep(spec, progress=seen.append)
        assert len(seen) == 2

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_design_reconstruction_matches_direct_optimization(
        self, small_outcome
    ):
        network = repro.networks.get_network("alexnet")
        result = next(r for r in small_outcome.results
                      if r.ok and not r.point.single)
        design = result.design(network)
        direct = repro.optimize_multi_clp(
            network, result.point.budget(), repro.FLOAT32
        )
        assert design.epoch_cycles == direct.epoch_cycles
        assert design.dsp == direct.dsp
        assert design.bram == direct.bram
        assert result.metrics["epoch_cycles"] == direct.epoch_cycles


# ===================================================================== analysis
def _fake_result(network="alexnet", throughput=1.0, dsp=100, **point_kwargs):
    point = DesignPoint.build(network, dsp=dsp, bram18k=max(16, dsp), **point_kwargs)
    return SweepResult(
        point=point,
        ok=True,
        metrics={
            "epoch_cycles": 1000,
            "throughput_images_per_s": throughput,
            "arithmetic_utilization": 0.9,
            "dsp": dsp,
            "bram": max(16, dsp),
            "num_clps": 2,
            "required_bandwidth_gbps": 1.0,
            "gflops": 1.0,
        },
        clps=(),
    )


class TestAnalysis:
    def test_pareto_drops_dominated_points(self):
        cheap_slow = _fake_result(throughput=10.0, dsp=100)
        costly_fast = _fake_result(throughput=30.0, dsp=300)
        dominated = _fake_result(throughput=5.0, dsp=200)  # worse on both
        frontier = pareto_frontier(
            [cheap_slow, dominated, costly_fast],
            maximize=("throughput",), minimize=("dsp",),
        )
        assert frontier == [cheap_slow, costly_fast]

    def test_missing_metric_named_in_error(self):
        result = _fake_result()
        del result.metrics["gflops"]
        with pytest.raises(ValueError, match="gflops"):
            pareto_frontier([result], maximize=("gflops",))

    def test_rejects_unknown_metric_names(self):
        result = _fake_result()
        with pytest.raises(ValueError, match="unknown metric"):
            pareto_frontier([result], maximize=("thruput",))
        with pytest.raises(ValueError, match="unknown metric"):
            best_per_group([result], key="speed")

    def test_pareto_ignores_infeasible(self):
        failed = SweepResult(
            point=DesignPoint.build("alexnet", dsp=100, bram18k=100),
            ok=False, error_type="OptimizationError", error_message="no fit",
        )
        assert pareto_frontier([failed]) == []

    def test_pareto_on_real_sweep_nonempty(self, small_outcome):
        frontier = pareto_frontier(small_outcome.results)
        assert frontier
        assert all(r.ok for r in frontier)

    def test_best_per_group(self):
        a_slow = _fake_result(throughput=10.0, dsp=100)
        a_fast = _fake_result(throughput=20.0, dsp=200)
        b = _fake_result(network="squeezenet", throughput=5.0, dsp=100)
        winners = best_per_group([a_slow, a_fast, b], by=("network",),
                                 key="throughput")
        assert winners[("alexnet",)] is a_fast
        assert winners[("squeezenet",)] is b

    def test_best_per_group_cost_metric_prefers_min(self):
        small = _fake_result(throughput=10.0, dsp=100)
        big = _fake_result(throughput=20.0, dsp=200)
        winners = best_per_group([small, big], by=("network",), key="dsp")
        assert winners[("alexnet",)] is small

    def test_tables_render(self, small_outcome):
        table = summary_table(small_outcome.results)
        assert "alexnet" in table and "img/s" in table
        frontier = frontier_table(small_outcome.results)
        assert "Pareto frontier" in frontier and "ok" in frontier


# ========================================================================== CLI
class TestDseCli:
    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        captured = capsys.readouterr()
        assert code == 0
        return captured.out

    def test_sweep_then_cached_rerun(self, capsys, tmp_path):
        store = str(tmp_path / "cli.jsonl")
        argv = (
            "dse", "sweep", "--networks", "alexnet",
            "--budgets", "200:160", "500:400",
            "--modes", "single", "multi", "--store", store,
        )
        out = self.run(capsys, *argv)
        assert "4 computed, 0 cached" in out
        assert "alexnet" in out
        out = self.run(capsys, *argv)
        assert "0 computed, 4 cached (100% hits)" in out

    def test_frontier_and_status(self, capsys, tmp_path):
        store = str(tmp_path / "cli.jsonl")
        self.run(capsys, "dse", "sweep", "--networks", "alexnet",
                 "--budgets", "500:400", "--store", store, "--quiet")
        out = self.run(capsys, "dse", "frontier", "--store", store)
        assert "Pareto frontier" in out and "alexnet" in out
        out = self.run(capsys, "dse", "status", "--store", store)
        assert "1 points" in out and "1 solved" in out

    def test_frontier_on_missing_store(self, capsys, tmp_path):
        out = self.run(capsys, "dse", "frontier", "--store",
                       str(tmp_path / "nope.jsonl"))
        assert "empty" in out

    def test_bad_budget_syntax(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["dse", "sweep", "--budgets", "500x400",
                  "--store", str(tmp_path / "x.jsonl")])
