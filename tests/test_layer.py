"""Unit tests for the ConvLayer description."""

import pytest

from repro.core.layer import ConvLayer, input_extent


def make_layer(**overrides):
    base = dict(name="conv", n=48, m=128, r=27, c=27, k=5, s=1)
    base.update(overrides)
    return ConvLayer(**base)


class TestInputExtent:
    def test_stride_one(self):
        assert input_extent(13, 1, 3) == 15

    def test_strided(self):
        assert input_extent(8, 4, 11) == 39

    def test_single_output(self):
        assert input_extent(1, 4, 11) == 11

    def test_rejects_nonpositive_tile(self):
        with pytest.raises(ValueError):
            input_extent(0, 1, 3)


class TestConvLayerSizes:
    def test_input_rows_cols(self):
        layer = make_layer(r=55, c=55, k=11, s=4)
        assert layer.input_rows == 227
        assert layer.input_cols == 227

    def test_input_words(self):
        layer = make_layer(n=3, r=55, c=55, k=11, s=4)
        assert layer.input_words == 3 * 227 * 227

    def test_output_words(self):
        layer = make_layer(m=96, r=55, c=55)
        assert layer.output_words == 96 * 55 * 55

    def test_weight_words(self):
        layer = make_layer(n=48, m=128, k=5)
        assert layer.weight_words == 128 * 48 * 25

    def test_total_words_is_sum(self):
        layer = make_layer()
        assert layer.total_words == (
            layer.input_words + layer.output_words + layer.weight_words
        )


class TestConvLayerWork:
    def test_macs(self):
        layer = make_layer(n=3, m=48, r=55, c=55, k=11)
        assert layer.macs == 3 * 48 * 55 * 55 * 121

    def test_flops_twice_macs(self):
        layer = make_layer()
        assert layer.flops == 2 * layer.macs

    def test_compute_to_data_ratio(self):
        layer = make_layer()
        assert layer.compute_to_data_ratio == pytest.approx(
            layer.macs / layer.total_words
        )


class TestConvLayerValidation:
    @pytest.mark.parametrize("field", ["n", "m", "r", "c", "k", "s"])
    def test_rejects_nonpositive(self, field):
        with pytest.raises(ValueError):
            make_layer(**{field: 0})

    @pytest.mark.parametrize("field", ["n", "m", "r", "c", "k", "s"])
    def test_rejects_negative(self, field):
        with pytest.raises(ValueError):
            make_layer(**{field: -3})

    def test_rejects_float_dimension(self):
        with pytest.raises(ValueError):
            make_layer(n=3.5)

    def test_frozen(self):
        layer = make_layer()
        with pytest.raises(AttributeError):
            layer.n = 10


class TestConvLayerUtilities:
    def test_with_name(self):
        layer = make_layer()
        renamed = layer.with_name("other")
        assert renamed.name == "other"
        assert renamed.dims == layer.dims

    def test_split_outputs_halves_m(self):
        layer = make_layer(m=128)
        halves = list(layer.split_outputs(2))
        assert [h.m for h in halves] == [64, 64]
        assert [h.name for h in halves] == ["conva", "convb"]
        assert all(h.n == layer.n for h in halves)

    def test_split_outputs_rejects_uneven(self):
        layer = make_layer(m=10)
        with pytest.raises(ValueError):
            list(layer.split_outputs(3))

    def test_dims_tuple_order(self):
        layer = make_layer(n=1, m=2, r=3, c=4, k=5, s=6)
        # (N, M, R, C, K, S) -- but R >= 1 requires sensible values.
        assert layer.dims == (1, 2, 3, 4, 5, 6)

    def test_describe_mentions_name_and_dims(self):
        text = make_layer().describe()
        assert "conv" in text
        assert "N=48" in text

    def test_hashable(self):
        assert len({make_layer(), make_layer()}) == 1
