"""Tests for the arithmetic datatype model."""

import pytest

from repro.core.datatypes import FIXED16, FLOAT32, DataType


class TestFloat32:
    def test_word_bytes(self):
        assert FLOAT32.word_bytes == 4

    def test_dsp_per_mac_is_five(self):
        # Section 4.2: 2 DSP per multiplier + 3 per adder.
        assert FLOAT32.spec.dsp_per_multiplier == 2
        assert FLOAT32.spec.dsp_per_adder == 3
        assert FLOAT32.dsp_per_mac == 5

    def test_no_bram_packing(self):
        assert FLOAT32.words_per_bram_entry == 1


class TestFixed16:
    def test_word_bytes(self):
        assert FIXED16.word_bytes == 2

    def test_dsp_per_mac_is_one(self):
        # Section 4.2: one DSP slice provides both adder and multiplier.
        assert FIXED16.dsp_per_mac == 1

    def test_pairs_pack_into_bram(self):
        assert FIXED16.words_per_bram_entry == 2


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("float", FLOAT32),
            ("float32", FLOAT32),
            ("FP32", FLOAT32),
            ("fixed", FIXED16),
            ("Fixed16", FIXED16),
            ("int16", FIXED16),
        ],
    )
    def test_aliases(self, name, expected):
        assert DataType.from_name(name) is expected

    def test_unknown(self):
        with pytest.raises(ValueError):
            DataType.from_name("bfloat16")

    def test_labels(self):
        assert FLOAT32.label == "float32"
        assert FIXED16.label == "fixed16"
