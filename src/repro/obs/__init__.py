"""Observability: run telemetry, event tracing, and profiling hooks.

Every simulation in this repo reduces a run to end-of-run scalars; this
package adds the time dimension back, opt-in and zero-cost when off:

- :mod:`repro.obs.telemetry` — a zero-dependency :class:`MetricsRecorder`
  (counters, gauges, fixed-bucket histograms) sampled on a configurable
  window grid, reduced to an immutable :class:`TimeSeries` carried on
  ``ServeResult``/``FleetResult``.
- :mod:`repro.obs.trace` — structured span/event emission for the
  request lifecycle and incident windows, exportable as Chrome
  ``trace_event`` JSON (load it in ``chrome://tracing`` / Perfetto) or
  JSONL.

Both are driven through one :class:`ObsSpec` handed to
``simulate_traffic`` / ``ClusterSimulator.run``.  With the default
``ObsSpec()`` (or ``obs=None``) the simulators schedule no extra events
and take no extra branches that alter event ordering, so results stay
bit-identical to pre-observability runs — the differential tests pin
this.
"""

from .telemetry import (
    DEFAULT_WINDOWS,
    HistogramSummary,
    MetricsRecorder,
    ObsSpec,
    TimeSeries,
)
from .trace import TraceRecorder

__all__ = [
    "DEFAULT_WINDOWS",
    "HistogramSummary",
    "MetricsRecorder",
    "ObsSpec",
    "TimeSeries",
    "TraceRecorder",
]
