"""Structured span/event tracing for simulation runs.

The recorder mirrors the simulators' FIFO bookkeeping: each admitted
request opens an async span on arrival, moves from the recorder's
queued deque to its pipeline deque on dispatch, and closes on
completion (or on a drop/evacuation/board death).  Because the
per-(tenant, replica) deques evolve in lockstep with the simulator's
own queues, span identity never needs to be threaded through the event
loop — the oldest open span *is* the request being served.

Exports:

- Chrome ``trace_event`` JSON (:meth:`TraceRecorder.to_chrome`) —
  async ``b``/``e`` spans per request (async, because a tenant's
  overlapping in-flight requests would break synchronous ``B``/``E``
  stack nesting), ``B``/``E`` duration events for incident windows on
  each replica's track, and ``i`` instants for drops, dispatches, and
  scale steps.  Load the file in ``chrome://tracing`` or Perfetto.
- JSONL (:meth:`TraceRecorder.write_jsonl`) — the same events, one
  JSON object per line, for ad-hoc grepping.

Timestamps are recorded in cycles and converted to microseconds at
export using the run's clock frequency.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["TraceRecorder"]

#: (tenant, replica-index) — replica is None for fleet-level events.
_Key = Tuple[str, Optional[int]]


class TraceRecorder:
    """Collects request-lifecycle spans and incident events from a run."""

    def __init__(self) -> None:
        #: Raw events: ph/name/cat/ts(cycles)/track/id/args.
        self.events: List[Dict[str, Any]] = []
        self._ids = itertools.count(1)
        self._queued: Dict[_Key, Deque[int]] = {}
        self._pipeline: Dict[_Key, Deque[int]] = {}

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------- low level
    def _track(self, tenant: str, replica: Optional[int]) -> str:
        return tenant if replica is None else f"{tenant}@r{replica}"

    def _emit(
        self,
        ph: str,
        name: str,
        ts: float,
        track: str,
        *,
        cat: str = "request",
        span_id: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "ph": ph,
            "name": name,
            "cat": cat,
            "ts": ts,
            "track": track,
        }
        if span_id is not None:
            event["id"] = span_id
        if args:
            event["args"] = args
        self.events.append(event)

    def _open(self, key: _Key, ts: float, args: Dict[str, Any]) -> int:
        span_id = next(self._ids)
        self._queued.setdefault(key, deque()).append(span_id)
        self._emit(
            "b", "request", ts, self._track(*key), span_id=span_id, args=args
        )
        return span_id

    def _close_queued(self, key: _Key, ts: float, args: Dict[str, Any]) -> None:
        span_id = self._queued[key].popleft()
        self._emit(
            "e", "request", ts, self._track(*key), span_id=span_id, args=args
        )

    # ------------------------------------------------------ request lifecycle
    def request_arrived(
        self,
        tenant: str,
        replica: Optional[int],
        now: float,
        *,
        dropped: bool = False,
        policy: str = "drop-tail",
    ) -> None:
        """An arrival landed on a replica's queue (or was shed).

        ``dropped`` mirrors the simulator's queue-full outcome: under
        drop-tail the newcomer never opens a span; under drop-head the
        *oldest waiter's* span closes and the newcomer opens one.
        """
        key = (tenant, replica)
        if dropped and policy == "drop-tail":
            self._emit(
                "i", "drop", now, self._track(*key),
                cat="queue", args={"policy": policy},
            )
            return
        if dropped:
            self._close_queued(key, now, {"outcome": "dropped", "policy": policy})
        self._open(key, now, {"tenant": tenant})

    def request_dispatched(
        self, tenant: str, replica: Optional[int], now: float, arrival: float
    ) -> None:
        """The epoch boundary admitted the queue head into the pipeline."""
        key = (tenant, replica)
        span_id = self._queued[key].popleft()
        self._pipeline.setdefault(key, deque()).append(span_id)
        self._emit(
            "i", "dispatch", now, self._track(*key),
            cat="pipeline", args={"queue_wait_cycles": now - arrival},
        )

    def request_completed(
        self, tenant: str, replica: Optional[int], now: float, arrival: float
    ) -> None:
        key = (tenant, replica)
        span_id = self._pipeline[key].popleft()
        self._emit(
            "e", "request", now, self._track(*key),
            span_id=span_id, args={"latency_cycles": now - arrival},
        )

    def request_unroutable(self, tenant: str, now: float) -> None:
        """An arrival found no healthy replica anywhere in the fleet."""
        self._emit(
            "i", "unroutable", now, self._track(tenant, None),
            cat="fault",
        )

    # ------------------------------------------------------ overload control
    def request_rejected(
        self,
        tenant: str,
        replica: Optional[int],
        now: float,
        *,
        reason: str = "admission",
    ) -> None:
        """An arrival was turned away at admission (never queued).

        ``reason`` is ``"admission"`` (token bucket), ``"deadline"``
        (queue-deadline admission), or ``"brownout"`` (a shed class).
        """
        self._emit(
            "i", "reject", now, self._track(tenant, replica),
            cat="overload", args={"reason": reason},
        )

    def request_expired(
        self, tenant: str, replica: Optional[int], now: float
    ) -> None:
        """A queued request's deadline passed; it was shed at dispatch.

        Under non-FIFO disciplines span identity is approximate: the
        *oldest* open queued span is closed, which is exact for the
        expiry-prone head-of-line work EDF sheds.
        """
        self._close_queued(
            (tenant, replica), now, {"outcome": "expired"}
        )

    def request_retry(
        self,
        tenant: str,
        now: float,
        *,
        attempt: int,
        delay_cycles: float,
        reason: str = "",
    ) -> None:
        """A client scheduled a retry attempt after a backoff delay."""
        args: Dict[str, Any] = {
            "attempt": attempt, "delay_cycles": delay_cycles,
        }
        if reason:
            args["reason"] = reason
        self._emit(
            "i", "retry", now, self._track(tenant, None),
            cat="overload", args=args,
        )

    def request_hedged(self, tenant: str, now: float) -> None:
        """A hedge duplicate fired for a still-queued request."""
        self._emit(
            "i", "hedge", now, self._track(tenant, None), cat="overload"
        )

    def brownout_step(
        self, now: float, *, action: str, shed: List[int]
    ) -> None:
        """The brownout controller shed or restored a priority class."""
        self._emit(
            "i", "brownout", now, "brownout",
            cat="overload", args={"action": action, "shed": shed},
        )

    # ------------------------------------------------------ failure handling
    def pipeline_killed(
        self, tenant: str, replica: Optional[int], now: float
    ) -> None:
        """Close every in-flight span on a replica that just died."""
        key = (tenant, replica)
        for span_id in self._pipeline.get(key, ()):
            self._emit(
                "e", "request", now, self._track(*key),
                span_id=span_id, args={"outcome": "killed"},
            )
        self._pipeline.pop(key, None)

    def request_evacuated(
        self,
        tenant: str,
        replica: Optional[int],
        now: float,
        *,
        outcome: str,
        target: Optional[int] = None,
    ) -> None:
        """Close the oldest queued span on a dead replica.

        ``outcome`` is ``"requeued"`` (a span reopens on ``target``),
        ``"dropped"`` (the target's queue was full), or ``"lost"``.
        """
        key = (tenant, replica)
        self._close_queued(key, now, {"outcome": outcome, "target": target})
        if outcome == "requeued":
            self._open(
                (tenant, target), now, {"tenant": tenant, "requeued": True}
            )

    # ------------------------------------------------- timeouts & failover
    def _close_any(
        self, key: _Key, now: float, args: Dict[str, Any], *, phase: str
    ) -> None:
        """Close the oldest open span in ``phase`` (queue or pipeline).

        Span identity is approximate for mid-queue removals (the
        timeout sweep reaps by age, not position) — the oldest open
        span is the closest stand-in, same convention as
        :meth:`request_expired`.  Defensive: a missing span is skipped
        rather than corrupting the deque bookkeeping.
        """
        book = self._pipeline if phase == "pipeline" else self._queued
        spans = book.get(key)
        if not spans:
            return
        span_id = spans.popleft()
        self._emit(
            "e", "request", now, self._track(*key),
            span_id=span_id, args=args,
        )

    def request_timeout(
        self, tenant: str, replica: Optional[int], now: float
    ) -> None:
        """A queued request outlived its timeout with no failover left."""
        self._close_any(
            (tenant, replica), now, {"outcome": "timed_out"}, phase="queue"
        )

    def request_errored(
        self, tenant: str, replica: Optional[int], now: float
    ) -> None:
        """A flaky replica returned an error and the budget was spent."""
        self._close_any(
            (tenant, replica), now, {"outcome": "errored"}, phase="pipeline"
        )

    def request_failover(
        self,
        tenant: str,
        replica: Optional[int],
        now: float,
        *,
        target: Optional[int] = None,
        phase: str = "queue",
    ) -> None:
        """A timed-out/errored request re-dispatched to another replica."""
        self._close_any(
            (tenant, replica), now,
            {"outcome": "failed_over", "target": target}, phase=phase,
        )
        self._open(
            (tenant, target), now, {"tenant": tenant, "failover": True}
        )

    # ------------------------------------------------------ failure detection
    def replica_ejected(
        self, target: str, now: float, *, reason: str = ""
    ) -> None:
        """The failure detector pulled a replica out of routing."""
        args: Dict[str, Any] = {}
        if reason:
            args["reason"] = reason
        self._emit(
            "i", "ejected", now, target, cat="detector", args=args or None
        )

    def replica_readmitted(self, target: str, now: float) -> None:
        """An ejected replica passed probation and rejoined routing."""
        self._emit("i", "readmitted", now, target, cat="detector")

    def degradation_begin(
        self, target: str, now: float, *, mode: str, severity: float
    ) -> None:
        """A gray-failure window opened on a replica."""
        self._emit(
            "B", "gray", now, target, cat="incident",
            args={"mode": mode, "severity": severity},
        )

    def degradation_end(self, target: str, now: float, *, mode: str) -> None:
        self._emit(
            "E", "gray", now, target, cat="incident", args={"mode": mode}
        )

    # -------------------------------------------------------------- incidents
    def incident_begin(self, target: str, now: float, kind: str = "fault") -> None:
        self._emit("B", kind, now, target, cat="incident")

    def incident_end(self, target: str, now: float, kind: str = "fault") -> None:
        self._emit("E", kind, now, target, cat="incident")

    # ------------------------------------------------------------ scale steps
    def scale_step(
        self, now: float, *, replicas: int, action: str, reason: str = ""
    ) -> None:
        args: Dict[str, Any] = {"replicas": replicas, "action": action}
        if reason:
            args["reason"] = reason
        self._emit("i", "scale", now, "autoscaler", cat="scale", args=args)

    # ---------------------------------------------------------------- exports
    def to_chrome(self, frequency_mhz: float = 100.0) -> Dict[str, Any]:
        """The collected run as a Chrome ``trace_event`` JSON object."""
        tracks: Dict[str, int] = {}
        for event in self.events:
            tracks.setdefault(event["track"], len(tracks) + 1)
        trace_events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro simulation"},
            }
        ]
        for track, tid in tracks.items():
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        # Hooks fire in simulation-time order already; the stable sort is
        # belt and braces for consumers that require monotone timestamps.
        for event in sorted(self.events, key=lambda e: e["ts"]):
            record: Dict[str, Any] = {
                "ph": event["ph"],
                "name": event["name"],
                "cat": event["cat"],
                "ts": event["ts"] / frequency_mhz,  # cycles -> microseconds
                "pid": 0,
                "tid": tracks[event["track"]],
            }
            if "id" in event:
                record["id"] = event["id"]
            if event["ph"] == "i":
                record["s"] = "t"  # thread-scoped instant
            if "args" in event:
                record["args"] = event["args"]
            trace_events.append(record)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str, frequency_mhz: float = 100.0) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_chrome(frequency_mhz), handle)
            handle.write("\n")

    def write_jsonl(self, path: str, frequency_mhz: float = 100.0) -> None:
        """One event per line (the chrome records, minus the metadata)."""
        chrome = self.to_chrome(frequency_mhz)
        with open(path, "w") as handle:
            for event in chrome["traceEvents"]:
                if event["ph"] == "M":
                    continue
                handle.write(json.dumps(event))
                handle.write("\n")
