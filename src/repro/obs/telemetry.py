"""Zero-dependency run telemetry on a fixed window grid.

The recorder divides a run's horizon into ``ceil(horizon / window)``
windows and collects three kinds of signals against that grid:

- **gauges** — instantaneous values sampled at each window's end (queue
  depth, in-flight, healthy replicas).  Samplers fire on the grid
  whether or not any traffic arrived, so idle windows record explicit
  zeros rather than gaps.
- **counters** — monotone totals either sampled cumulatively at window
  ends (:meth:`MetricsRecorder.cumulative`, diffed into per-window
  increments at finalize) or bumped per event
  (:meth:`MetricsRecorder.count`).
- **windowed values** — quantities that only exist per window, like the
  windowed p99; ``None`` marks windows with no samples.

Plus run-wide **fixed-bucket histograms** (:meth:`MetricsRecorder.observe`)
for latency distributions.  Everything reduces to an immutable
:class:`TimeSeries` that serializes to plain JSON.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .trace import TraceRecorder

__all__ = [
    "DEFAULT_WINDOWS",
    "DEFAULT_LATENCY_BUCKETS",
    "HistogramSummary",
    "TimeSeries",
    "MetricsRecorder",
    "ObsSpec",
    "TenantGroupSampler",
    "BusySampler",
    "window_grid",
]

#: Default number of grid windows when no explicit window size is given.
DEFAULT_WINDOWS = 60

#: 1-2-5 ladder of latency bucket upper bounds, in cycles.  Fixed (not
#: data-dependent) so histograms from different runs share bucket edges
#: and can be summed.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    base * 10.0 ** exp for exp in range(3, 9) for base in (1.0, 2.0, 5.0)
)


@dataclass(frozen=True)
class HistogramSummary:
    """Counts against fixed bucket upper bounds (+inf bucket implied)."""

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]  # len(edges) + 1: one overflow bucket

    @property
    def total(self) -> int:
        return sum(self.counts)


@dataclass(frozen=True)
class TimeSeries:
    """A run's telemetry: named series sampled on one window grid.

    ``times`` are window *end* times in cycles (the last entry is the
    horizon, so the final window may be shorter than ``window_cycles``
    when the horizon is not a multiple of the window).  Counter series
    hold per-window increments; gauge series hold the value observed at
    the window's end; windowed series may contain ``None`` for windows
    without samples.
    """

    window_cycles: float
    times: Tuple[float, ...]
    series: Dict[str, Tuple[Optional[float], ...]]
    histograms: Dict[str, HistogramSummary] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.times)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self.series))

    def get(self, name: str) -> Tuple[Optional[float], ...]:
        if name not in self.series:
            raise KeyError(
                f"no series {name!r}; known: {list(self.names())}"
            )
        return self.series[name]

    def matching(self, prefix: str) -> Dict[str, Tuple[Optional[float], ...]]:
        """All series whose name starts with ``prefix`` (sorted by name)."""
        return {
            name: self.series[name]
            for name in self.names()
            if name.startswith(prefix)
        }


def window_grid(horizon_cycles: float, window_cycles: float) -> Tuple[float, ...]:
    """Window-end sample times covering ``[0, horizon]``.

    ``ceil(horizon / window)`` windows; the last end time is clamped to
    the horizon exactly.  A window larger than the horizon degenerates
    to a single window ending at the horizon.
    """
    if horizon_cycles <= 0:
        raise ValueError("horizon_cycles must be positive")
    if window_cycles <= 0:
        raise ValueError("window_cycles must be positive")
    count = max(1, math.ceil(horizon_cycles / window_cycles))
    return tuple(
        min((index + 1) * window_cycles, horizon_cycles)
        for index in range(count)
    )


class MetricsRecorder:
    """Collects gauges, counters, and histograms against a window grid."""

    def __init__(self, horizon_cycles: float, window_cycles: float):
        self.horizon_cycles = float(horizon_cycles)
        self.window_cycles = float(window_cycles)
        self.times = window_grid(horizon_cycles, window_cycles)
        self.num_windows = len(self.times)
        self._gauges: Dict[str, List[Optional[float]]] = {}
        self._windowed: Dict[str, List[Optional[float]]] = {}
        self._counts: Dict[str, List[float]] = {}
        self._cumulative: Dict[str, List[Optional[float]]] = {}
        self._histograms: Dict[str, Tuple[Tuple[float, ...], List[int]]] = {}

    # ------------------------------------------------------------------ grid
    def window_index(self, time: float) -> int:
        """The window containing ``time`` (clamped to the grid).

        Windows are start-inclusive: an event at exactly ``k * window``
        lands in window ``k``.  Times past the horizon (drain tails)
        clamp to the last window.
        """
        if time <= 0:
            return 0
        index = int(time / self.window_cycles)
        return min(index, self.num_windows - 1)

    def _blank(self) -> List[Optional[float]]:
        return [None] * self.num_windows

    # --------------------------------------------------------------- signals
    def gauge(self, name: str, window: int, value: float) -> None:
        """Record an instantaneous value observed at ``window``'s end."""
        self._gauges.setdefault(name, self._blank())[window] = float(value)

    def windowed(self, name: str, window: int, value: Optional[float]) -> None:
        """Record a per-window quantity (``None`` = no samples this window)."""
        slot = self._windowed.setdefault(name, self._blank())
        slot[window] = None if value is None else float(value)

    def count(self, name: str, time: float, amount: float = 1.0) -> None:
        """Bump a per-window counter at an event's timestamp."""
        slot = self._counts.setdefault(name, [0.0] * self.num_windows)
        slot[self.window_index(time)] += amount

    def cumulative(self, name: str, window: int, total: float) -> None:
        """Sample a monotone running total; finalize diffs consecutive
        samples into per-window increments."""
        self._cumulative.setdefault(name, self._blank())[window] = float(total)

    def observe(
        self,
        name: str,
        value: float,
        edges: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        """Add one sample to a run-wide fixed-bucket histogram."""
        if name not in self._histograms:
            self._histograms[name] = (edges, [0] * (len(edges) + 1))
        bucket_edges, counts = self._histograms[name]
        for index, edge in enumerate(bucket_edges):
            if value <= edge:
                counts[index] += 1
                return
        counts[-1] += 1

    # -------------------------------------------------------------- finalize
    def finalize(self) -> TimeSeries:
        """Reduce everything collected into an immutable :class:`TimeSeries`."""
        series: Dict[str, Tuple[Optional[float], ...]] = {}
        for name, values in self._gauges.items():
            series[name] = tuple(values)
        for name, values in self._windowed.items():
            series[name] = tuple(values)
        for name, values in self._counts.items():
            series[name] = tuple(values)
        for name, totals in self._cumulative.items():
            deltas: List[Optional[float]] = []
            previous = 0.0
            for total in totals:
                if total is None:
                    # A missed sample (should not happen with grid-driven
                    # samplers) carries the previous total forward.
                    deltas.append(None)
                    continue
                deltas.append(total - previous)
                previous = total
            series[name] = tuple(deltas)
        histograms = {
            name: HistogramSummary(edges=edges, counts=tuple(counts))
            for name, (edges, counts) in self._histograms.items()
        }
        return TimeSeries(
            window_cycles=self.window_cycles,
            times=self.times,
            series=series,
            histograms=histograms,
        )


class TenantGroupSampler:
    """Samples one tenant's state (possibly spread over replicas).

    ``states`` are ``TenantState``-shaped objects (duck-typed: ``queue``,
    ``pipeline``, ``arrivals``, ``completions``, ``drops``, ``lost``,
    ``latencies``); a fleet passes every replica's state for the tenant,
    a single-device run passes a list of one.  Gauges fire on every grid
    window regardless of traffic, so idle windows record explicit zeros.
    """

    def __init__(
        self,
        recorder: MetricsRecorder,
        name: str,
        states: "List[Any]",
        unroutable: "Optional[Callable[[], int]]" = None,
    ):
        self.recorder = recorder
        self.name = name
        self.states = list(states)
        self.unroutable = unroutable
        self._latency_marks = [0] * len(self.states)

    def sample(self, window: int, when: float) -> None:
        rec, name = self.recorder, self.name
        queued = sum(len(s.queue) for s in self.states)
        in_flight = queued + sum(s.pipeline for s in self.states)
        rec.gauge(f"queue_depth/{name}", window, queued)
        rec.gauge(f"in_flight/{name}", window, in_flight)
        extra = self.unroutable() if self.unroutable is not None else 0
        rec.cumulative(
            f"arrivals/{name}",
            window,
            sum(s.arrivals for s in self.states) + extra,
        )
        rec.cumulative(
            f"admissions/{name}",
            window,
            sum(s.completions + s.pipeline for s in self.states),
        )
        rec.cumulative(
            f"completions/{name}",
            window,
            sum(s.completions for s in self.states),
        )
        rec.cumulative(
            f"drops/{name}", window, sum(s.drops for s in self.states)
        )
        rec.cumulative(
            f"lost/{name}",
            window,
            sum(s.lost for s in self.states) + extra,
        )
        fresh: List[float] = []
        for index, state in enumerate(self.states):
            fresh.extend(state.latencies[self._latency_marks[index]:])
            self._latency_marks[index] = len(state.latencies)
        if fresh:
            ordered = sorted(fresh)
            rank = max(1, -(-len(ordered) * 99 // 100))  # nearest-rank p99
            rec.windowed(f"p99_cycles/{name}", window, ordered[rank - 1])
            for value in fresh:
                rec.observe(f"latency_cycles/{name}", value)
        else:
            rec.windowed(f"p99_cycles/{name}", window, None)


class BusySampler:
    """Windowed busy fractions from a live list of busy-cycle counters.

    ``busy`` is the simulator's mutable per-CLP accumulator; each sample
    diffs it against the previous window.  With ``aggregate="max"`` one
    series carries the epoch-limiting CLP's share (a replica's duty
    factor); otherwise each counter gets its own ``<prefix><i>`` series.
    Fractions clamp at 0 — a failure's admission-charge refund can pull
    a window's delta negative, which reads as an idle window.
    """

    def __init__(
        self,
        recorder: MetricsRecorder,
        prefix: str,
        busy: "List[float]",
        aggregate: str = "none",
    ):
        self.recorder = recorder
        self.prefix = prefix
        self.busy = busy
        self.aggregate = aggregate
        self._marks = [0.0] * len(busy)
        self._when = 0.0

    def sample(self, window: int, when: float) -> None:
        span = when - self._when
        fractions = []
        for index, total in enumerate(self.busy):
            delta = total - self._marks[index]
            self._marks[index] = total
            fractions.append(max(0.0, delta / span) if span > 0 else 0.0)
        self._when = when
        if self.aggregate == "max":
            self.recorder.windowed(
                self.prefix, window, max(fractions, default=0.0)
            )
        else:
            for index, fraction in enumerate(fractions):
                self.recorder.windowed(
                    f"{self.prefix}{index}", window, fraction
                )


@dataclass(frozen=True)
class ObsSpec:
    """What to observe during a simulation run.

    The default spec observes nothing and is equivalent to passing
    ``obs=None`` — simulators must stay bit-identical in that case.
    ``window_cycles=None`` derives a grid of ``windows`` equal windows
    from the run's horizon.
    """

    timeseries: bool = False
    window_cycles: Optional[float] = None
    windows: int = DEFAULT_WINDOWS
    trace: Optional[TraceRecorder] = None

    @property
    def active(self) -> bool:
        return self.timeseries or self.trace is not None

    def resolve_window(self, horizon_cycles: float) -> float:
        if self.window_cycles is not None:
            if self.window_cycles <= 0:
                raise ValueError("window_cycles must be positive")
            return float(self.window_cycles)
        if self.windows < 1:
            raise ValueError("windows must be at least 1")
        return horizon_cycles / self.windows

    def make_recorder(self, horizon_cycles: float) -> Optional[MetricsRecorder]:
        if not self.timeseries:
            return None
        return MetricsRecorder(
            horizon_cycles, self.resolve_window(horizon_cycles)
        )
