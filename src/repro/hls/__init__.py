"""HLS lowering: template generation and the virtual toolflow."""

from .synthesis import (
    ClpImplementation,
    DesignImplementation,
    implement_clp,
    implement_design,
)
from .template import (
    LayerDescriptor,
    TemplateParameters,
    generate_clp_source,
    generate_system,
    layer_descriptor,
    template_parameters,
)

__all__ = [
    "TemplateParameters",
    "template_parameters",
    "generate_clp_source",
    "generate_system",
    "LayerDescriptor",
    "layer_descriptor",
    "ClpImplementation",
    "DesignImplementation",
    "implement_clp",
    "implement_design",
]
