"""HLS template generation (Section 5).

Emits the parameterised C++ source of the CLP accelerator template
(Listing 4) for each CLP of a design.  The paper passes each CLP through
Vivado HLS 2016.3 separately, producing IP cores joined by an AXI
crossbar; here the generator produces the same per-CLP sources plus a
top-level integration summary, so a user with the Xilinx toolchain could
rebuild the accelerator.

The template is constructed from nine parameters (Section 5.1): Tn, Tm
(compute grid), Mmax, Kmax, insize, outsize (buffer sizing), and NP, WP,
MP (AXI stream port counts for input, weight, and output transfers).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Tuple

from ..core.clp import CLPConfig
from ..core.datatypes import DataType
from ..core.design import MultiCLPDesign
from ..core.layer import input_extent

__all__ = ["TemplateParameters", "template_parameters", "generate_clp_source",
           "generate_system", "LayerDescriptor", "layer_descriptor"]


@dataclass(frozen=True)
class TemplateParameters:
    """The nine HLS template parameters of Section 5.1."""

    tn: int
    tm: int
    m_max: int  # deepest output-map count across assigned layers (bias buffer)
    k_max: int  # largest kernel across assigned layers (weight buffer)
    insize: int  # input-buffer bank depth in words
    outsize: int  # output-buffer bank depth in words
    np_ports: int  # AXI stream ports for input transfer
    wp_ports: int  # AXI stream ports for weight transfer
    mp_ports: int  # AXI stream ports for output transfer


def _port_count(banks: int) -> int:
    """AXI stream ports so each port serves at most 16 banks."""
    return max(1, min(4, ceil(banks / 16)))


def template_parameters(clp: CLPConfig) -> TemplateParameters:
    """Derive the template parameters from an optimized CLP."""
    spec = clp.buffers
    return TemplateParameters(
        tn=clp.tn,
        tm=clp.tm,
        m_max=max(layer.m for layer in clp.layers),
        k_max=max(layer.k for layer in clp.layers),
        insize=spec.input_bank_words,
        outsize=spec.output_bank_words,
        np_ports=_port_count(clp.tn),
        wp_ports=_port_count(clp.tn * clp.tm // 8),
        mp_ports=_port_count(clp.tm),
    )


@dataclass(frozen=True)
class LayerDescriptor:
    """The 32-byte runtime argument descriptor of Section 5.1.

    Transferred over AXI4 at the start of a layer's computation; holds
    the loop bounds (R, C, M, N, K, S, Tr, Tc) from which the state
    machine derives rsteps/csteps/msteps/nsteps.
    """

    r: int
    c: int
    m: int
    n: int
    k: int
    s: int
    tr: int
    tc: int

    def pack(self) -> bytes:
        """Little-endian packing of the eight 32-bit arguments."""
        import struct

        return struct.pack(
            "<8i", self.r, self.c, self.m, self.n, self.k, self.s,
            self.tr, self.tc,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "LayerDescriptor":
        import struct

        if len(raw) != 32:
            raise ValueError(f"descriptor must be 32 bytes, got {len(raw)}")
        return cls(*struct.unpack("<8i", raw))

    @property
    def rsteps(self) -> int:
        return ceil(self.r / self.tr)

    @property
    def csteps(self) -> int:
        return ceil(self.c / self.tc)

    @property
    def msteps(self) -> int:
        return ceil(self.m / 1)  # placeholder; msteps depends on Tm

    def steps(self, tn: int, tm: int) -> Tuple[int, int, int, int]:
        """(rsteps, csteps, msteps, nsteps) for a (Tn, Tm) CLP."""
        return (
            ceil(self.r / self.tr),
            ceil(self.c / self.tc),
            ceil(self.m / tm),
            ceil(self.n / tn),
        )


def layer_descriptor(clp: CLPConfig, layer_name: str) -> LayerDescriptor:
    """Build the runtime descriptor for one of the CLP's layers."""
    for layer, (tr, tc) in zip(clp.layers, clp.tile_plans):
        if layer.name == layer_name:
            return LayerDescriptor(
                r=layer.r, c=layer.c, m=layer.m, n=layer.n,
                k=layer.k, s=layer.s, tr=tr, tc=tc,
            )
    raise KeyError(f"CLP does not compute layer {layer_name!r}")


_CTYPE = {"float32": "float", "fixed16": "ap_fixed<16, 8>"}


def generate_clp_source(clp: CLPConfig, name: str = "clp0") -> str:
    """Emit the C++ HLS source for one CLP.

    The structure mirrors Listing 4: an argument-descriptor transfer, the
    four outer loops, and a DATAFLOW region with read_bias, read_input,
    read_weights, compute, and write_output stages.  The PIPELINE
    directive in compute() unrolls the Tm and Tn loops.
    """
    p = template_parameters(clp)
    dtype = _CTYPE[clp.dtype.label]
    layer_list = ", ".join(layer.name for layer in clp.layers)
    return f"""// Auto-generated CLP accelerator (Multi-CLP ISCA'17 template).
// CLP: {name}   layers: {layer_list}
#include <ap_fixed.h>
#include <hls_stream.h>

typedef {dtype} data_t;

#define TN {p.tn}
#define TM {p.tm}
#define MMAX {p.m_max}
#define KMAX {p.k_max}
#define INSIZE {p.insize}
#define OUTSIZE {p.outsize}
#define NP {p.np_ports}
#define WP {p.wp_ports}
#define MP {p.mp_ports}

struct args_t {{  // 32-byte descriptor (Section 5.1)
    int R, C, M, N, K, S, Tr, Tc;
}};

static data_t in_buf[TN][INSIZE];
static data_t w_buf[TN][TM][KMAX * KMAX];
static data_t out_buf[TM][OUTSIZE];
static data_t bias_buf[TM];
#pragma HLS ARRAY_PARTITION variable=out_buf dim=1 complete
#pragma HLS ARRAY_PARTITION variable=bias_buf dim=1 complete
#pragma HLS ARRAY_PARTITION variable=in_buf dim=1 complete
#pragma HLS ARRAY_PARTITION variable=w_buf dim=1 complete
#pragma HLS ARRAY_PARTITION variable=w_buf dim=2 complete

static void read_bias(hls::stream<data_t> &bias, int m, int msteps);
static void read_input(hls::stream<data_t> port[NP], const args_t &a,
                       int r, int c, int n);
static void read_weights(hls::stream<data_t> port[WP], const args_t &a,
                         int m, int n);
static void write_output(hls::stream<data_t> port[MP], const args_t &a,
                         int r, int c, int m, int n, int nsteps);

static void compute(const args_t &a, int rloops, int cloops, int n) {{
    for (int i = 0; i < a.K; i++)
        for (int j = 0; j < a.K; j++)
            for (int tr = 0; tr < rloops; tr++)
                for (int tc = 0; tc < cloops; tc++) {{
#pragma HLS PIPELINE II=1
                    for (int tm = 0; tm < TM; tm++)
#pragma HLS UNROLL
                        for (int tn = 0; tn < TN; tn++) {{
#pragma HLS UNROLL
                            data_t wx = w_buf[tn][tm][i * a.K + j];
                            data_t ix =
                                in_buf[tn][(a.S * tr + i) * ((a.Tc - 1) * a.S + a.K)
                                           + a.S * tc + j];
                            if (i == 0 && j == 0 && tn == 0 && n == 0)
                                out_buf[tm][tr * a.Tc + tc] = bias_buf[tm]
                                    + wx * ix;
                            else
                                out_buf[tm][tr * a.Tc + tc] += wx * ix;
                        }}
                }}
}}

extern "C" void {name}(hls::stream<data_t> in_port[NP],
                       hls::stream<data_t> w_port[WP],
                       hls::stream<data_t> out_port[MP],
                       hls::stream<data_t> &bias_port,
                       const args_t args) {{
#pragma HLS INTERFACE s_axilite port=return
    const args_t a = args;  // descriptor burst (32 bytes)
    const int rsteps = (a.R + a.Tr - 1) / a.Tr;
    const int csteps = (a.C + a.Tc - 1) / a.Tc;
    const int msteps = (a.M + TM - 1) / TM;
    const int nsteps = (a.N + TN - 1) / TN;
    for (int r = 0; r < rsteps; r++)
        for (int c = 0; c < csteps; c++)
            for (int m = 0; m < msteps; m++)
                for (int n = 0; n < nsteps; n++) {{
#pragma HLS DATAFLOW
                    int rloops = (r == rsteps - 1) ? a.R - r * a.Tr : a.Tr;
                    int cloops = (c == csteps - 1) ? a.C - c * a.Tc : a.Tc;
                    read_bias(bias_port, m, msteps);
                    read_input(in_port, a, r, c, n);
                    read_weights(w_port, a, m, n);
                    compute(a, rloops, cloops, n);
                    write_output(out_port, a, r, c, m, n, nsteps);
                }}
}}
"""


def generate_system(design: MultiCLPDesign) -> str:
    """Emit a top-level integration summary for a Multi-CLP design.

    Lists each generated IP core, its AXI ports, and the per-layer
    argument descriptors the host must issue each epoch — the pieces a
    Vivado block design needs around the HLS cores.
    """
    lines = [
        f"// Multi-CLP system: {design.network.name} "
        f"[{design.dtype.label}], {design.num_clps} CLPs",
        "// AXI crossbar + DataMover integration manifest",
    ]
    for index, clp in enumerate(design.clps):
        p = template_parameters(clp)
        lines.append(
            f"// clp{index}: Tn={p.tn} Tm={p.tm} ports NP={p.np_ports} "
            f"WP={p.wp_ports} MP={p.mp_ports} dsp={clp.dsp} bram={clp.bram}"
        )
        for layer, (tr, tc) in zip(clp.layers, clp.tile_plans):
            lines.append(
                f"//   descriptor {layer.name}: R={layer.r} C={layer.c} "
                f"M={layer.m} N={layer.n} K={layer.k} S={layer.s} "
                f"Tr={tr} Tc={tc}"
            )
    sources = "\n".join(
        generate_clp_source(clp, name=f"clp{index}")
        for index, clp in enumerate(design.clps)
    )
    return "\n".join(lines) + "\n\n" + sources
