"""Virtual toolflow: post-implementation resource and power estimates.

The paper validates its analytic model against Vivado synthesis and
place-and-route (Tables 6-9) and finds the model systematically
under-predicts by toolflow overheads it deliberately excludes:

* **DSP slices**: address calculation, loop indexing, and control logic
  add roughly 50 slices per floating-point CLP and roughly 100 per
  fixed-point CLP (Section 6.4-6.5 report ~6% overall); the compute
  module itself matches the model exactly.
* **BRAM**: memory mapping rounds banks up; for fixed16 designs Vivado
  frequently fails to pack paired 16-bit banks, inflating BRAM by
  ~1.7x (compare Table 7's model/impl columns).
* **FF/LUT**: scale with the compute-module size plus a fixed per-CLP
  control cost (fits of Tables 8-9).
* **Power**: Vivado's post-P&R estimate, fit as static + DSP + BRAM +
  per-CLP control terms.

These calibrated overhead models replace the Xilinx toolchain, which is
unavailable here; the *relationship* the paper demonstrates (model
closely tracks implementation, differing only by toolflow specifics) is
preserved by construction and quantified in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Tuple

from ..core.clp import CLPConfig
from ..core.datatypes import FIXED16, FLOAT32, DataType
from ..core.design import MultiCLPDesign
from ..fpga.parts import FpgaPart

__all__ = [
    "ClpImplementation",
    "DesignImplementation",
    "implement_clp",
    "implement_design",
]

# Calibration constants (fit against Tables 6-9; see module docstring).
_DSP_OVERHEAD = {FLOAT32: 50, FIXED16: 100}
_DSP_OVERHEAD_PER_HUNDRED = 1  # large CLPs pay ~1 extra slice per 100
_BRAM_FIXED_OVERHEAD = 2
_BRAM_LARGE_BANK_FACTOR = 0.85  # extra fraction of input BRAMs for big banks
_BRAM_LARGE_BANK_WORDS = 1024
_BRAM_FIXED16_PACKING_FACTOR = 1.7
_FF_PER_DSP = {FLOAT32: 92, FIXED16: 29}
_LUT_PER_DSP = {FLOAT32: 58, FIXED16: 24}
_FF_PER_CLP = 10_000
_LUT_PER_CLP = 8_000
_POWER_STATIC_W = 1.5
_POWER_PER_DSP_W = {FLOAT32: 0.0015, FIXED16: 0.0006}
_POWER_PER_BRAM_W = 0.002
_POWER_PER_CLP_W = 0.3


@dataclass(frozen=True)
class ClpImplementation:
    """Model vs implementation resources for one CLP (Tables 6-7)."""

    name: str
    dsp_model: int
    dsp_impl: int
    bram_model: int
    bram_impl: int

    @property
    def dsp_overhead(self) -> int:
        return self.dsp_impl - self.dsp_model

    @property
    def bram_overhead(self) -> int:
        return self.bram_impl - self.bram_model


def implement_clp(clp: CLPConfig, name: str = "clp0") -> ClpImplementation:
    """Estimate the post-place-and-route resources of one CLP."""
    dsp_model = clp.dsp
    dsp_impl = (
        dsp_model
        + _DSP_OVERHEAD[clp.dtype]
        + _DSP_OVERHEAD_PER_HUNDRED * (dsp_model // 100)
    )
    bram_model = clp.bram
    input_brams, weight_brams, output_brams = clp.bram_by_buffer
    bram_impl = bram_model + _BRAM_FIXED_OVERHEAD
    if clp.buffers.input_bank_words > _BRAM_LARGE_BANK_WORDS:
        bram_impl += ceil(_BRAM_LARGE_BANK_FACTOR * input_brams)
    if clp.dtype is FIXED16:
        bram_impl = ceil(bram_model * _BRAM_FIXED16_PACKING_FACTOR) + \
            _BRAM_FIXED_OVERHEAD
    return ClpImplementation(
        name=name,
        dsp_model=dsp_model,
        dsp_impl=dsp_impl,
        bram_model=bram_model,
        bram_impl=bram_impl,
    )


@dataclass(frozen=True)
class DesignImplementation:
    """Full-design implementation estimate (Tables 8-9)."""

    clps: Tuple[ClpImplementation, ...]
    dsp_model: int
    dsp_impl: int
    bram_model: int
    bram_impl: int
    flip_flops: int
    luts: int
    power_watts: float

    def utilization_of(self, part: FpgaPart) -> dict:
        """Percentages of the part's capacity, as in Tables 8-9."""
        return {
            "DSP": self.dsp_impl / part.dsp_slices,
            "BRAM-18K": self.bram_impl / part.bram18k,
            "FF": self.flip_flops / part.flip_flops,
            "LUT": self.luts / part.luts,
        }


def implement_design(design: MultiCLPDesign) -> DesignImplementation:
    """Estimate the post-place-and-route resources of a whole design."""
    clps = tuple(
        implement_clp(clp, name=f"clp{index}")
        for index, clp in enumerate(design.clps)
    )
    dsp_impl = sum(c.dsp_impl for c in clps)
    bram_impl = sum(c.bram_impl for c in clps)
    dtype = design.dtype
    n = design.num_clps
    flip_flops = _FF_PER_DSP[dtype] * dsp_impl + _FF_PER_CLP * n
    luts = _LUT_PER_DSP[dtype] * dsp_impl + _LUT_PER_CLP * n
    power = (
        _POWER_STATIC_W
        + _POWER_PER_DSP_W[dtype] * dsp_impl
        + _POWER_PER_BRAM_W * bram_impl
        + _POWER_PER_CLP_W * n
    )
    return DesignImplementation(
        clps=clps,
        dsp_model=design.dsp,
        dsp_impl=dsp_impl,
        bram_model=design.bram,
        bram_impl=bram_impl,
        flip_flops=flip_flops,
        luts=luts,
        power_watts=round(power, 1),
    )
