"""SqueezeNet v1.1 convolutional layers (Iandola et al., 2016).

Twenty-six convolutional layers: conv1, eight fire modules (each a 1x1
squeeze plus 1x1 and 3x3 expands), and the final conv10 classifier.  The
paper's Section 3.2 quotes layer 1 as (N, M) = (3, 64) and layer 2 as
(64, 16), matching the v1.1 revision of the network used here.

Spatial sizes follow the standard 227x227 input with ceil-mode pooling:
conv1 output 113, pool1 -> 56, pool3 -> 28, pool5 -> 14.
"""

from __future__ import annotations

from typing import List

from ..core.layer import ConvLayer
from ..core.network import Network

__all__ = ["squeezenet"]

_FIRE_MODULES = [
    # (fire index, input channels, squeeze, expand-per-branch, spatial size)
    (2, 64, 16, 64, 56),
    (3, 128, 16, 64, 56),
    (4, 128, 32, 128, 28),
    (5, 256, 32, 128, 28),
    (6, 256, 48, 192, 14),
    (7, 384, 48, 192, 14),
    (8, 384, 64, 256, 14),
    (9, 512, 64, 256, 14),
]


def _fire(index: int, n_in: int, squeeze: int, expand: int, size: int) -> List[ConvLayer]:
    return [
        ConvLayer(f"fire{index}/squeeze1x1", n=n_in, m=squeeze, r=size, c=size, k=1),
        ConvLayer(f"fire{index}/expand1x1", n=squeeze, m=expand, r=size, c=size, k=1),
        ConvLayer(f"fire{index}/expand3x3", n=squeeze, m=expand, r=size, c=size, k=3),
    ]


def squeezenet() -> Network:
    """The twenty-six SqueezeNet v1.1 convolutional layers."""
    layers = [ConvLayer("conv1", n=3, m=64, r=113, c=113, k=3, s=2)]
    for index, n_in, squeeze, expand, size in _FIRE_MODULES:
        layers.extend(_fire(index, n_in, squeeze, expand, size))
    layers.append(ConvLayer("conv10", n=512, m=1000, r=14, c=14, k=1))
    return Network("SqueezeNet", layers)
