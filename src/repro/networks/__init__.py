"""Network zoo: the four CNNs evaluated in the paper."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.network import Network
from .alexnet import alexnet
from .googlenet import googlenet
from .squeezenet import squeezenet
from .vggnet import vggnet_e

__all__ = [
    "alexnet",
    "vggnet_e",
    "squeezenet",
    "googlenet",
    "get_network",
    "available_networks",
]

_REGISTRY: Dict[str, Callable[[], Network]] = {
    "alexnet": alexnet,
    "vggnet-e": vggnet_e,
    "vggnet": vggnet_e,
    "vgg19": vggnet_e,
    "squeezenet": squeezenet,
    "googlenet": googlenet,
}


def get_network(name: str) -> Network:
    """Build a network from the zoo by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        factory = _REGISTRY[key]
    except KeyError:
        raise ValueError(
            f"unknown network {name!r}; known: {available_networks()}"
        ) from None
    return factory()


def available_networks() -> List[str]:
    """Canonical names accepted by :func:`get_network`."""
    return ["alexnet", "vggnet-e", "squeezenet", "googlenet"]
