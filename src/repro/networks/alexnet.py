"""AlexNet convolutional layers (Krizhevsky et al., NIPS 2012).

The paper follows the original two-GPU formulation (Figure 2): each of
the five convolutional stages is split into an "a" and "b" half, giving
ten convolutional layers.  Layer 3 is the only stage with full
cross-connectivity (each half sees all 256 input maps); the grouped
stages 2, 4, and 5 see only their own half's maps.

These dimensions reproduce the paper's Table 2 cycle counts exactly
(e.g. Tn=7, Tm=64 computes layers 1a+1b in 732k cycles).
"""

from __future__ import annotations

from ..core.layer import ConvLayer
from ..core.network import Network

__all__ = ["alexnet"]


def alexnet() -> Network:
    """The ten AlexNet convolutional layers in network order."""
    halves = []
    stage_dims = [
        # (name, N, M-per-half, R, C, K, S)
        ("conv1", 3, 48, 55, 55, 11, 4),
        ("conv2", 48, 128, 27, 27, 5, 1),
        ("conv3", 256, 192, 13, 13, 3, 1),
        ("conv4", 192, 192, 13, 13, 3, 1),
        ("conv5", 192, 128, 13, 13, 3, 1),
    ]
    for name, n, m_half, r, c, k, s in stage_dims:
        for suffix in ("a", "b"):
            halves.append(
                ConvLayer(name=f"{name}{suffix}", n=n, m=m_half, r=r, c=c, k=k, s=s)
            )
    return Network("AlexNet", halves)
