"""VGGNet-E (VGG-19) convolutional layers (Simonyan & Zisserman, 2014).

Sixteen 3x3 stride-1 convolutional layers in five blocks.  The layers are
dimensionally very regular (N and M are large powers of two throughout),
which is why the paper finds only a 1.01x Multi-CLP improvement for this
network: a single CLP already fits nearly every layer.
"""

from __future__ import annotations

from ..core.layer import ConvLayer
from ..core.network import Network

__all__ = ["vggnet_e"]

_BLOCKS = [
    # (block, conv count, N of first conv, M, output R=C)
    (1, 2, 3, 64, 224),
    (2, 2, 64, 128, 112),
    (3, 4, 128, 256, 56),
    (4, 4, 256, 512, 28),
    (5, 4, 512, 512, 14),
]


def vggnet_e() -> Network:
    """The sixteen VGG-19 convolutional layers in network order."""
    layers = []
    for block, count, n_first, m, size in _BLOCKS:
        n = n_first
        for i in range(1, count + 1):
            layers.append(
                ConvLayer(
                    name=f"conv{block}_{i}", n=n, m=m, r=size, c=size, k=3, s=1
                )
            )
            n = m
    return Network("VGGNet-E", layers)
