"""GoogLeNet (Inception v1) convolutional layers (Szegedy et al., 2015).

Fifty-seven convolutional layers: three stem convolutions followed by
nine inception modules, each contributing six convolutions (1x1 branch,
3x3 reduce + 3x3, 5x5 reduce + 5x5, and the pool-projection 1x1).
Auxiliary-classifier convolutions are excluded, as in the paper.
"""

from __future__ import annotations

from typing import List

from ..core.layer import ConvLayer
from ..core.network import Network

__all__ = ["googlenet"]

_INCEPTIONS = [
    # (name, input ch, 1x1, 3x3red, 3x3, 5x5red, 5x5, poolproj, spatial)
    ("3a", 192, 64, 96, 128, 16, 32, 32, 28),
    ("3b", 256, 128, 128, 192, 32, 96, 64, 28),
    ("4a", 480, 192, 96, 208, 16, 48, 64, 14),
    ("4b", 512, 160, 112, 224, 24, 64, 64, 14),
    ("4c", 512, 128, 128, 256, 24, 64, 64, 14),
    ("4d", 512, 112, 144, 288, 32, 64, 64, 14),
    ("4e", 528, 256, 160, 320, 32, 128, 128, 14),
    ("5a", 832, 256, 160, 320, 32, 128, 128, 7),
    ("5b", 832, 384, 192, 384, 48, 128, 128, 7),
]


def _inception(
    name: str,
    n_in: int,
    c1: int,
    c3r: int,
    c3: int,
    c5r: int,
    c5: int,
    pool: int,
    size: int,
) -> List[ConvLayer]:
    prefix = f"inception_{name}"
    return [
        ConvLayer(f"{prefix}/1x1", n=n_in, m=c1, r=size, c=size, k=1),
        ConvLayer(f"{prefix}/3x3_reduce", n=n_in, m=c3r, r=size, c=size, k=1),
        ConvLayer(f"{prefix}/3x3", n=c3r, m=c3, r=size, c=size, k=3),
        ConvLayer(f"{prefix}/5x5_reduce", n=n_in, m=c5r, r=size, c=size, k=1),
        ConvLayer(f"{prefix}/5x5", n=c5r, m=c5, r=size, c=size, k=5),
        ConvLayer(f"{prefix}/pool_proj", n=n_in, m=pool, r=size, c=size, k=1),
    ]


def googlenet() -> Network:
    """The fifty-seven GoogLeNet convolutional layers in network order."""
    layers = [
        ConvLayer("conv1/7x7_s2", n=3, m=64, r=112, c=112, k=7, s=2),
        ConvLayer("conv2/3x3_reduce", n=64, m=64, r=56, c=56, k=1),
        ConvLayer("conv2/3x3", n=64, m=192, r=56, c=56, k=3),
    ]
    for args in _INCEPTIONS:
        layers.extend(_inception(*args))
    return Network("GoogLeNet", layers)
