"""FPGA platform descriptions and resource budgets."""

from .parts import (
    BRAM18K_SINGLE_BANK_WORDS,
    BRAM18K_WORDS_32BIT,
    LUTRAM_CUTOFF_WORDS,
    PART_CATALOG,
    FpgaPart,
    ResourceBudget,
    budget_for,
    get_part,
)

__all__ = [
    "FpgaPart",
    "ResourceBudget",
    "PART_CATALOG",
    "get_part",
    "budget_for",
    "BRAM18K_WORDS_32BIT",
    "BRAM18K_SINGLE_BANK_WORDS",
    "LUTRAM_CUTOFF_WORDS",
]
