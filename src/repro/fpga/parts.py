"""FPGA part catalog and resource budgets.

The paper targets Xilinx Virtex-7 485T and 690T devices and projects to
Virtex UltraScale+ VU9P/VU11P (Figure 7).  A design is optimized against a
*budget*, which Section 6.1 sets to 80% of the device's DSP slices and
BRAM-18Kb blocks: 2,240 DSP / 1,648 BRAM on the 485T and 2,880 DSP /
2,352 BRAM on the 690T.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = [
    "FpgaPart",
    "ResourceBudget",
    "PART_CATALOG",
    "POWER_CLASSES",
    "get_part",
    "budget_for",
]

#: Words stored by one BRAM-18Kb block when organised 512 x 32 bits.
BRAM18K_WORDS_32BIT = 512

#: Depth below which a double-buffered bank fits a single BRAM (one read
#: port plus one write port already provided by simple dual-port mode).
BRAM18K_SINGLE_BANK_WORDS = 256

#: Banks smaller than this many words are mapped to LUTRAM and do not
#: count against the BRAM budget (Section 4.2).
LUTRAM_CUTOFF_WORDS = 10


@dataclass(frozen=True)
class ResourceBudget:
    """Resources available to the accelerator on a given platform."""

    dsp: int
    bram18k: int
    bandwidth_gbps: Optional[float] = None  # None = unconstrained
    frequency_mhz: float = 100.0

    def __post_init__(self) -> None:
        if self.dsp <= 0 or self.bram18k <= 0:
            raise ValueError("budget must have positive DSP and BRAM counts")
        if self.bandwidth_gbps is not None and self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth budget must be positive when set")
        if self.frequency_mhz <= 0:
            raise ValueError("frequency must be positive")

    @property
    def cycles_per_second(self) -> float:
        return self.frequency_mhz * 1e6

    def bytes_per_cycle(self) -> Optional[float]:
        """Off-chip bytes transferable per cycle, or None if unconstrained."""
        if self.bandwidth_gbps is None:
            return None
        return self.bandwidth_gbps * 1e9 / self.cycles_per_second

    def with_bandwidth(self, bandwidth_gbps: Optional[float]) -> "ResourceBudget":
        return ResourceBudget(
            dsp=self.dsp,
            bram18k=self.bram18k,
            bandwidth_gbps=bandwidth_gbps,
            frequency_mhz=self.frequency_mhz,
        )

    def with_frequency(self, frequency_mhz: float) -> "ResourceBudget":
        return ResourceBudget(
            dsp=self.dsp,
            bram18k=self.bram18k,
            bandwidth_gbps=self.bandwidth_gbps,
            frequency_mhz=frequency_mhz,
        )


#: Power classes a part can fall into (rough board TDP bands).
POWER_CLASSES = ("low", "mid", "high")


@dataclass(frozen=True)
class FpgaPart:
    """Physical capacities (and deployment cost class) of an FPGA device.

    ``relative_cost`` is a unitless board-price weight normalized to the
    VX485T (= 1.0); ``power_class`` is a coarse TDP band.  Both exist
    for fleet-level cost-to-serve accounting (boards-needed x board
    cost), not for the on-chip optimizer, and both default so existing
    positional constructions keep working.  ``None`` cost means
    "unknown" and falls back to a DSP-proportional estimate.
    """

    name: str
    dsp_slices: int
    bram18k: int
    flip_flops: int
    luts: int
    relative_cost: Optional[float] = None
    power_class: str = "mid"

    def __post_init__(self) -> None:
        if self.relative_cost is not None and self.relative_cost <= 0:
            raise ValueError("relative_cost must be positive when set")
        if self.power_class not in POWER_CLASSES:
            raise ValueError(
                f"unknown power class {self.power_class!r}; "
                f"known: {POWER_CLASSES}"
            )

    @property
    def cost_weight(self) -> float:
        """Board-price weight; DSP-proportional estimate when unset.

        The fallback anchors on the VX485T (2,800 DSP slices = weight
        1.0), so synthetic parts rank sanely next to catalog ones.
        """
        if self.relative_cost is not None:
            return self.relative_cost
        return self.dsp_slices / 2800.0

    def budget(
        self,
        fraction: float = 0.8,
        bandwidth_gbps: Optional[float] = None,
        frequency_mhz: float = 100.0,
    ) -> ResourceBudget:
        """Resource budget at ``fraction`` of capacity (paper uses 80%)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        return ResourceBudget(
            dsp=int(self.dsp_slices * fraction),
            bram18k=int(self.bram18k * fraction),
            bandwidth_gbps=bandwidth_gbps,
            frequency_mhz=frequency_mhz,
        )


PART_CATALOG: Dict[str, FpgaPart] = {
    "485t": FpgaPart(
        name="Virtex-7 485T",
        dsp_slices=2800,
        bram18k=2060,
        flip_flops=607200,
        luts=303600,
        relative_cost=1.0,
        power_class="mid",
    ),
    "690t": FpgaPart(
        name="Virtex-7 690T",
        dsp_slices=3600,
        bram18k=2940,
        flip_flops=866400,
        luts=433200,
        relative_cost=1.45,
        power_class="mid",
    ),
    "vu9p": FpgaPart(
        name="Virtex UltraScale+ VU9P",
        dsp_slices=6840,
        bram18k=4320,
        flip_flops=2364480,
        luts=1182240,
        relative_cost=3.1,
        power_class="high",
    ),
    "vu11p": FpgaPart(
        name="Virtex UltraScale+ VU11P",
        dsp_slices=9216,
        bram18k=4032,
        flip_flops=2592000,
        luts=1296000,
        relative_cost=3.7,
        power_class="high",
    ),
}


def get_part(name: str) -> FpgaPart:
    """Look up an FPGA part by short name (e.g. ``"485t"``, ``"690T"``).

    Vendor-style spellings are accepted too: ``VX485T`` and ``XC7VX690T``
    resolve to the same catalog entries as the paper's short names.
    """
    key = name.strip().lower().replace("virtex-7 ", "").replace(" ", "")
    if key not in PART_CATALOG:
        for prefix in ("xc7vx", "xc7v", "xc", "vx"):
            if key.startswith(prefix) and key[len(prefix):] in PART_CATALOG:
                key = key[len(prefix):]
                break
    try:
        return PART_CATALOG[key]
    except KeyError:
        raise ValueError(
            f"unknown FPGA part {name!r}; known: {sorted(PART_CATALOG)}"
        ) from None


def budget_for(
    part_name: str,
    bandwidth_gbps: Optional[float] = None,
    frequency_mhz: float = 100.0,
    fraction: float = 0.8,
) -> ResourceBudget:
    """Convenience wrapper: the paper's 80% budget for a named part."""
    return get_part(part_name).budget(
        fraction=fraction,
        bandwidth_gbps=bandwidth_gbps,
        frequency_mhz=frequency_mhz,
    )
