"""Regeneration of the paper's evaluation figures (Section 6).

* Figure 6: BRAM capacity vs off-chip bandwidth tradeoff for the AlexNet
  float Multi-CLP designs on both FPGAs.
* Figure 7: throughput of Single- vs Multi-CLP AlexNet float designs as
  the DSP budget scales from 100 to 10,000 slices (BRAM budget at one
  BRAM per 1.3 DSP slices, as the paper observes on Virtex-7 parts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.datatypes import FLOAT32, DataType
from ..core.design import MultiCLPDesign
from ..opt.compute import CLPCandidate, PartitionCandidate
from ..opt.memory import system_tradeoff_curve
from .report import ascii_plot, render_table
from .tables import design_for

__all__ = [
    "TradeoffCurve",
    "figure6",
    "ScalingPoint",
    "Figure7Result",
    "figure7",
    "DEFAULT_DSP_SWEEP",
]

#: Paper-observed BRAM:DSP capacity ratio used for Figure 7 budgets.
BRAM_PER_DSP = 1 / 1.3

#: DSP budgets swept in Figure 7 (100 to 10,000); includes the four
#: devices marked with dashed lines in the paper.
DEFAULT_DSP_SWEEP: Tuple[int, ...] = (
    100, 250, 500, 750, 1000, 1500, 2240, 2880, 3600, 4500,
    5472, 6000, 7000, 8000, 9216, 10000,
)


@dataclass(frozen=True)
class TradeoffCurve:
    """One Figure 6 curve: (BRAM, GB/s) frontier of a design."""

    label: str
    points: Tuple[Tuple[int, float], ...]

    def bandwidth_at(self, bram_budget: int) -> Optional[float]:
        """Least bandwidth achievable within a BRAM budget."""
        feasible = [bw for bram, bw in self.points if bram <= bram_budget]
        return min(feasible) if feasible else None

    def format(self) -> str:
        plot = ascii_plot(
            self.points, x_label="BRAM-18K", y_label="GB/s", marker="*"
        )
        return f"Figure 6 curve [{self.label}]\n{plot}"


def _partition_of(design: MultiCLPDesign) -> PartitionCandidate:
    return PartitionCandidate(
        clps=tuple(
            CLPCandidate(
                tn=clp.tn,
                tm=clp.tm,
                layers=clp.layers,
                cycles=clp.total_cycles,
                dsp=clp.dsp,
            )
            for clp in design.clps
        )
    )


def figure6(
    parts: Sequence[str] = ("485t", "690t"),
    frequency_mhz: float = 100.0,
    slack: float = 0.02,
) -> List[TradeoffCurve]:
    """BRAM vs bandwidth tradeoff curves for AlexNet float Multi-CLPs."""
    curves: List[TradeoffCurve] = []
    for part in parts:
        design = design_for("alexnet", part, "float32", single=False)
        raw = system_tradeoff_curve(
            _partition_of(design),
            FLOAT32,
            cycle_target=design.epoch_cycles,
            slack=slack,
        )
        points = tuple(
            (bram, bytes_per_cycle * frequency_mhz * 1e6 / 1e9)
            for bram, bytes_per_cycle in raw
        )
        curves.append(TradeoffCurve(label=f"Multi-CLP, {part}", points=points))
    return curves


@dataclass(frozen=True)
class ScalingPoint:
    """One x-position of Figure 7."""

    dsp: int
    single_throughput: Optional[float]
    multi_throughput: Optional[float]

    @property
    def speedup(self) -> Optional[float]:
        if not self.single_throughput or not self.multi_throughput:
            return None
        return self.multi_throughput / self.single_throughput


@dataclass(frozen=True)
class Figure7Result:
    points: Tuple[ScalingPoint, ...]

    def format(self) -> str:
        rows = [
            (
                p.dsp,
                f"{p.single_throughput:.1f}" if p.single_throughput else "-",
                f"{p.multi_throughput:.1f}" if p.multi_throughput else "-",
                f"{p.speedup:.2f}x" if p.speedup else "-",
            )
            for p in self.points
        ]
        table = render_table(
            ["DSP slices", "Single img/s", "Multi img/s", "speedup"],
            rows,
            title="Figure 7: AlexNet float throughput vs DSP budget @100MHz",
        )
        plot_points = [
            (p.dsp, p.multi_throughput)
            for p in self.points
            if p.multi_throughput
        ]
        return table + "\n" + ascii_plot(
            plot_points, x_label="DSP slices", y_label="Multi img/s"
        )


def figure7(
    dsp_sweep: Sequence[int] = DEFAULT_DSP_SWEEP,
    network_name: str = "alexnet",
    dtype: DataType = FLOAT32,
    frequency_mhz: float = 100.0,
    max_clps: int = 6,
    workers: Optional[int] = None,
    store=None,
) -> Figure7Result:
    """Throughput scaling of Single- vs Multi-CLP with the DSP budget.

    The sweep runs through :mod:`repro.dse`: points fan out across
    ``workers`` processes (``None`` = CPU count) and, when ``store`` is
    given (a :class:`repro.dse.ResultStore` or path), previously solved
    budgets are served from cache instead of re-optimized.
    """
    from ..dse import SweepSpec, run_sweep

    budgets = tuple(
        (int(dsp), max(16, int(dsp * BRAM_PER_DSP))) for dsp in dsp_sweep
    )
    spec = SweepSpec(
        networks=(network_name,),
        budgets=budgets,
        dtypes=(dtype.label,),
        frequencies_mhz=(frequency_mhz,),
        modes=("single", "multi"),
        max_clps=(max_clps,),
    )
    outcome = run_sweep(spec, store=store, workers=workers)

    throughput: Dict[Tuple[int, str], Optional[float]] = {
        (result.point.dsp, result.point.mode): result.metric("throughput")
        for result in outcome.results
    }
    points: List[ScalingPoint] = [
        ScalingPoint(
            dsp=int(dsp),
            single_throughput=throughput[(int(dsp), "single")],
            multi_throughput=throughput[(int(dsp), "multi")],
        )
        for dsp in dsp_sweep
    ]
    return Figure7Result(points=tuple(points))
