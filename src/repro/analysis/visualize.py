"""ASCII visualizations of designs and schedules.

Terminal renderings of the paper's illustrative figures:

* :func:`schedule_gantt` — Figure 5: per-CLP layer timelines within one
  epoch, idle tails marked.
* :func:`utilization_bars` — Section 3.2: per-layer arithmetic-unit
  utilization of a CLP grid.
* :func:`partition_summary` — Figure 1's message: how the partitioned
  grids line up with layer dimensions.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.design import MultiCLPDesign
from ..core.network import Network
from ..core.utilization import UtilizationReport, utilization_report

__all__ = ["schedule_gantt", "utilization_bars", "partition_summary"]


def schedule_gantt(design: MultiCLPDesign, width: int = 72) -> str:
    """One epoch of the design as a Figure 5-style Gantt chart.

    Each CLP is one row; layer segments are scaled to their cycle
    counts, and the end-of-epoch idle gap is drawn with dots.
    """
    if width < 20:
        raise ValueError("width must be at least 20 columns")
    epoch = design.epoch_cycles
    label_width = max(len(f"CLP{i}") for i in range(design.num_clps)) + 1
    lines = [
        f"epoch = {epoch} cycles "
        f"({design.arithmetic_utilization:.1%} arithmetic utilization)"
    ]
    for index, clp in enumerate(design.clps):
        bar: List[str] = []
        consumed_cols = 0
        consumed_cycles = 0
        for position, layer in enumerate(clp.layers):
            cycles = clp.cycles_for(layer)
            consumed_cycles += cycles
            target_cols = round(consumed_cycles / epoch * width)
            span = max(1, target_cols - consumed_cols)
            marker = chr(ord("A") + position % 26)
            bar.append(marker * span)
            consumed_cols += span
        idle_cols = max(0, width - consumed_cols)
        bar.append("." * idle_cols)
        legend = ", ".join(
            f"{chr(ord('A') + i % 26)}={layer.name}"
            for i, layer in enumerate(clp.layers)
        )
        lines.append(f"CLP{index}".ljust(label_width) + "|" + "".join(bar) + "|")
        lines.append(" " * label_width + f"  {legend}")
    return "\n".join(lines)


def utilization_bars(
    report: UtilizationReport, width: int = 40
) -> str:
    """Per-layer utilization of a CLP grid as horizontal bars."""
    name_width = max(len(name) for name, _ in report.per_layer)
    lines = [
        f"{report.network_name} on CLP(Tn={report.tn}, Tm={report.tm}): "
        f"overall {report.overall:.1%}"
    ]
    for name, value in report.per_layer:
        filled = round(value * width)
        bar = "#" * filled + "-" * (width - filled)
        lines.append(f"{name.ljust(name_width)} |{bar}| {value:5.1%}")
    return "\n".join(lines)


def partition_summary(design: MultiCLPDesign) -> str:
    """Figure 1's story in a table: grid sizes vs layer (N, M) shapes."""
    lines = [
        f"{design.network.name}: {design.num_clps} CLP(s), "
        f"{design.total_units} MAC units total"
    ]
    for index, clp in enumerate(design.clps):
        lines.append(
            f"CLP{index} grid (Tn={clp.tn:>3}, Tm={clp.tm:>3}) "
            f"= {clp.units} units"
        )
        for layer in clp.layers:
            n_fit = "=" if layer.n % clp.tn == 0 else "~"
            m_fit = "=" if layer.m % clp.tm == 0 else "~"
            lines.append(
                f"   {layer.name:<24} (N={layer.n:>4}{n_fit}, "
                f"M={layer.m:>4}{m_fit})  "
                f"util {clp.total_macs and layer.macs / (clp.cycles_for(layer) * clp.units):5.1%}"
            )
    return "\n".join(lines)


def compare_single_vs_multi(
    network: Network,
    single: MultiCLPDesign,
    multi: MultiCLPDesign,
    width: int = 40,
) -> str:
    """Side-by-side utilization story of the two paradigms (Figure 1)."""
    single_clp = single.clps[0]
    report = utilization_report(network, single_clp.tn, single_clp.tm)
    sections = [
        "=== Single-CLP (state of the art) ===",
        utilization_bars(report, width),
        "",
        "=== Multi-CLP (this paper) ===",
        partition_summary(multi),
        "",
        f"speedup: {single.epoch_cycles / multi.epoch_cycles:.2f}x",
    ]
    return "\n".join(sections)
