"""Regeneration of the paper's evaluation tables (Section 6).

Each ``tableN()`` function runs the corresponding experiment with our
optimizer and models and returns a structured result holding both our
numbers and the paper's, plus a ``format()`` method that prints the
side-by-side comparison the benchmarks emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from ..core.datatypes import DataType
from ..core.design import MultiCLPDesign
from ..fpga.parts import ResourceBudget, budget_for
from ..hls.synthesis import DesignImplementation, implement_design
from ..networks import get_network
from ..opt import optimize_multi_clp, optimize_single_clp
from . import paper_data
from .report import render_table

__all__ = [
    "design_for",
    "Table1Result",
    "table1",
    "Table2Result",
    "table2",
    "Table3Result",
    "table3",
    "table4",
    "table5",
    "ModelVsImplResult",
    "table6",
    "table7",
    "ImplementationResult",
    "table8",
    "table9",
]

#: The paper's evaluation clock rates (Section 6.3).
FREQ_MHZ = {"float32": 100.0, "fixed16": 170.0}


@lru_cache(maxsize=None)
def design_for(
    network_name: str,
    part: str,
    dtype_name: str,
    single: bool,
    ordering: str = "auto",
    max_clps: int = 6,
) -> MultiCLPDesign:
    """Optimized (and cached) design for one evaluation scenario.

    Scenarios follow Section 6: 80% resource budgets, bandwidth left
    unconstrained during design (bandwidth needs are reported after).
    SqueezeNet fixed-point runs use the compute-to-data ordering the
    paper selects for bandwidth-heavy accelerators.
    """
    dtype = DataType.from_name(dtype_name)
    budget = budget_for(part, frequency_mhz=FREQ_MHZ[dtype.label])
    network = get_network(network_name)
    if ordering == "auto" and network_name == "squeezenet" and dtype.label == "fixed16":
        ordering = "compute-to-data"
    optimize = optimize_single_clp if single else optimize_multi_clp
    kwargs = {} if single else {"max_clps": max_clps}
    return optimize(network, budget, dtype, ordering=ordering, **kwargs)


# ===================================================================== Table 1
@dataclass(frozen=True)
class Table1Row:
    fpga: str
    dtype: str
    network: str
    single_util: float
    multi_util: float
    paper_single: float
    paper_multi: float


@dataclass(frozen=True)
class Table1Result:
    rows: Tuple[Table1Row, ...]

    def format(self) -> str:
        table_rows = [
            (
                row.fpga,
                row.dtype,
                row.network,
                f"{row.single_util:.1%}",
                f"{row.paper_single:.1%}",
                f"{row.multi_util:.1%}",
                f"{row.paper_multi:.1%}",
            )
            for row in self.rows
        ]
        return render_table(
            ["FPGA", "dtype", "network", "S-CLP", "paper", "M-CLP", "paper"],
            table_rows,
            title="Table 1: dynamic arithmetic-unit utilization",
        )


def table1(
    networks: Tuple[str, ...] = ("alexnet", "vggnet-e", "squeezenet", "googlenet"),
    parts: Tuple[str, ...] = ("485t", "690t"),
    dtypes: Tuple[str, ...] = ("float32", "fixed16"),
) -> Table1Result:
    """Utilization of Single- vs Multi-CLP across the 16 cases."""
    rows: List[Table1Row] = []
    for part in parts:
        for dtype in dtypes:
            for network in networks:
                single = design_for(network, part, dtype, single=True)
                multi = design_for(network, part, dtype, single=False)
                paper = paper_data.TABLE1_UTILIZATION[(part, dtype, network)]
                rows.append(
                    Table1Row(
                        fpga=part,
                        dtype=dtype,
                        network=network,
                        single_util=single.arithmetic_utilization,
                        multi_util=multi.arithmetic_utilization,
                        paper_single=paper[0],
                        paper_multi=paper[1],
                    )
                )
    return Table1Result(rows=tuple(rows))


# ===================================================================== Table 2
@dataclass(frozen=True)
class ConfigRow:
    clp: int
    tn: int
    tm: int
    layers: Tuple[str, ...]
    cycles_k: int
    tile_plans: Tuple[Tuple[int, int], ...] = ()


@dataclass(frozen=True)
class Table2Result:
    scenario: str
    rows: Tuple[ConfigRow, ...]
    overall_cycles_k: int
    paper_overall_cycles_k: int

    def format(self) -> str:
        table_rows = [
            (
                f"CLP{row.clp}",
                row.tn,
                row.tm,
                ", ".join(row.layers),
                row.cycles_k,
            )
            for row in self.rows
        ]
        body = render_table(
            ["CLP", "Tn", "Tm", "layers", "cycles x1000"],
            table_rows,
            title=f"Table 2 [{self.scenario}]",
        )
        return (
            f"{body}\noverall: {self.overall_cycles_k}k cycles "
            f"(paper: {self.paper_overall_cycles_k}k)"
        )


def _config_result(
    design: MultiCLPDesign, scenario: str, paper_overall: int, table: str
) -> Table2Result:
    rows = tuple(
        ConfigRow(
            clp=i,
            tn=clp.tn,
            tm=clp.tm,
            layers=clp.layer_names,
            cycles_k=round(clp.total_cycles / 1000),
            tile_plans=clp.tile_plans,
        )
        for i, clp in enumerate(design.clps)
    )
    return Table2Result(
        scenario=f"{table} {scenario}",
        rows=rows,
        overall_cycles_k=round(design.epoch_cycles / 1000),
        paper_overall_cycles_k=paper_overall,
    )


def table2(scenario: str = "485t_single") -> Table2Result:
    """AlexNet float configurations (Table 2a-2d).

    ``scenario`` is one of ``485t_single``, ``690t_single``,
    ``485t_multi``, ``690t_multi``.
    """
    part, kind = scenario.split("_")
    design = design_for("alexnet", part, "float32", single=kind == "single")
    return _config_result(
        design, scenario, paper_data.TABLE2_OVERALL_CYCLES_K[scenario], "Table2"
    )


def table4(scenario: str = "485t_single") -> Table2Result:
    """SqueezeNet fixed16 configurations (Table 4a-4d)."""
    part, kind = scenario.split("_")
    design = design_for("squeezenet", part, "fixed16", single=kind == "single")
    return _config_result(
        design, scenario, paper_data.TABLE4_OVERALL_CYCLES_K[scenario], "Table4"
    )


# ===================================================================== Table 3
@dataclass(frozen=True)
class ResourceRow:
    scenario: str
    bram: int
    dsp: int
    bandwidth_gbps: float
    utilization: float
    throughput: float
    gops: float
    paper: paper_data.PaperResourceRow


@dataclass(frozen=True)
class Table3Result:
    title: str
    rows: Tuple[ResourceRow, ...]

    def format(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = row.paper
            table_rows.append(
                (
                    row.scenario,
                    f"{row.bram} ({paper.bram})",
                    f"{row.dsp} ({paper.dsp})",
                    f"{row.bandwidth_gbps:.2f} ({paper.bandwidth_gbps:.2f})",
                    f"{row.utilization:.1%} ({paper.utilization:.1%})",
                    f"{row.throughput:.1f} ({paper.throughput:.1f})",
                    f"{row.gops:.1f} ({paper.gops:.1f})",
                )
            )
        return render_table(
            ["design", "BRAM", "DSP", "B/w GB/s", "util", "img/s", "Gop/s"],
            table_rows,
            title=f"{self.title} -- ours (paper)",
        )


def _resource_row(
    design: MultiCLPDesign,
    scenario: str,
    freq_mhz: float,
    paper: paper_data.PaperResourceRow,
    slack: float = 0.02,
) -> ResourceRow:
    bandwidth = design.required_bandwidth_gbps(freq_mhz, slack)
    budget = ResourceBudget(
        dsp=10**9, bram18k=10**9, bandwidth_gbps=bandwidth,
        frequency_mhz=freq_mhz,
    )
    metrics = design.metrics(budget, slack)
    return ResourceRow(
        scenario=scenario,
        bram=design.bram,
        dsp=design.dsp,
        bandwidth_gbps=bandwidth,
        utilization=metrics.arithmetic_utilization,
        throughput=metrics.throughput_images_per_s,
        gops=metrics.gflops,
        paper=paper,
    )


def table3() -> Table3Result:
    """AlexNet float resource usage and throughput at 100 MHz."""
    rows = []
    for part in ("485t", "690t"):
        for kind in ("single", "multi"):
            design = design_for("alexnet", part, "float32", single=kind == "single")
            rows.append(
                _resource_row(
                    design,
                    f"{part} {kind[0].upper()}-CLP",
                    100.0,
                    paper_data.TABLE3_RESOURCES[(part, kind)],
                )
            )
    return Table3Result(title="Table 3: AlexNet float @100MHz", rows=tuple(rows))


def table5() -> Table3Result:
    """SqueezeNet fixed16 resource usage and throughput at 170 MHz."""
    rows = []
    for part in ("485t", "690t"):
        for kind in ("single", "multi"):
            design = design_for("squeezenet", part, "fixed16", single=kind == "single")
            rows.append(
                _resource_row(
                    design,
                    f"{part} {kind[0].upper()}-CLP",
                    170.0,
                    paper_data.TABLE5_RESOURCES[(part, kind)],
                )
            )
    return Table3Result(
        title="Table 5: SqueezeNet fixed16 @170MHz", rows=tuple(rows)
    )


# ================================================================ Tables 6-7
@dataclass(frozen=True)
class ModelVsImplResult:
    title: str
    scenario: str
    implementation: DesignImplementation
    paper_rows: Tuple[paper_data.PaperModelVsImpl, ...]

    def format(self) -> str:
        rows = []
        for i, clp in enumerate(self.implementation.clps):
            paper = self.paper_rows[i] if i < len(self.paper_rows) else None
            rows.append(
                (
                    clp.name,
                    clp.bram_model,
                    clp.bram_impl,
                    f"{paper.bram_model}/{paper.bram_impl}" if paper else "-",
                    clp.dsp_model,
                    clp.dsp_impl,
                    f"{paper.dsp_model}/{paper.dsp_impl}" if paper else "-",
                )
            )
        impl = self.implementation
        rows.append(
            (
                "overall",
                impl.bram_model,
                impl.bram_impl,
                f"{sum(p.bram_model for p in self.paper_rows)}/"
                f"{sum(p.bram_impl for p in self.paper_rows)}",
                impl.dsp_model,
                impl.dsp_impl,
                f"{sum(p.dsp_model for p in self.paper_rows)}/"
                f"{sum(p.dsp_impl for p in self.paper_rows)}",
            )
        )
        return render_table(
            ["CLP", "bram mdl", "bram impl", "paper m/i",
             "dsp mdl", "dsp impl", "paper m/i"],
            rows,
            title=f"{self.title} [{self.scenario}]",
        )


def table6(scenario: str = "485t_single") -> ModelVsImplResult:
    """AlexNet float: model vs (virtual) implementation resources."""
    part, kind = scenario.split("_")
    design = design_for("alexnet", part, "float32", single=kind == "single")
    return ModelVsImplResult(
        title="Table 6: AlexNet float model vs implementation",
        scenario=scenario,
        implementation=implement_design(design),
        paper_rows=tuple(paper_data.TABLE6_MODEL_VS_IMPL.get(scenario, ())),
    )


def table7(scenario: str = "690t_multi") -> ModelVsImplResult:
    """SqueezeNet fixed16: model vs (virtual) implementation resources."""
    part, kind = scenario.split("_")
    design = design_for("squeezenet", part, "fixed16", single=kind == "single")
    return ModelVsImplResult(
        title="Table 7: SqueezeNet fixed model vs implementation",
        scenario=scenario,
        implementation=implement_design(design),
        paper_rows=tuple(paper_data.TABLE7_MODEL_VS_IMPL.get(scenario, ())),
    )


# ================================================================ Tables 8-9
@dataclass(frozen=True)
class ImplementationResult:
    title: str
    scenarios: Tuple[str, ...]
    implementations: Tuple[DesignImplementation, ...]
    paper_rows: Tuple[Optional[paper_data.PaperImplRow], ...]

    def format(self) -> str:
        rows = []
        for scenario, impl, paper in zip(
            self.scenarios, self.implementations, self.paper_rows
        ):
            rows.append(
                (
                    scenario,
                    f"{impl.bram_impl} ({paper.bram})" if paper else impl.bram_impl,
                    f"{impl.dsp_impl} ({paper.dsp})" if paper else impl.dsp_impl,
                    f"{impl.flip_flops} ({paper.flip_flops})"
                    if paper
                    else impl.flip_flops,
                    f"{impl.luts} ({paper.luts})" if paper else impl.luts,
                    f"{impl.power_watts} ({paper.power_watts})"
                    if paper
                    else impl.power_watts,
                )
            )
        return render_table(
            ["design", "BRAM-18K", "DSP", "FF", "LUT", "power W"],
            rows,
            title=f"{self.title} -- ours (paper)",
        )


def table8() -> ImplementationResult:
    """AlexNet float full-FPGA implementation resources and power."""
    scenarios = ("485t_single", "485t_multi", "690t_multi")
    impls, papers = [], []
    for scenario in scenarios:
        part, kind = scenario.split("_")
        design = design_for("alexnet", part, "float32", single=kind == "single")
        impls.append(implement_design(design))
        papers.append(paper_data.TABLE8_RESOURCES.get(scenario))
    return ImplementationResult(
        title="Table 8: AlexNet float implementation",
        scenarios=scenarios,
        implementations=tuple(impls),
        paper_rows=tuple(papers),
    )


def table9() -> ImplementationResult:
    """SqueezeNet fixed16 full-FPGA implementation resources and power."""
    scenario = "690t_multi"
    design = design_for("squeezenet", "690t", "fixed16", single=False)
    return ImplementationResult(
        title="Table 9: SqueezeNet fixed implementation",
        scenarios=(scenario,),
        implementations=(implement_design(design),),
        paper_rows=(paper_data.TABLE9_RESOURCES.get(scenario),),
    )
