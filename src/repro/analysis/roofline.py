"""Roofline / computation-to-communication analysis.

The Single-CLP baseline (Zhang et al. FPGA'15) frames accelerator
design as placing a (CTC ratio, computational roof) point under the
platform roofline.  This module recreates that analysis for any design
of this library, which makes the Multi-CLP advantage visible in
roofline terms: partitioning raises the *achieved* computational roof
(utilization) without moving the bandwidth wall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.design import MultiCLPDesign
from .report import render_table

__all__ = ["RooflinePoint", "roofline_point", "roofline_table"]


@dataclass(frozen=True)
class RooflinePoint:
    """One design placed under a platform roofline."""

    label: str
    ctc_ops_per_byte: float      # computation-to-communication ratio
    peak_gops: float             # all MAC units busy every cycle
    achieved_gops: float         # at the design's real epoch
    bandwidth_wall_gops: float   # CTC * platform bandwidth
    bandwidth_gbps: float        # platform bandwidth assumed

    @property
    def bound(self) -> str:
        """Which roof limits the design: ``compute`` or ``memory``."""
        return (
            "memory"
            if self.bandwidth_wall_gops < self.achieved_gops * 1.001
            else "compute"
        )

    @property
    def utilization(self) -> float:
        return self.achieved_gops / self.peak_gops


def roofline_point(
    design: MultiCLPDesign,
    frequency_mhz: float,
    bandwidth_gbps: Optional[float] = None,
    label: Optional[str] = None,
) -> RooflinePoint:
    """Place a design under the platform roofline.

    ``bandwidth_gbps`` defaults to the design's own 2%-slack
    requirement, i.e. the platform provisioned exactly as the optimizer
    assumed.
    """
    if bandwidth_gbps is None:
        bandwidth_gbps = design.required_bandwidth_gbps(frequency_mhz)
    total_ops = design.network.total_flops  # 2 ops per MAC
    total_bytes = sum(
        transfer.total_bytes(design.dtype)
        for clp in design.clps
        for transfer in clp.transfers
    )
    ctc = total_ops / total_bytes
    cycles_per_second = frequency_mhz * 1e6
    peak_gops = design.total_units * 2 * cycles_per_second / 1e9
    achieved_gops = (
        total_ops * cycles_per_second / design.epoch_cycles / 1e9
    )
    return RooflinePoint(
        label=label or f"{design.network.name} {design.num_clps}-CLP",
        ctc_ops_per_byte=ctc,
        peak_gops=peak_gops,
        achieved_gops=achieved_gops,
        bandwidth_wall_gops=ctc * bandwidth_gbps,
        bandwidth_gbps=bandwidth_gbps,
    )


def roofline_table(
    points: List[RooflinePoint], title: str = "Roofline analysis"
) -> str:
    """Side-by-side roofline comparison of several designs."""
    rows = [
        (
            p.label,
            f"{p.ctc_ops_per_byte:.1f}",
            f"{p.peak_gops:.1f}",
            f"{p.achieved_gops:.1f}",
            f"{p.utilization:.1%}",
            f"{p.bandwidth_wall_gops:.1f}",
            p.bound,
        )
        for p in points
    ]
    return render_table(
        ["design", "CTC op/B", "peak Gop/s", "achieved", "util",
         "bw wall Gop/s", "bound"],
        rows,
        title=title,
    )
