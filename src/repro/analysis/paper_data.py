"""Reference numbers published in the paper (ISCA 2017 / arXiv v2).

Every table and figure of the evaluation section is transcribed here so
the benchmark harness can print paper-vs-reproduction comparisons.  All
cycle counts are in thousands of cycles, utilizations are fractions,
bandwidths in GB/s, throughputs in images/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TABLE1_UTILIZATION",
    "TABLE2_CONFIGS",
    "TABLE3_RESOURCES",
    "TABLE4_CONFIGS",
    "TABLE5_RESOURCES",
    "TABLE6_MODEL_VS_IMPL",
    "TABLE7_MODEL_VS_IMPL",
    "TABLE8_RESOURCES",
    "TABLE9_RESOURCES",
    "FIGURE6_POINTS",
    "FIGURE7_TRENDS",
    "HEADLINE_SPEEDUPS",
    "SECTION32_UTILIZATION",
]

# ----------------------------------------------------------------- Table 1
# Dynamic arithmetic-unit utilization; key: (fpga, dtype, network) ->
# (single_clp, multi_clp).
TABLE1_UTILIZATION: Dict[Tuple[str, str, str], Tuple[float, float]] = {
    ("485t", "float32", "alexnet"): (0.741, 0.954),
    ("485t", "float32", "vggnet-e"): (0.968, 0.975),
    ("485t", "float32", "squeezenet"): (0.780, 0.958),
    ("485t", "float32", "googlenet"): (0.819, 0.969),
    ("690t", "float32", "alexnet"): (0.654, 0.990),
    ("690t", "float32", "vggnet-e"): (0.960, 0.987),
    ("690t", "float32", "squeezenet"): (0.764, 0.967),
    ("690t", "float32", "googlenet"): (0.781, 0.960),
    ("485t", "fixed16", "alexnet"): (0.310, 0.939),
    ("485t", "fixed16", "vggnet-e"): (0.897, 0.973),
    ("485t", "fixed16", "squeezenet"): (0.511, 0.936),
    ("485t", "fixed16", "googlenet"): (0.502, 0.938),
    ("690t", "fixed16", "alexnet"): (0.237, 0.906),
    ("690t", "fixed16", "vggnet-e"): (0.883, 0.961),
    ("690t", "fixed16", "squeezenet"): (0.420, 0.931),
    ("690t", "fixed16", "googlenet"): (0.440, 0.893),
}


# ----------------------------------------------------------------- Table 2
@dataclass(frozen=True)
class PaperClpConfig:
    """One CLP row of Table 2 or Table 4."""

    tn: int
    tm: int
    layers: Tuple[str, ...]
    cycles_k: int  # thousands of cycles for the listed layers


# AlexNet, 32-bit float; layer names use our conv{stage}{half} naming.
TABLE2_CONFIGS: Dict[str, List[PaperClpConfig]] = {
    "485t_single": [
        PaperClpConfig(7, 64, ("conv1a", "conv1b"), 732),
        PaperClpConfig(7, 64, ("conv2a", "conv2b"), 510),
        PaperClpConfig(7, 64, ("conv3a", "conv3b"), 338),
        PaperClpConfig(7, 64, ("conv4a", "conv4b"), 256),
        PaperClpConfig(7, 64, ("conv5a", "conv5b"), 170),
    ],
    "690t_single": [
        PaperClpConfig(9, 64, ("conv1a", "conv1b"), 732),
        PaperClpConfig(9, 64, ("conv2a", "conv2b"), 437),
        PaperClpConfig(9, 64, ("conv3a", "conv3b"), 265),
        PaperClpConfig(9, 64, ("conv4a", "conv4b"), 201),
        PaperClpConfig(9, 64, ("conv5a", "conv5b"), 134),
    ],
    "485t_multi": [
        PaperClpConfig(2, 64, ("conv5a", "conv5b", "conv4a", "conv4b"), 1460),
        PaperClpConfig(1, 96, ("conv3a", "conv3b"), 1558),
        PaperClpConfig(3, 24, ("conv1a", "conv1b"), 1464),
        PaperClpConfig(8, 19, ("conv2a", "conv2b"), 1531),
    ],
    "690t_multi": [
        PaperClpConfig(1, 64, ("conv5a", "conv5b"), 1168),
        PaperClpConfig(1, 96, ("conv4a", "conv4b"), 1168),
        PaperClpConfig(2, 64, ("conv3a", "conv3b"), 1168),
        PaperClpConfig(1, 48, ("conv1a",), 1098),
        PaperClpConfig(1, 48, ("conv1b",), 1098),
        PaperClpConfig(3, 64, ("conv2a", "conv2b"), 1166),
    ],
}

TABLE2_OVERALL_CYCLES_K = {
    "485t_single": 2006,
    "690t_single": 1769,
    "485t_multi": 1558,
    "690t_multi": 1168,
}


# ----------------------------------------------------------------- Table 3
@dataclass(frozen=True)
class PaperResourceRow:
    """One row of Table 3 or Table 5."""

    bram: int
    dsp: int
    bandwidth_gbps: float
    utilization: float
    throughput: float
    gops: float


TABLE3_RESOURCES: Dict[Tuple[str, str], PaperResourceRow] = {
    ("485t", "single"): PaperResourceRow(618, 2240, 1.40, 0.726, 48.85, 65.05),
    ("485t", "multi"): PaperResourceRow(731, 2240, 1.38, 0.951, 63.98, 85.20),
    ("690t", "single"): PaperResourceRow(758, 2880, 1.78, 0.640, 55.40, 73.77),
    ("690t", "multi"): PaperResourceRow(1238, 2880, 1.49, 0.989, 85.55, 113.92),
}


# ----------------------------------------------------------------- Table 4
# SqueezeNet, 16-bit fixed; the paper numbers layers 1-26 in network
# order, so we record only grid sizes and cycle counts.
TABLE4_CONFIGS: Dict[str, List[PaperClpConfig]] = {
    "485t_single": [PaperClpConfig(32, 68, (), 349)],
    "690t_single": [PaperClpConfig(32, 87, (), 331)],
    "485t_multi": [
        PaperClpConfig(6, 16, (), 179),
        PaperClpConfig(3, 64, (), 183),
        PaperClpConfig(4, 64, (), 165),
        PaperClpConfig(8, 64, (), 176),
        PaperClpConfig(8, 128, (), 185),
        PaperClpConfig(16, 10, (), 183),
    ],
    "690t_multi": [
        PaperClpConfig(8, 16, (), 125),
        PaperClpConfig(3, 64, (), 115),
        PaperClpConfig(11, 32, (), 133),
        PaperClpConfig(8, 64, (), 145),
        PaperClpConfig(5, 256, (), 144),
        PaperClpConfig(16, 26, (), 141),
    ],
}

TABLE4_OVERALL_CYCLES_K = {
    "485t_single": 349,
    "690t_single": 331,
    "485t_multi": 185,
    "690t_multi": 145,
}


# ----------------------------------------------------------------- Table 5
TABLE5_RESOURCES: Dict[Tuple[str, str], PaperResourceRow] = {
    ("485t", "single"): PaperResourceRow(400, 2176, 19.7, 0.503, 480.0, 372.2),
    ("485t", "multi"): PaperResourceRow(492, 2240, 15.3, 0.930, 913.4, 708.3),
    ("690t", "single"): PaperResourceRow(480, 2784, 20.5, 0.413, 504.1, 391.0),
    ("690t", "multi"): PaperResourceRow(635, 2880, 19.5, 0.929, 1173.0, 909.7),
}


# ------------------------------------------------------------- Tables 6-7
@dataclass(frozen=True)
class PaperModelVsImpl:
    """One CLP row of Table 6 or 7: model and implemented resources."""

    bram_model: int
    bram_impl: int
    dsp_model: int
    dsp_impl: int


TABLE6_MODEL_VS_IMPL: Dict[str, List[PaperModelVsImpl]] = {
    "485t_single": [PaperModelVsImpl(618, 698, 2240, 2309)],
    "485t_multi": [
        PaperModelVsImpl(130, 132, 640, 689),
        PaperModelVsImpl(193, 195, 480, 529),
        PaperModelVsImpl(186, 242, 360, 410),
        PaperModelVsImpl(222, 243, 760, 815),
    ],
    "690t_multi": [
        PaperModelVsImpl(129, 131, 320, 369),
        PaperModelVsImpl(193, 195, 480, 529),
        PaperModelVsImpl(130, 132, 640, 689),
        PaperModelVsImpl(166, 226, 240, 290),
        PaperModelVsImpl(160, 162, 240, 290),
        PaperModelVsImpl(460, 590, 960, 1010),
    ],
}

TABLE7_MODEL_VS_IMPL: Dict[str, List[PaperModelVsImpl]] = {
    "690t_multi": [
        PaperModelVsImpl(24, 42, 128, 227),
        PaperModelVsImpl(152, 218, 192, 264),
        PaperModelVsImpl(44, 78, 352, 508),
        PaperModelVsImpl(72, 138, 512, 592),
        PaperModelVsImpl(259, 520, 1280, 1416),
        PaperModelVsImpl(84, 112, 416, 478),
    ],
}


# ------------------------------------------------------------- Tables 8-9
@dataclass(frozen=True)
class PaperImplRow:
    """One column of Table 8/9: full-design implementation resources."""

    bram: int
    dsp: int
    flip_flops: int
    luts: int
    power_watts: float


TABLE8_RESOURCES: Dict[str, PaperImplRow] = {
    "485t_single": PaperImplRow(698, 2309, 219815, 146325, 6.6),
    "485t_multi": PaperImplRow(812, 2443, 270991, 176876, 7.6),
    "690t_multi": PaperImplRow(1436, 3177, 348049, 236877, 10.2),
}

TABLE9_RESOURCES: Dict[str, PaperImplRow] = {
    "690t_multi": PaperImplRow(1108, 3494, 161411, 133854, 7.2),
}


# ---------------------------------------------------------------- Figure 6
# Named points on the BRAM/bandwidth tradeoff curves (AlexNet float).
FIGURE6_POINTS: Dict[str, Tuple[int, float]] = {
    "A (485t iso-bandwidth)": (731, 1.38),
    "B (485t iso-bram)": (619, 1.46),
    "C (690t iso-bandwidth)": (1238, 1.49),
    "D (690t iso-bram)": (1075, 2.44),
}


# ---------------------------------------------------------------- Figure 7
# Qualitative trend: Multi/Single throughput ratio vs DSP budget.
FIGURE7_TRENDS: Dict[int, float] = {
    2240: 1.3,
    9600: 3.3,
}


# ------------------------------------------------------------- headline
# Multi-CLP over Single-CLP throughput, best-case per network (Abstract,
# Sections 1 and 6.2). AlexNet is on the 690T with fixed16.
HEADLINE_SPEEDUPS: Dict[str, float] = {
    "alexnet": 3.8,
    "squeezenet": 2.2,
    "googlenet": 2.0,
    "vggnet-e": 1.01,
}

# Section 3.2 motivating example: SqueezeNet float on the 690T
# Single-CLP (Tn=9, Tm=64).
SECTION32_UTILIZATION = {
    "grid": (9, 64),
    "layer1": 0.333,
    "layer2": 0.222,
    "overall": 0.764,
}
