"""Plain-text rendering helpers for experiment reports."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_ratio", "ascii_plot"]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table: headers, a rule, then the rows."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_ratio(ours: float, paper: float) -> str:
    """'ours (paper, ratio)' comparison cell."""
    if paper == 0:
        return f"{ours:.2f} (paper 0)"
    return f"{ours:.2f} vs {paper:.2f} ({ours / paper:.2f}x)"


def ascii_plot(
    points: Sequence[tuple],
    width: int = 68,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Minimal scatter plot for terminal benchmark output."""
    if not points:
        return "(no points)"
    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    lines = [f"{y_label} ({y_lo:.2f} .. {y_hi:.2f})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} ({x_lo:.0f} .. {x_hi:.0f})")
    return "\n".join(lines)
