"""Rendering helpers and the run-report harness.

Two layers:

* Plain-text primitives (:func:`render_table`, :func:`ascii_plot`,
  :func:`sparkline`) used by every ``format()`` method in the repo.
* The Markdown report harness: :func:`render_run_report` reduces one or
  many serve/fleet run records to a one-page summary — run table,
  cross-run/seed aggregates, SLO attainment, resilience, time-series
  sparklines, and the benchmark history trajectory — and
  :func:`render_report` dispatches ``repro report``'s argument (a run
  JSON, a directory of them, or a DSE result store).
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "render_table",
    "format_ratio",
    "format_sig",
    "ascii_plot",
    "sparkline",
    "markdown_table",
    "load_run",
    "render_run_report",
    "render_store_report",
    "render_report",
]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Fixed-width table: headers, a rule, then the rows."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_sig(value: float) -> str:
    """Float cell formatting that keeps small rates visible.

    A flat ``%.2f`` rounds sub-0.01 magnitudes to ``0.00`` — a 0.4%
    drop rate rendered as zero.  Values at or above 0.1 (and exact
    zeros) keep the familiar two decimals; smaller magnitudes switch to
    three significant digits.
    """
    if math.isnan(value) or math.isinf(value):
        return str(value)
    if value == 0 or abs(value) >= 0.1:
        return f"{value:.2f}"
    return f"{value:.3g}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return format_sig(value)
    return str(value)


def format_ratio(ours: float, paper: float) -> str:
    """'ours (paper, ratio)' comparison cell."""
    if paper == 0:
        return f"{ours:.2f} (paper 0)"
    return f"{ours:.2f} vs {paper:.2f} ({ours / paper:.2f}x)"


def ascii_plot(
    points: Sequence[tuple],
    width: int = 68,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    marker: str = "*",
) -> str:
    """Minimal scatter plot for terminal benchmark output.

    Degenerate axes are explicit: a constant-y (or single-point) series
    renders on a midline with a ``(constant)`` annotation instead of a
    zero-width ``lo .. hi`` range, and likewise for constant x.
    """
    if not points:
        return "(no points)"
    xs = [float(p[0]) for p in points]
    ys = [float(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    constant_x = x_hi == x_lo
    constant_y = y_hi == y_lo
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    mid_row = height // 2
    mid_col = width // 2
    if constant_y:
        grid[mid_row] = ["-"] * width
    for x, y in zip(xs, ys):
        if constant_x:
            col = mid_col
        else:
            col = int((x - x_lo) / x_span * (width - 1))
        if constant_y:
            row = mid_row
        else:
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = marker
    if constant_y:
        lines = [f"{y_label} ({y_lo:.2f}, constant)"]
    else:
        lines = [f"{y_label} ({y_lo:.2f} .. {y_hi:.2f})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    if constant_x:
        lines.append(f" {x_label} ({x_lo:.0f}, constant)")
    else:
        lines.append(f" {x_label} ({x_lo:.0f} .. {x_hi:.0f})")
    return "\n".join(lines)


#: Eight block heights; a middle dash marks constant series, a dot gaps.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[Optional[float]],
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One-line block-character plot; ``None`` values render as gaps."""
    present = [v for v in values if v is not None]
    if not present:
        return "·" * len(values)
    low = min(present) if lo is None else lo
    high = max(present) if hi is None else hi
    if high == low:
        return "".join("·" if v is None else "▄" for v in values)
    span = high - low
    chars = []
    for value in values:
        if value is None:
            chars.append("·")
            continue
        level = (value - low) / span
        chars.append(_SPARK_BLOCKS[min(7, max(0, int(level * 8)))])
    return "".join(chars)


def markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(_cell(v) for v in row) + " |")
    return "\n".join(lines)


# --------------------------------------------------------------------- loading


def load_run(path: str) -> Union["ServeResult", "FleetResult"]:
    """Load a run JSON, sniffing serve vs fleet records by shape."""
    from ..core.serialize import fleet_result_from_dict, serve_result_from_dict

    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"{path} does not hold a run record")
    if "balancer" in data and "replicas" in data:
        return fleet_result_from_dict(data)
    if "design_label" in data:
        return serve_result_from_dict(data)
    raise ValueError(
        f"{path} is neither a serve nor a fleet run record "
        "(missing 'design_label' / 'balancer')"
    )


def _run_kind(result: Any) -> str:
    return "fleet" if hasattr(result, "balancer") else "serve"


def _run_label(result: Any) -> str:
    if _run_kind(result) == "fleet":
        return f"{result.balancer} x{result.num_replicas}"
    return result.design_label


def _worst_p99_ms(result: Any) -> Optional[float]:
    worst = None
    for tenant in result.tenants:
        if tenant.latency is None:
            continue
        p99 = result.cycles_to_ms(tenant.latency.p99)
        worst = p99 if worst is None else max(worst, p99)
    return worst


def _goodput_rps(result: Any) -> float:
    return sum(
        result.rate_to_rps(t.completed_rate_per_cycle(result.horizon_cycles))
        for t in result.tenants
    )


def _shed_rate(result: Any) -> float:
    arrivals = sum(t.arrivals for t in result.tenants)
    shed = sum(
        t.drops + t.lost + t.rejected + t.expired + t.timed_out
        for t in result.tenants
    )
    return shed / arrivals if arrivals else 0.0


# ------------------------------------------------------------------- sections


def _runs_section(results: Sequence[Any], sources: Sequence[str]) -> str:
    # Overload columns appear only when some run produced the class —
    # the same conditional-column rule the fleet table uses for `lost`,
    # keeping overload-free reports byte-identical to older ones.
    show_rejected = any(
        sum(t.rejected for t in r.tenants) > 0 for r in results
    )
    show_expired = any(
        sum(t.expired for t in r.tenants) > 0 for r in results
    )
    rows = []
    for result, source in zip(results, sources):
        p99 = _worst_p99_ms(result)
        row = [
            os.path.basename(source),
            _run_kind(result),
            _run_label(result),
            result.seed,
            f"{result.cycles_to_ms(result.horizon_cycles):.1f}",
            sum(t.arrivals for t in result.tenants),
            sum(t.completions for t in result.tenants),
            f"{_goodput_rps(result):.1f}",
            "-" if p99 is None else f"{p99:.2f}",
            f"{_shed_rate(result):.2%}",
        ]
        if show_rejected:
            row.append(sum(t.rejected for t in result.tenants))
        if show_expired:
            row.append(sum(t.expired for t in result.tenants))
        rows.append(tuple(row))
    headers = [
        "run", "kind", "label", "seed", "horizon ms", "arrivals",
        "done", "goodput r/s", "worst p99 ms", "shed",
    ]
    if show_rejected:
        headers.append("rejected")
    if show_expired:
        headers.append("expired")
    table = markdown_table(tuple(headers), rows)
    return f"## Runs\n\n{table}"


def _aggregate_section(results: Sequence[Any]) -> Optional[str]:
    """Cross-run/seed aggregates, grouped by run label."""
    if len(results) < 2:
        return None
    groups: Dict[str, List[Any]] = {}
    for result in results:
        groups.setdefault(_run_label(result), []).append(result)
    rows = []
    for label in sorted(groups):
        members = groups[label]
        goodputs = [_goodput_rps(r) for r in members]
        p99s = [p for p in (_worst_p99_ms(r) for r in members) if p is not None]
        sheds = [_shed_rate(r) for r in members]
        seeds = sorted({r.seed for r in members})
        rows.append(
            (
                label,
                len(members),
                ",".join(str(s) for s in seeds[:6])
                + ("…" if len(seeds) > 6 else ""),
                f"{sum(goodputs) / len(goodputs):.1f}",
                f"{min(goodputs):.1f}",
                f"{max(goodputs):.1f}",
                "-" if not p99s else f"{sum(p99s) / len(p99s):.2f}",
                "-" if not p99s else f"{max(p99s):.2f}",
                f"{max(sheds):.2%}",
            )
        )
    table = markdown_table(
        (
            "label", "runs", "seeds", "goodput mean", "min", "max",
            "p99 mean ms", "p99 max ms", "worst shed",
        ),
        rows,
    )
    return f"## Aggregate across runs\n\n{table}"


def _slo_section(results: Sequence[Any], slo: Optional["SLOSpec"]) -> str:
    from ..serve.slo import SLOSpec, evaluate_slo

    spec = slo if slo is not None else SLOSpec()
    note = (
        ""
        if slo is not None
        else "\n*(no SLO given: scored against the default zero-drop spec)*"
    )
    rows = []
    for index, result in enumerate(results):
        report = evaluate_slo(result, spec)
        for verdict in report.tenants:
            rows.append(
                (
                    index,
                    verdict.name,
                    "yes" if verdict.meets else "**NO**",
                    "-" if verdict.p99_ms is None else f"{verdict.p99_ms:.2f}",
                    f"{verdict.shed_rate:.2%}",
                    f"{verdict.throughput_rps:.1f}",
                    "; ".join(verdict.violations) or "-",
                )
            )
    table = markdown_table(
        ("run", "tenant", "meets", "p99 ms", "shed", "goodput r/s", "violations"),
        rows,
    )
    return f"## SLO attainment\n{note}\n\n{table}"


def _resilience_section(results: Sequence[Any]) -> Optional[str]:
    rows = []
    for index, result in enumerate(results):
        resilience = getattr(result, "resilience", None)
        if resilience is None:
            continue
        ttr = resilience.mean_time_to_recover_cycles
        ttd = resilience.mean_time_to_detect_cycles
        during, outside = resilience.during, resilience.outside
        rows.append(
            (
                index,
                result.scenario or "-",
                len(result.incidents),
                f"{resilience.availability:.2%}",
                "-" if ttr is None else f"{result.cycles_to_ms(ttr):.2f}",
                "-" if ttd is None else f"{result.cycles_to_ms(ttd):.2f}",
                resilience.lost_requests,
                "-"
                if during.p99_cycles is None
                else f"{result.cycles_to_ms(during.p99_cycles):.2f}",
                "-"
                if outside.p99_cycles is None
                else f"{result.cycles_to_ms(outside.p99_cycles):.2f}",
            )
        )
    if not rows:
        return None
    table = markdown_table(
        (
            "run", "scenario", "incidents", "availability", "mean ttr ms",
            "mean ttd ms", "lost", "p99 during ms", "p99 outside ms",
        ),
        rows,
    )
    return f"## Resilience\n\n{table}"


def _overload_section(results: Sequence[Any]) -> Optional[str]:
    """Per-priority-class overload outcome for runs that recorded one."""
    rows = []
    for index, result in enumerate(results):
        overload = getattr(result, "overload", None)
        if overload is None:
            continue
        for stats in overload.classes:
            rows.append(
                (
                    index,
                    overload.queue_policy,
                    f"p{stats.priority}",
                    ", ".join(stats.tenants),
                    stats.arrivals,
                    stats.good,
                    stats.rejected,
                    stats.expired,
                    stats.late,
                    stats.retries,
                    overload.brownout_steps,
                )
            )
    if not rows:
        return None
    table = markdown_table(
        (
            "run", "discipline", "class", "tenants", "arrivals", "good",
            "rejected", "expired", "late", "retries", "brownout steps",
        ),
        rows,
    )
    return f"## Overload control\n\n{table}"


#: Series prefixes worth a sparkline, in display order; p99 converts
#: to milliseconds through the run's clock.
_SPARK_PREFIXES = (
    "queue_depth/", "in_flight/", "arrivals/", "drops/", "lost/",
    "p99_cycles/", "util/", "outstanding/", "healthy_replicas",
    "detected_healthy_replicas", "timeouts/", "errors/", "failovers/",
    "healthy/",
)


def _timeseries_section(results: Sequence[Any]) -> Optional[str]:
    blocks: List[str] = []
    for index, result in enumerate(results):
        timeseries = getattr(result, "timeseries", None)
        if timeseries is None:
            continue
        window_ms = result.cycles_to_ms(timeseries.window_cycles)
        lines = [
            f"run {index}: {len(timeseries.times)} windows x "
            f"{window_ms:.2f} ms"
        ]
        name_width = max(len(name) for name in timeseries.names())
        for prefix in _SPARK_PREFIXES:
            for name in timeseries.names():
                if not name.startswith(prefix):
                    continue
                values: List[Optional[float]] = list(timeseries.get(name))
                label = name
                if prefix == "p99_cycles/":
                    values = [
                        None if v is None else result.cycles_to_ms(v)
                        for v in values
                    ]
                    label = name.replace("p99_cycles/", "p99_ms/")
                present = [v for v in values if v is not None]
                if not present:
                    stats = "(no samples)"
                elif min(present) == max(present):
                    stats = f"= {format_sig(min(present))} (constant)"
                else:
                    stats = (
                        f"{format_sig(min(present))} .. "
                        f"{format_sig(max(present))}"
                    )
                lines.append(
                    f"  {label.ljust(name_width)}  {sparkline(values)}  {stats}"
                )
        blocks.append("\n".join(lines))
    if not blocks:
        return None
    body = "\n\n".join(f"```text\n{block}\n```" for block in blocks)
    return f"## Time series\n\n{body}"


def _bench_section(history_path: str) -> Optional[str]:
    """Perf trajectory from the committed BENCH ``history.jsonl``."""
    if not os.path.exists(history_path):
        return None
    trajectory: Dict[str, List[Tuple[str, float, bool]]] = {}
    with open(history_path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # tolerate corrupt lines like the result store
            commit = str(record.get("commit", "?"))
            for name, entry in sorted(record.get("entries", {}).items()):
                rps = entry.get("requests_per_s")
                if rps is None:
                    continue
                trajectory.setdefault(name, []).append(
                    (commit, float(rps), bool(entry.get("smoke", False)))
                )
    if not trajectory:
        return None
    rows = []
    for name in sorted(trajectory):
        points = trajectory[name]
        values = [rps for _, rps, _ in points]
        first, last = values[0], values[-1]
        delta = (last - first) / first * 100.0 if first else 0.0
        modes = {smoke for _, _, smoke in points}
        rows.append(
            (
                name,
                len(points),
                sparkline(values),
                f"{last:,.0f}",
                f"{delta:+.1f}%",
                "smoke" if modes == {True}
                else "full" if modes == {False} else "mixed",
            )
        )
    table = markdown_table(
        ("benchmark", "points", "trend", "latest r/s", "since first", "mode"),
        rows,
    )
    return f"## Benchmark trajectory\n\n{table}"


# --------------------------------------------------------------------- report


def render_run_report(
    results: Sequence[Any],
    sources: Optional[Sequence[str]] = None,
    *,
    title: str = "Run report",
    slo: Optional["SLOSpec"] = None,
    history_path: Optional[str] = None,
) -> str:
    """One-page Markdown summary of one or more serve/fleet runs."""
    if not results:
        raise ValueError("no runs to report on")
    if sources is None:
        sources = [f"run {index}" for index in range(len(results))]
    sections: List[Optional[str]] = [
        f"# {title}",
        _runs_section(results, sources),
        _aggregate_section(results),
        _slo_section(results, slo),
        _resilience_section(results),
        _overload_section(results),
        _timeseries_section(results),
    ]
    if history_path is not None:
        sections.append(_bench_section(history_path))
    return "\n\n".join(s for s in sections if s is not None) + "\n"


def render_store_report(path: str, *, title: str = "Sweep report") -> str:
    """Markdown summary of a DSE result store (a ``.jsonl`` file)."""
    from ..dse.store import ResultStore

    store = ResultStore(path)
    solved = [r for r in store.results() if r.ok]
    lines = [f"# {title}", "", f"```text\n{store.describe()}\n```"]
    if solved:
        best = sorted(
            solved, key=lambda r: r.metric("throughput") or 0.0, reverse=True
        )[:10]
        rows = [
            (
                r.point.network,
                r.point.budget_label,
                r.point.dtype,
                r.point.mode,
                int(r.metric("num_clps") or 0),
                f"{r.metric('throughput') or 0.0:.2f}",
                f"{r.metric('utilization') or 0.0:.1%}",
                f"{r.elapsed_s:.2f}",
            )
            for r in best
        ]
        table = markdown_table(
            (
                "network", "budget", "dtype", "mode", "CLPs", "img/s",
                "util", "solve s",
            ),
            rows,
        )
        lines += ["", "## Top points by throughput", "", table]
    return "\n".join(lines) + "\n"


def render_report(
    path: str,
    *,
    slo: Optional["SLOSpec"] = None,
    history_path: Optional[str] = None,
) -> str:
    """Render ``repro report``'s argument, whatever shape it is.

    A ``.jsonl`` file is a DSE result store; a ``.json`` file is one
    serve/fleet run; a directory is scanned for run JSONs (aggregated
    into one report).
    """
    if os.path.isdir(path):
        candidates = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".json")
        )
        results, sources = [], []
        for candidate in candidates:
            try:
                results.append(load_run(candidate))
            except (ValueError, KeyError):
                continue  # designs, scenario specs — not run records
            sources.append(candidate)
        if not results:
            raise ValueError(f"no run records found under {path}")
        return render_run_report(
            results, sources, slo=slo, history_path=history_path
        )
    if path.endswith(".jsonl"):
        return render_store_report(path)
    return render_run_report(
        [load_run(path)], [path], slo=slo, history_path=history_path
    )
