"""Experiment harness: paper reference data, tables, and figures."""

from . import paper_data
from .figures import Figure7Result, TradeoffCurve, figure6, figure7
from .report import (
    ascii_plot,
    format_ratio,
    format_sig,
    load_run,
    markdown_table,
    render_report,
    render_run_report,
    render_store_report,
    render_table,
    sparkline,
)
from .roofline import RooflinePoint, roofline_point, roofline_table
from .visualize import (
    compare_single_vs_multi,
    partition_summary,
    schedule_gantt,
    utilization_bars,
)
from .tables import (
    design_for,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
)

__all__ = [
    "paper_data",
    "design_for",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "figure6",
    "figure7",
    "TradeoffCurve",
    "Figure7Result",
    "render_table",
    "format_ratio",
    "format_sig",
    "ascii_plot",
    "sparkline",
    "markdown_table",
    "load_run",
    "render_run_report",
    "render_store_report",
    "render_report",
    "schedule_gantt",
    "utilization_bars",
    "partition_summary",
    "compare_single_vs_multi",
    "RooflinePoint",
    "roofline_point",
    "roofline_table",
]
