"""OptimizeMemory: BRAM partitioning and (Tr, Tc) tile planning (Sec. 4.3).

For each partition candidate from OptimizeCompute, choose every layer's
(Tr, Tc) tile sizes.  Tiles do not change compute cycles (the cycle model
has no Tr/Tc term); they trade on-chip buffer capacity against off-chip
bandwidth: bigger tiles mean fewer weight re-fetches but larger banks.

Per CLP the search builds a Pareto frontier of (BRAM, transfer) points;
the frontiers are merged across CLPs to allocate the BRAM budget, which
also yields the system-level tradeoff curve of Figure 6.  Structures that
do not depend on the cycle target are memoized, mirroring the paper's
note that both optimization steps "use memoization to avoid redundant
work".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import ceil
from typing import List, Optional, Sequence, Tuple

from ..core.bandwidth import LayerTransfer, layer_transfer, min_bandwidth_for_cycles
from ..core.cost_model import bram_count, buffer_spec
from ..core.datatypes import DataType
from ..core.layer import ConvLayer, input_extent
from .compute import CLPCandidate, PartitionCandidate

__all__ = [
    "TilePoint",
    "ClpMemoryPlan",
    "MemorySolution",
    "tile_candidates",
    "clp_pareto",
    "optimize_memory",
    "system_tradeoff_curve",
]

#: Cap on Pareto points kept per CLP and per merged curve; keeps the
#: cross-CLP merge polynomial while preserving the curve's shape.
MAX_CURVE_POINTS = 160

#: Cap on the number of input/output bank-size thresholds swept per CLP.
MAX_CAPS = 24


@dataclass(frozen=True)
class TilePoint:
    """One (BRAM, bandwidth) operating point of a CLP."""

    bram: int
    bandwidth_bytes_per_cycle: float
    tile_plans: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class ClpMemoryPlan:
    """Chosen operating point for one CLP."""

    candidate: CLPCandidate
    point: TilePoint


@dataclass(frozen=True)
class MemorySolution:
    """A feasible memory allocation for a whole partition candidate."""

    plans: Tuple[ClpMemoryPlan, ...]

    @property
    def total_bram(self) -> int:
        return sum(plan.point.bram for plan in self.plans)

    @property
    def total_bandwidth_bytes_per_cycle(self) -> float:
        return sum(plan.point.bandwidth_bytes_per_cycle for plan in self.plans)


def _tile_sizes(extent: int) -> List[int]:
    """Distinct tile sizes worth considering along one dimension.

    The values ``ceil(extent/i)`` are exactly the tile sizes that change
    the number of tile steps, which transfer volume depends on.
    """
    sizes = {extent}
    for steps in range(1, extent + 1):
        size = ceil(extent / steps)
        sizes.add(size)
        if size == 1:
            break
    return sorted(sizes)


@lru_cache(maxsize=None)
def tile_candidates(
    layer: ConvLayer, tn: int, tm: int
) -> Tuple[Tuple[int, int, LayerTransfer], ...]:
    """Pareto-relevant (Tr, Tc, transfer) tile options for a layer.

    Options dominated in (input-bank words, output-bank words, transfer
    volume) are dropped.  Results are memoized: the optimizer re-queries
    the same (layer, grid) pairs across target-relaxation iterations.
    """
    raw: List[Tuple[int, int, LayerTransfer]] = []
    for tr in _tile_sizes(layer.r):
        for tc in _tile_sizes(layer.c):
            raw.append((tr, tc, layer_transfer(layer, tn, tm, tr, tc)))
    raw.sort(key=lambda opt: opt[2].total_words)
    kept: List[Tuple[int, int, LayerTransfer]] = []
    kept_banks: List[Tuple[int, int]] = []
    for tr, tc, transfer in raw:
        in_words = input_extent(tr, layer.s, layer.k) * input_extent(
            tc, layer.s, layer.k
        )
        out_words = tr * tc
        if any(
            k_in <= in_words and k_out <= out_words
            for k_in, k_out in kept_banks
        ):
            continue  # an earlier (cheaper-transfer) option needs no more BRAM
        kept.append((tr, tc, transfer))
        kept_banks.append((in_words, out_words))
    return tuple(kept)


def _sample(values: List[int], limit: int) -> List[int]:
    if len(values) <= limit:
        return values
    stride = (len(values) - 1) / (limit - 1)
    picked = sorted({values[round(i * stride)] for i in range(limit)})
    return picked


@dataclass(frozen=True)
class _CurvePoint:
    """Target-independent skeleton of a CLP operating point."""

    bram: int
    total_words: int
    tile_plans: Tuple[Tuple[int, int], ...]
    transfers: Tuple[LayerTransfer, ...]


def _clp_curve_structure(
    candidate: CLPCandidate, dtype: DataType
) -> Tuple[_CurvePoint, ...]:
    """The (BRAM, transfer-volume) frontier of one CLP.

    Independent of the cycle target; reused across relaxation steps.
    """
    per_layer = [
        tile_candidates(layer, candidate.tn, candidate.tm)
        for layer in candidate.layers
    ]
    in_caps = sorted(
        {
            input_extent(tr, layer.s, layer.k)
            * input_extent(tc, layer.s, layer.k)
            for layer, options in zip(candidate.layers, per_layer)
            for tr, tc, _ in options
        }
    )
    out_caps = sorted(
        {tr * tc for options in per_layer for tr, tc, _ in options}
    )
    in_caps = _sample(in_caps, MAX_CAPS)
    out_caps = _sample(out_caps, MAX_CAPS)

    points: List[_CurvePoint] = []
    for in_cap in in_caps:
        for out_cap in out_caps:
            plans: List[Tuple[int, int]] = []
            transfers: List[LayerTransfer] = []
            feasible = True
            for layer, options in zip(candidate.layers, per_layer):
                best: Optional[Tuple[int, int, LayerTransfer]] = None
                for tr, tc, transfer in options:
                    in_words = input_extent(tr, layer.s, layer.k) * input_extent(
                        tc, layer.s, layer.k
                    )
                    if in_words > in_cap or tr * tc > out_cap:
                        continue
                    if best is None or transfer.total_words < best[2].total_words:
                        best = (tr, tc, transfer)
                if best is None:
                    feasible = False
                    break
                plans.append((best[0], best[1]))
                transfers.append(best[2])
            if not feasible:
                continue
            spec = buffer_spec(candidate.layers, plans)
            bram = bram_count(candidate.tn, candidate.tm, spec, dtype)
            points.append(
                _CurvePoint(
                    bram=bram,
                    total_words=sum(t.total_words for t in transfers),
                    tile_plans=tuple(plans),
                    transfers=tuple(transfers),
                )
            )
    # Pareto prune on (bram, total transfer volume).
    points.sort(key=lambda p: (p.bram, p.total_words))
    pruned: List[_CurvePoint] = []
    best_words = None
    for point in points:
        if best_words is None or point.total_words < best_words:
            pruned.append(point)
            best_words = point.total_words
    return tuple(pruned[:MAX_CURVE_POINTS])


# The structure cache is keyed by the CLP's identity (grid + layers).
_STRUCTURE_CACHE: dict = {}


def _candidate_key(candidate: CLPCandidate) -> Tuple:
    return (
        candidate.tn,
        candidate.tm,
        tuple(layer.name for layer in candidate.layers),
        tuple(layer.dims for layer in candidate.layers),
    )


def _structure_for(
    candidate: CLPCandidate, dtype: DataType
) -> Tuple[_CurvePoint, ...]:
    key = (_candidate_key(candidate), dtype)
    if key not in _STRUCTURE_CACHE:
        _STRUCTURE_CACHE[key] = _clp_curve_structure(candidate, dtype)
    return _STRUCTURE_CACHE[key]


def clp_pareto(
    candidate: CLPCandidate,
    dtype: DataType,
    cycle_budget: float,
) -> List[TilePoint]:
    """The (BRAM, bandwidth) frontier of one CLP.

    ``cycle_budget`` is the epoch target including the global slack; a
    point's bandwidth is the smallest transfer rate that lets the CLP
    finish its layers within the budget at that point's tile plans.
    """
    structure = _structure_for(candidate, dtype)
    points = [
        TilePoint(
            bram=point.bram,
            bandwidth_bytes_per_cycle=min_bandwidth_for_cycles(
                point.transfers, dtype, cycle_budget
            ),
            tile_plans=point.tile_plans,
        )
        for point in structure
    ]
    # The bandwidth ordering can differ from the volume ordering; prune
    # again on the realised metric.
    points.sort(key=lambda p: (p.bram, p.bandwidth_bytes_per_cycle))
    pruned: List[TilePoint] = []
    best = float("inf")
    for point in points:
        if point.bandwidth_bytes_per_cycle < best - 1e-12:
            pruned.append(point)
            best = point.bandwidth_bytes_per_cycle
    return pruned


def _merge_curves(
    curves: Sequence[List[TilePoint]],
) -> List[Tuple[int, float, Tuple[int, ...]]]:
    """Combine per-CLP curves into a system frontier.

    Returns (total bram, total bandwidth, point index per CLP) tuples,
    Pareto-pruned and size-capped after every merge step.
    """
    merged: List[Tuple[int, float, Tuple[int, ...]]] = [(0, 0.0, ())]
    for curve in curves:
        combined = [
            (
                bram + point.bram,
                bandwidth + point.bandwidth_bytes_per_cycle,
                choice + (idx,),
            )
            for bram, bandwidth, choice in merged
            for idx, point in enumerate(curve)
        ]
        combined.sort(key=lambda item: (item[0], item[1]))
        pruned: List[Tuple[int, float, Tuple[int, ...]]] = []
        best_bw = float("inf")
        for item in combined:
            if item[1] < best_bw - 1e-12:
                pruned.append(item)
                best_bw = item[1]
        if len(pruned) > MAX_CURVE_POINTS:
            stride = len(pruned) / MAX_CURVE_POINTS
            sampled = [pruned[int(i * stride)] for i in range(MAX_CURVE_POINTS)]
            if sampled[-1] is not pruned[-1]:
                sampled.append(pruned[-1])
            pruned = sampled
        merged = pruned
    return merged


def optimize_memory(
    candidate: PartitionCandidate,
    dtype: DataType,
    bram_budget: int,
    cycle_target: float,
    bandwidth_budget_bytes_per_cycle: Optional[float] = None,
    slack: float = 0.02,
) -> Optional[MemorySolution]:
    """Choose tile plans and a BRAM allocation for a partition candidate.

    Returns the minimum-bandwidth solution fitting the BRAM budget (or,
    under a bandwidth budget, the smallest-BRAM solution meeting it); or
    ``None`` if nothing fits.
    """
    cycle_budget = cycle_target * (1 + slack)
    curves = [clp_pareto(clp, dtype, cycle_budget) for clp in candidate.clps]
    if any(not curve for curve in curves):
        return None
    merged = _merge_curves(curves)
    feasible = [item for item in merged if item[0] <= bram_budget]
    if not feasible:
        return None
    if bandwidth_budget_bytes_per_cycle is not None:
        feasible = [
            item
            for item in feasible
            if item[1] <= bandwidth_budget_bytes_per_cycle
        ]
        if not feasible:
            return None
        chosen = feasible[0]  # bram-ascending: smallest BRAM that meets bw
    else:
        chosen = min(feasible, key=lambda item: item[1])
    plans = tuple(
        ClpMemoryPlan(candidate=clp, point=curve[idx])
        for clp, curve, idx in zip(candidate.clps, curves, chosen[2])
    )
    return MemorySolution(plans=plans)


def system_tradeoff_curve(
    candidate: PartitionCandidate,
    dtype: DataType,
    cycle_target: float,
    slack: float = 0.02,
) -> List[Tuple[int, float]]:
    """The Figure 6 curve: (BRAM, bandwidth bytes/cycle) frontier."""
    cycle_budget = cycle_target * (1 + slack)
    curves = [clp_pareto(clp, dtype, cycle_budget) for clp in candidate.clps]
    merged = _merge_curves(curves)
    return [(bram, bandwidth) for bram, bandwidth, _ in merged]
