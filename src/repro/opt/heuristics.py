"""Layer-ordering heuristics for OptimizeCompute (Section 4.3).

The optimizer only considers layer-to-CLP assignments where each CLP
computes a *contiguous* run of layers in a heuristic order, pruning the
exponential assignment space.  The paper suggests two orders:

* **compute-to-data ratio** for bandwidth-limited accelerators, grouping
  layers with similar transfer pressure;
* **(N, M) Euclidean distance** for compute-bound accelerators, grouping
  layers whose dimensions suit similar (Tn, Tm) grids.  We realise this
  as a greedy nearest-neighbour chain through (N, M) space.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from ..core.layer import ConvLayer

__all__ = [
    "order_natural",
    "order_by_compute_to_data",
    "order_by_nm_distance",
    "get_ordering",
    "ORDERINGS",
]


def order_natural(layers: Sequence[ConvLayer]) -> List[ConvLayer]:
    """Keep the network's own layer order."""
    return list(layers)


def order_by_compute_to_data(layers: Sequence[ConvLayer]) -> List[ConvLayer]:
    """Sort by MACs-per-word, descending (bandwidth-limited heuristic)."""
    return sorted(
        layers, key=lambda layer: layer.compute_to_data_ratio, reverse=True
    )


def _nm_distance(a: ConvLayer, b: ConvLayer) -> float:
    return math.hypot(a.n - b.n, a.m - b.m)


def order_by_nm_distance(layers: Sequence[ConvLayer]) -> List[ConvLayer]:
    """Greedy nearest-neighbour chain through (N, M) space.

    Starts from the layer with the smallest N+M (the most "extreme"
    corner, typically the input layer) and repeatedly appends the closest
    unvisited layer, so adjacent layers in the order have compatible
    dimensions.
    """
    remaining = list(layers)
    if not remaining:
        return []
    current = min(remaining, key=lambda layer: (layer.n + layer.m, layer.name))
    chain = [current]
    remaining.remove(current)
    while remaining:
        current = min(
            remaining, key=lambda layer: (_nm_distance(chain[-1], layer), layer.name)
        )
        chain.append(current)
        remaining.remove(current)
    return chain


ORDERINGS: Dict[str, Callable[[Sequence[ConvLayer]], List[ConvLayer]]] = {
    "natural": order_natural,
    "compute-to-data": order_by_compute_to_data,
    "nm-distance": order_by_nm_distance,
}


def get_ordering(name: str) -> Callable[[Sequence[ConvLayer]], List[ConvLayer]]:
    """Look up an ordering heuristic by name."""
    try:
        return ORDERINGS[name]
    except KeyError:
        raise ValueError(
            f"unknown ordering {name!r}; known: {sorted(ORDERINGS)}"
        ) from None
