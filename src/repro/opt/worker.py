"""Pure, picklable worker entry point for design-space exploration.

``evaluate_point_payload`` is the function a ``ProcessPoolExecutor``
ships to worker processes: a plain top-level callable (picklable by
reference) that maps one JSON-ready payload to one JSON-ready result.
The payload carries the serialized network alongside the design point,
so the worker depends only on ``core``/``fpga``/``opt`` — no network-zoo
lookup, and custom networks sweep exactly like built-in ones.

Infeasible points are a normal outcome of a sweep, not a crash:
``OptimizationError`` and ``ValueError`` (no design fits / the budget
cannot afford a single unit) are captured in the result record so one
bad point never kills a thousand-point run.  Anything else — TypeError,
ZeroDivisionError, a genuine optimizer bug — propagates and fails the
sweep loudly rather than being cached as a bogus "infeasible" record.
"""

from __future__ import annotations

import time
from typing import Any, Dict

from ..core.datatypes import DataType
from ..core.serialize import budget_from_dict, clp_to_dict, network_from_dict
from .driver import OptimizationError, optimize_multi_clp

__all__ = ["evaluate_point_payload", "RESULT_SCHEMA_VERSION"]

#: Version tag written into every result record for forward evolution.
RESULT_SCHEMA_VERSION = 1


def evaluate_point_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Solve one design point; never raises for infeasible points.

    ``payload`` has two keys: ``point`` (a ``DesignPoint`` record, see
    :mod:`repro.dse.point`) and ``network`` (a serialized network).  The
    returned record is self-contained and JSON-serializable.
    """
    point = payload["point"]
    network = network_from_dict(payload["network"])
    budget = budget_from_dict(point["budget"])
    dtype = DataType.from_name(point["dtype"])
    max_clps = 1 if point["single"] else int(point["max_clps"])

    started = time.perf_counter()
    try:
        design, report = optimize_multi_clp(
            network,
            budget,
            dtype,
            max_clps=max_clps,
            ordering=point["ordering"],
            step=float(point["step"]),
            slack=float(point["slack"]),
            return_report=True,
        )
    except (OptimizationError, ValueError) as exc:
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "point": point,
            "ok": False,
            "error": {"type": type(exc).__name__, "message": str(exc)},
            "elapsed_s": round(time.perf_counter() - started, 6),
        }

    # metrics() accounts for the bandwidth cap (if any): the epoch is the
    # bandwidth-bound one, so capped points report achievable throughput,
    # not the compute-only upper bound.
    slack = float(point["slack"])
    metrics = design.metrics(budget, slack)
    return {
        "schema": RESULT_SCHEMA_VERSION,
        "point": point,
        "ok": True,
        "metrics": {
            "epoch_cycles": metrics.epoch_cycles,
            "throughput_images_per_s": metrics.throughput_images_per_s,
            "arithmetic_utilization": metrics.arithmetic_utilization,
            "dsp": design.dsp,
            "bram": design.bram,
            "num_clps": design.num_clps,
            "required_bandwidth_gbps": design.required_bandwidth_gbps(
                budget.frequency_mhz, slack
            ),
            "gflops": metrics.gflops,
        },
        "optimizer": {
            "target": report.target,
            "iterations": report.iterations,
            "candidates_evaluated": report.candidates_evaluated,
        },
        "clps": [clp_to_dict(clp) for clp in design.clps],
        "elapsed_s": round(time.perf_counter() - started, 6),
    }
