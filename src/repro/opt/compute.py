"""OptimizeCompute: DSP partitioning and layer assignment (Section 4.3).

Given an ordered layer list, a DSP budget, and a cycle target, find
partitions of the order into contiguous segments — one per CLP — and a
(Tn, Tm) grid per segment such that every CLP finishes its segment
within the target and the total DSP cost fits the budget.

The search is exact within the contiguous-segment restriction:

1. Enumerate all (Tn, Tm) grids up to caps (Tn <= 64, Tm <= 512, the
   practical dot-product widths the paper's designs stay within).
2. For every contiguous segment, precompute a *frontier*: the minimum
   achievable segment cycles as a function of the DSP spent on its CLP
   (non-increasing in DSP).  This is target-independent, so the paper's
   target-relaxation loop re-queries it cheaply (the paper notes both
   steps "use memoization to avoid redundant work").
3. For a given cycle target, the minimum DSP for a segment is a binary
   search on its frontier, and the best partition is a small dynamic
   program over (number of CLPs, prefix of the order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cost_model import max_units_for_budget
from ..core.datatypes import DataType
from ..core.layer import ConvLayer

__all__ = ["CLPCandidate", "PartitionCandidate", "SegmentSearch", "TN_MAX", "TM_MAX"]

#: Caps on the compute-grid dimensions considered by the search.  Every
#: design in the paper satisfies Tn <= 32 and Tm <= 256; the caps leave
#: ample headroom while keeping the grid enumeration small.
TN_MAX = 64
TM_MAX = 512

_INFEASIBLE = np.iinfo(np.int64).max


@dataclass(frozen=True)
class CLPCandidate:
    """One CLP of a partition candidate: grid size plus assigned layers."""

    tn: int
    tm: int
    layers: Tuple[ConvLayer, ...]
    cycles: int
    dsp: int


@dataclass(frozen=True)
class PartitionCandidate:
    """A full partition: an ordered tuple of CLP candidates."""

    clps: Tuple[CLPCandidate, ...]

    @property
    def num_clps(self) -> int:
        return len(self.clps)

    @property
    def total_dsp(self) -> int:
        return sum(clp.dsp for clp in self.clps)

    @property
    def epoch_cycles(self) -> int:
        return max(clp.cycles for clp in self.clps)


def _layer_cycles_vector(
    layer: ConvLayer, tn: np.ndarray, tm: np.ndarray
) -> np.ndarray:
    """Cycles of ``layer`` on every enumerated (Tn, Tm) grid."""
    n_steps = -(-layer.n // tn)
    m_steps = -(-layer.m // tm)
    per_pos = np.int64(layer.r) * layer.c * layer.k * layer.k
    return per_pos * n_steps.astype(np.int64) * m_steps.astype(np.int64)


class SegmentSearch:
    """Precomputed segment frontiers for one ordered layer list.

    Build once per (ordered layers, datatype, DSP budget); query
    :meth:`candidates` for each cycle target of the relaxation loop.
    """

    def __init__(
        self,
        ordered_layers: Sequence[ConvLayer],
        dtype: DataType,
        dsp_budget: int,
        tn_max: int = TN_MAX,
        tm_max: int = TM_MAX,
    ):
        if not ordered_layers:
            raise ValueError("need at least one layer")
        self.layers: Tuple[ConvLayer, ...] = tuple(ordered_layers)
        self.dtype = dtype
        self.dsp_budget = dsp_budget
        units_budget = max_units_for_budget(dsp_budget, dtype)
        if units_budget < 1:
            raise ValueError(
                f"DSP budget {dsp_budget} cannot afford a single "
                f"{dtype.label} MAC unit"
            )
        self._enumerate_grids(units_budget, tn_max, tm_max)
        self._build_frontiers()

    # ------------------------------------------------------------- building
    def _enumerate_grids(self, units_budget: int, tn_max: int, tm_max: int) -> None:
        tns: List[int] = []
        tms: List[int] = []
        for tn in range(1, min(tn_max, units_budget) + 1):
            top = min(tm_max, units_budget // tn)
            for tm in range(1, top + 1):
                tns.append(tn)
                tms.append(tm)
        self._tn = np.array(tns, dtype=np.int64)
        self._tm = np.array(tms, dtype=np.int64)
        self._units = self._tn * self._tm
        spec = self.dtype.spec
        slices = spec.dsp_per_multiplier + spec.dsp_per_adder
        group = spec.macs_per_dsp_group
        self._dsp = -(-(self._units * slices) // group)
        # Sort grids by DSP cost so frontiers are prefix minima.
        order = np.argsort(self._dsp, kind="stable")
        self._tn = self._tn[order]
        self._tm = self._tm[order]
        self._units = self._units[order]
        self._dsp = self._dsp[order]
        # Group boundaries of equal-DSP runs.
        self.dsp_values, self._group_starts = np.unique(
            self._dsp, return_index=True
        )

    def _build_frontiers(self) -> None:
        count = len(self.layers)
        cum = np.zeros((count + 1, len(self._tn)), dtype=np.int64)
        for i, layer in enumerate(self.layers):
            cum[i + 1] = cum[i] + _layer_cycles_vector(layer, self._tn, self._tm)
        num_segments = count * (count + 1) // 2
        num_classes = len(self.dsp_values)
        self._frontier = np.empty((num_segments, num_classes), dtype=np.int64)
        self._segment_index: Dict[Tuple[int, int], int] = {}
        row = 0
        for i in range(count):
            for j in range(i + 1, count + 1):
                seg = cum[j] - cum[i]
                per_class = np.minimum.reduceat(seg, self._group_starts)
                np.minimum.accumulate(per_class, out=per_class)
                self._frontier[row] = per_class
                self._segment_index[(i, j)] = row
                row += 1
        self._cum = cum

    # -------------------------------------------------------------- queries
    def min_segment_cycles(self, i: int, j: int) -> int:
        """Best cycles for layers[i:j] with the whole DSP budget."""
        return int(self._frontier[self._segment_index[(i, j)], -1])

    def min_dsp_for(self, i: int, j: int, cycle_target: float) -> Optional[int]:
        """Smallest DSP cost letting layers[i:j] meet ``cycle_target``."""
        row = self._frontier[self._segment_index[(i, j)]]
        idx = self._first_meeting_index(row, cycle_target)
        if idx is None:
            return None
        return int(self.dsp_values[idx])

    @staticmethod
    def _first_meeting_index(row: np.ndarray, cycle_target: float) -> Optional[int]:
        # ``row`` is non-increasing; entries meeting the target form a
        # suffix.  Search the reversed (non-decreasing) view.
        reversed_view = row[::-1]
        count = int(np.searchsorted(reversed_view, cycle_target, side="right"))
        if count == 0:
            return None
        return len(row) - count

    def best_grid(self, i: int, j: int, dsp_cap: int) -> Tuple[int, int, int, int]:
        """(Tn, Tm, cycles, dsp) minimizing cycles for layers[i:j] within
        ``dsp_cap`` DSP slices; ties broken toward fewer DSP slices."""
        mask = self._dsp <= dsp_cap
        if not mask.any():
            raise ValueError(f"no grid fits within {dsp_cap} DSP slices")
        seg = self._cum[j] - self._cum[i]
        cycles = np.where(mask, seg, _INFEASIBLE)
        best_cycles = cycles.min()
        tied = np.flatnonzero(cycles == best_cycles)
        winner = tied[np.argmin(self._dsp[tied])]
        return (
            int(self._tn[winner]),
            int(self._tm[winner]),
            int(best_cycles),
            int(self._dsp[winner]),
        )

    # ------------------------------------------------------------ partition
    def candidates(
        self,
        cycle_target: float,
        max_clps: int,
    ) -> List[PartitionCandidate]:
        """All minimum-DSP partitions meeting ``cycle_target``.

        Returns one candidate per feasible CLP count (1..max_clps), each
        using the fewest DSP slices for that count, cheapest first.  An
        empty list means the target is unreachable within the budget.
        """
        if max_clps < 1:
            raise ValueError(f"max_clps must be >= 1, got {max_clps}")
        count = len(self.layers)
        seg_dsp = self._segment_dsp_matrix(cycle_target)
        infinity = float("inf")
        # dp[k][j]: min DSP covering layers[:j] with exactly k CLPs.
        dp = [[infinity] * (count + 1) for _ in range(max_clps + 1)]
        parent: List[List[int]] = [[-1] * (count + 1) for _ in range(max_clps + 1)]
        dp[0][0] = 0.0
        for k in range(1, max_clps + 1):
            for j in range(1, count + 1):
                best = infinity
                best_i = -1
                for i in range(k - 1, j):
                    if dp[k - 1][i] == infinity:
                        continue
                    cost = seg_dsp[i][j]
                    if cost is None:
                        continue
                    total = dp[k - 1][i] + cost
                    if total < best:
                        best = total
                        best_i = i
                dp[k][j] = best
                parent[k][j] = best_i

        results: List[PartitionCandidate] = []
        for k in range(1, max_clps + 1):
            if dp[k][count] <= self.dsp_budget:
                results.append(
                    self._assemble(parent, k, count, cycle_target)
                )
        results.sort(key=lambda cand: (cand.total_dsp, cand.num_clps))
        return results

    def _segment_dsp_matrix(
        self, cycle_target: float
    ) -> List[List[Optional[int]]]:
        count = len(self.layers)
        matrix: List[List[Optional[int]]] = [
            [None] * (count + 1) for _ in range(count + 1)
        ]
        for (i, j), row in self._segment_index.items():
            idx = self._first_meeting_index(self._frontier[row], cycle_target)
            if idx is not None:
                matrix[i][j] = int(self.dsp_values[idx])
        return matrix

    def _assemble(
        self,
        parent: List[List[int]],
        num_clps: int,
        count: int,
        cycle_target: float,
    ) -> PartitionCandidate:
        # Walk parents to recover segment boundaries.
        bounds = [count]
        j = count
        for k in range(num_clps, 0, -1):
            j = parent[k][j]
            bounds.append(j)
        bounds.reverse()
        clps: List[CLPCandidate] = []
        spent = 0
        for i, j in zip(bounds[:-1], bounds[1:]):
            dsp_needed = self.min_dsp_for(i, j, cycle_target)
            assert dsp_needed is not None
            tn, tm, cycles, dsp = self.best_grid(i, j, dsp_needed)
            clps.append(
                CLPCandidate(
                    tn=tn,
                    tm=tm,
                    layers=self.layers[i:j],
                    cycles=cycles,
                    dsp=dsp,
                )
            )
            spent += dsp
        candidate = PartitionCandidate(clps=tuple(clps))
        return self._rebalance(candidate)

    def _rebalance(self, candidate: PartitionCandidate) -> PartitionCandidate:
        """Spend leftover DSP slices on the *bottleneck* CLPs only.

        The DP allocates each CLP its minimum DSP for the target; any
        leftover budget is used to shorten the epoch (the longest CLP).
        DSP slices that cannot shorten the epoch stay unspent — widening
        a non-critical CLP would not raise throughput and would only
        dilute arithmetic-unit utilization (e.g. AlexNet's first layer
        floors the fixed-point epoch at R*C*K^2 cycles, so the paper's
        fixed-point designs likewise leave slices idle).
        """
        clps = list(candidate.clps)
        bounds: List[Tuple[int, int]] = []
        cursor = 0
        for clp in clps:
            bounds.append((cursor, cursor + len(clp.layers)))
            cursor += len(clp.layers)
        while True:
            epoch = max(clp.cycles for clp in clps)
            leftover = self.dsp_budget - sum(clp.dsp for clp in clps)
            improved = False
            for idx, clp in enumerate(clps):
                if clp.cycles < epoch:
                    continue
                i, j = bounds[idx]
                tn, tm, cycles, dsp = self.best_grid(i, j, clp.dsp + leftover)
                if cycles < clp.cycles:
                    clps[idx] = CLPCandidate(
                        tn=tn, tm=tm, layers=clp.layers, cycles=cycles, dsp=dsp
                    )
                    improved = True
                    break
            if not improved:
                return PartitionCandidate(clps=tuple(clps))

    # ------------------------------------------------------------ reporting
    @property
    def grid_count(self) -> int:
        """Number of enumerated (Tn, Tm) grids."""
        return len(self._tn)
