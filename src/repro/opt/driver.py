"""OptimizeMultiCLP: the target-relaxation driver (Listing 3).

Starting from the ideal 100%-utilization cycle count, the driver lowers
the performance target in ``step`` decrements until OptimizeCompute can
partition the DSP budget into CLPs meeting it and OptimizeMemory can
find tile plans fitting the BRAM (and, if given, bandwidth) budget.  The
first target with a complete solution is returned — by construction the
highest-throughput design within the budget.

Constraining the partitioner to a single CLP reproduces the
state-of-the-art baseline of Zhang et al. FPGA'15 (Section 3.1), which
the paper's Section 6 uses for all Single-CLP comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import List, Optional, Sequence, Tuple

from ..core.clp import CLPConfig
from ..core.cost_model import max_units_for_budget
from ..core.datatypes import DataType
from ..core.design import MultiCLPDesign
from ..core.layer import ConvLayer
from ..core.network import Network
from ..fpga.parts import ResourceBudget
from .compute import PartitionCandidate, SegmentSearch
from .heuristics import get_ordering
from .memory import MemorySolution, optimize_memory

__all__ = [
    "OptimizationError",
    "OptimizerReport",
    "optimize_multi_clp",
    "optimize_single_clp",
    "minimum_possible_cycles",
]

DEFAULT_STEP = 0.005
DEFAULT_SLACK = 0.02
DEFAULT_MAX_CLPS = 6


class OptimizationError(RuntimeError):
    """No design meeting the constraints was found."""


@dataclass(frozen=True)
class OptimizerReport:
    """Diagnostics of an optimization run."""

    target: float
    target_cycles: float
    iterations: int
    candidates_evaluated: int
    epoch_cycles: int
    minimum_cycles: int


def minimum_possible_cycles(
    network: Network, dsp_budget: int, dtype: DataType
) -> int:
    """Ideal cycles with every affordable MAC unit busy every cycle.

    The ``MinimumPossibleCycles`` bound of Listing 3: total MACs divided
    by the number of units the DSP budget can buy.
    """
    units = max_units_for_budget(dsp_budget, dtype)
    if units < 1:
        raise OptimizationError(
            f"budget of {dsp_budget} DSP slices affords no {dtype.label} unit"
        )
    return ceil(network.total_macs / units)


def _pick_ordering(name: str, budget: ResourceBudget) -> str:
    if name != "auto":
        return name
    # Section 4.3: compute-to-data ratio for bandwidth-limited designs,
    # (N, M) distance for compute-bound ones.
    return "compute-to-data" if budget.bandwidth_gbps is not None else "nm-distance"


def _build_design(
    network: Network,
    solution: MemorySolution,
    dtype: DataType,
) -> MultiCLPDesign:
    clps = [
        CLPConfig(
            tn=plan.candidate.tn,
            tm=plan.candidate.tm,
            layers=plan.candidate.layers,
            dtype=dtype,
            tile_plans=plan.point.tile_plans,
        )
        for plan in solution.plans
    ]
    return MultiCLPDesign(network=network, clps=clps, dtype=dtype)


def optimize_multi_clp(
    network: Network,
    budget: ResourceBudget,
    dtype: DataType,
    max_clps: int = DEFAULT_MAX_CLPS,
    ordering: str = "auto",
    step: float = DEFAULT_STEP,
    slack: float = DEFAULT_SLACK,
    return_report: bool = False,
):
    """Find the highest-throughput Multi-CLP design within a budget.

    Parameters mirror Listing 3: ``step`` is the target decrement and the
    loop ends when the target reaches zero without a solution.  With
    ``return_report=True`` a (design, report) tuple is returned.
    """
    if not 0 < step < 1:
        raise ValueError(f"step must be in (0, 1), got {step}")
    ordering_fn = get_ordering(_pick_ordering(ordering, budget))
    ordered_layers: List[ConvLayer] = ordering_fn(list(network))
    search = SegmentSearch(ordered_layers, dtype, budget.dsp)
    cycles_min = minimum_possible_cycles(network, budget.dsp, dtype)
    bandwidth_cap = budget.bytes_per_cycle()

    target = 1.0
    iterations = 0
    candidates_seen = 0
    while target > 0:
        iterations += 1
        target_cycles = cycles_min / target
        candidates = search.candidates(target_cycles, max_clps)
        best: Optional[Tuple[MemorySolution, PartitionCandidate]] = None
        for candidate in candidates:
            candidates_seen += 1
            solution = optimize_memory(
                candidate,
                dtype,
                bram_budget=budget.bram18k,
                cycle_target=target_cycles,
                bandwidth_budget_bytes_per_cycle=bandwidth_cap,
                slack=slack,
            )
            if solution is None:
                continue
            if best is None or _solution_rank(solution, candidate) < _solution_rank(
                best[0], best[1]
            ):
                best = (solution, candidate)
        if best is not None:
            design = _build_design(network, best[0], dtype)
            if return_report:
                report = OptimizerReport(
                    target=target,
                    target_cycles=target_cycles,
                    iterations=iterations,
                    candidates_evaluated=candidates_seen,
                    epoch_cycles=design.epoch_cycles,
                    minimum_cycles=cycles_min,
                )
                return design, report
            return design
        target = round(target - step, 10)
    raise OptimizationError(
        f"no {dtype.label} design for {network.name} fits "
        f"{budget.dsp} DSP / {budget.bram18k} BRAM"
        + (
            f" / {budget.bandwidth_gbps} GB/s"
            if budget.bandwidth_gbps is not None
            else ""
        )
    )


def _solution_rank(
    solution: MemorySolution, candidate: PartitionCandidate
) -> Tuple[float, int, int]:
    """Preference among same-target solutions: least bandwidth, then
    fewest CLPs, then least BRAM."""
    return (
        solution.total_bandwidth_bytes_per_cycle,
        candidate.num_clps,
        solution.total_bram,
    )


def optimize_single_clp(
    network: Network,
    budget: ResourceBudget,
    dtype: DataType,
    ordering: str = "auto",
    step: float = DEFAULT_STEP,
    slack: float = DEFAULT_SLACK,
    return_report: bool = False,
):
    """The Single-CLP baseline: Multi-CLP optimization capped at one CLP."""
    return optimize_multi_clp(
        network,
        budget,
        dtype,
        max_clps=1,
        ordering=ordering,
        step=step,
        slack=slack,
        return_report=return_report,
    )
