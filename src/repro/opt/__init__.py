"""Design-space optimization: the paper's Section 4.3 algorithms."""

from .compute import CLPCandidate, PartitionCandidate, SegmentSearch
from .driver import (
    OptimizationError,
    OptimizerReport,
    minimum_possible_cycles,
    optimize_multi_clp,
    optimize_single_clp,
)
from .heuristics import (
    ORDERINGS,
    get_ordering,
    order_by_compute_to_data,
    order_by_nm_distance,
    order_natural,
)
from .joint import (
    JointDesign,
    combine_networks,
    latency_throughput_frontier,
    optimize_joint,
    optimize_latency_constrained,
)
from .memory import (
    ClpMemoryPlan,
    MemorySolution,
    TilePoint,
    clp_pareto,
    optimize_memory,
    system_tradeoff_curve,
    tile_candidates,
)

__all__ = [
    "SegmentSearch",
    "CLPCandidate",
    "PartitionCandidate",
    "optimize_multi_clp",
    "optimize_single_clp",
    "minimum_possible_cycles",
    "OptimizationError",
    "OptimizerReport",
    "ORDERINGS",
    "get_ordering",
    "order_natural",
    "order_by_compute_to_data",
    "order_by_nm_distance",
    "TilePoint",
    "ClpMemoryPlan",
    "MemorySolution",
    "tile_candidates",
    "clp_pareto",
    "optimize_memory",
    "system_tradeoff_curve",
    "JointDesign",
    "combine_networks",
    "optimize_joint",
    "optimize_latency_constrained",
    "latency_throughput_frontier",
]
