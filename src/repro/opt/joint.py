"""Extensions of the optimizer the paper sketches but does not evaluate.

* **Joint multi-CNN optimization** (Section 4.3: "this optimization can
  be simultaneously applied to multiple target CNNs to jointly optimize
  their performance").  The layers of all target networks are pooled
  and partitioned together; each epoch advances one image of *every*
  network, so the epoch length reflects the combined workload and CLPs
  may serve layers from different CNNs.

* **Latency-constrained optimization** (Section 4.1: constraining each
  CLP to layers *adjacent* in the CNN lets a CLP carry an image through
  several layers per epoch, cutting the number of in-flight images to
  the CLP count at some throughput cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.datatypes import DataType
from ..core.design import MultiCLPDesign
from ..core.layer import ConvLayer
from ..core.network import Network
from ..fpga.parts import ResourceBudget
from .driver import DEFAULT_MAX_CLPS, optimize_multi_clp

__all__ = [
    "combine_networks",
    "JointDesign",
    "optimize_joint",
    "optimize_latency_constrained",
    "latency_throughput_frontier",
]

_JOINT_SEPARATOR = "::"


def combine_networks(networks: Sequence[Network]) -> Network:
    """Pool several CNNs into one layer list with namespaced names."""
    if not networks:
        raise ValueError("need at least one network")
    names = [network.name for network in networks]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate network names: {names}")
    layers: List[ConvLayer] = []
    for network in networks:
        for layer in network:
            layers.append(
                layer.with_name(f"{network.name}{_JOINT_SEPARATOR}{layer.name}")
            )
    return Network(" + ".join(names), layers)


@dataclass(frozen=True)
class JointDesign:
    """A shared accelerator serving several CNNs concurrently."""

    design: MultiCLPDesign
    networks: Tuple[Network, ...]

    @property
    def epoch_cycles(self) -> int:
        return self.design.epoch_cycles

    def throughput_per_network(self, frequency_mhz: float) -> Dict[str, float]:
        """Images/s of each network (one image each per epoch)."""
        rate = frequency_mhz * 1e6 / self.design.epoch_cycles
        return {network.name: rate for network in self.networks}

    def clps_serving(self, network_name: str) -> List[int]:
        """Indices of CLPs computing at least one layer of a network."""
        prefix = f"{network_name}{_JOINT_SEPARATOR}"
        return [
            index
            for index, clp in enumerate(self.design.clps)
            if any(name.startswith(prefix) for name in clp.layer_names)
        ]

    def describe(self) -> str:
        lines = [self.design.describe()]
        for network in self.networks:
            shared = self.clps_serving(network.name)
            lines.append(
                f"  {network.name}: served by CLPs {shared}"
            )
        return "\n".join(lines)


def optimize_joint(
    networks: Sequence[Network],
    budget: ResourceBudget,
    dtype: DataType,
    max_clps: int = DEFAULT_MAX_CLPS,
    ordering: str = "auto",
    **kwargs,
) -> JointDesign:
    """Jointly optimize one accelerator for several CNNs.

    The combined epoch processes one image of every network; CLPs are
    free to mix layers from different networks (similar layers across
    CNNs naturally land on the same CLP through the ordering heuristic).
    """
    combined = combine_networks(networks)
    design = optimize_multi_clp(
        combined, budget, dtype, max_clps=max_clps, ordering=ordering, **kwargs
    )
    return JointDesign(design=design, networks=tuple(networks))


def optimize_latency_constrained(
    network: Network,
    budget: ResourceBudget,
    dtype: DataType,
    max_clps: int = DEFAULT_MAX_CLPS,
    **kwargs,
) -> MultiCLPDesign:
    """Best design whose CLPs own *adjacent* layer runs (Section 4.1).

    Natural-order partitioning guarantees adjacency, enabling the
    low-latency schedule where only ``num_clps`` images are in flight.
    """
    design = optimize_multi_clp(
        network, budget, dtype, max_clps=max_clps, ordering="natural", **kwargs
    )
    assert design.has_adjacent_assignment
    return design


def latency_throughput_frontier(
    network: Network,
    budget: ResourceBudget,
    dtype: DataType,
    max_clps: int = DEFAULT_MAX_CLPS,
    **kwargs,
) -> List[Tuple[int, int, int]]:
    """(allowed CLPs, latency cycles, epoch cycles) latency sweep.

    Fewer CLPs mean fewer in-flight images (lower latency) but less
    specialization (longer epochs) — the tradeoff Section 4.1 sketches.
    """
    frontier: List[Tuple[int, int, int]] = []
    for cap in range(1, max_clps + 1):
        design = optimize_latency_constrained(
            network, budget, dtype, max_clps=cap, **kwargs
        )
        frontier.append(
            (cap, design.latency_cycles(), design.epoch_cycles)
        )
    return frontier
