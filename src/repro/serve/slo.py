"""Service-level objectives over traffic-simulation results.

A design that wins on raw epoch throughput can still be the wrong
accelerator for a workload: under bursty traffic a deeper pipeline
(Section 4.1's general schedule) pays its latency back in queueing
delay, and a tight BRAM design may drop requests a slightly slower
design would absorb.  An :class:`SLOSpec` captures the operator's
contract — tail latency, drop budget, throughput floor — and
:func:`evaluate_slo` scores a :class:`~repro.serve.metrics.ServeResult`
against it, giving design-space sweeps (``repro dse rank``) an
SLO-attainment objective instead of steady-state throughput alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .metrics import ServeResult

__all__ = ["SLOSpec", "TenantVerdict", "SLOReport", "evaluate_slo"]


@dataclass(frozen=True)
class SLOSpec:
    """Per-tenant serving contract; ``None`` disables a clause.

    ``deadline_ms`` makes the contract deadline-aware: completions later
    than the deadline are charged against the drop budget alongside
    drops and losses (a response past its deadline is as good as no
    response), and the capacity planner stamps the deadline onto the
    tenants it synthesises so overload runs can shed expired work.
    ``min_goodput_rps`` floors the *good* completion rate — completions
    minus late ones — which is the honest throughput clause under
    overload.  Both default off, so existing specs behave identically.
    """

    p99_ms: Optional[float] = None
    max_drop_rate: float = 0.0
    min_throughput_rps: Optional[float] = None
    deadline_ms: Optional[float] = None
    min_goodput_rps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.p99_ms is not None and self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive when set")
        if not 0 <= self.max_drop_rate <= 1:
            raise ValueError("max_drop_rate must be a fraction in [0, 1]")
        if self.min_throughput_rps is not None and self.min_throughput_rps <= 0:
            raise ValueError("min_throughput_rps must be positive when set")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")
        if self.min_goodput_rps is not None and self.min_goodput_rps <= 0:
            raise ValueError("min_goodput_rps must be positive when set")


@dataclass(frozen=True)
class TenantVerdict:
    """One tenant's measurements against each SLO clause.

    ``drop_rate`` holds the tenant's **shed** rate — queue drops *plus*
    requests lost to replica failures — because that is what the drop
    budget is charged against (see :func:`evaluate_slo`).  The
    :attr:`shed_rate` alias names it honestly; the original field name
    is kept for stored-result compatibility.
    """

    name: str
    meets: bool
    p99_ms: Optional[float]
    drop_rate: float
    throughput_rps: float
    violations: Tuple[str, ...]
    #: Deadline-aware completion rate: (completions - late) / horizon.
    #: Equals ``throughput_rps`` whenever nothing finished late, so
    #: pre-overload verdicts are unchanged by the added field.
    goodput_rps: float = 0.0
    #: Priority class of the tenant (0 unless overload assigns one).
    priority: int = 0

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals not served (drops + fault losses)."""
        return self.drop_rate


@dataclass(frozen=True)
class SLOReport:
    """SLO attainment of one traffic simulation."""

    meets: bool
    attainment: float  # fraction of tenants meeting every clause
    tenants: Tuple[TenantVerdict, ...]

    @property
    def worst_p99_ms(self) -> Optional[float]:
        values = [t.p99_ms for t in self.tenants if t.p99_ms is not None]
        return max(values) if values else None

    @property
    def worst_shed_rate(self) -> float:
        """Highest per-tenant shed rate (queue drops plus fault losses)."""
        return max((t.drop_rate for t in self.tenants), default=0.0)

    @property
    def worst_drop_rate(self) -> float:
        """Alias of :attr:`worst_shed_rate`.

        Historically named after the field it reads, but the verdicts
        carry shed rates — tables printing this under a "drop" header
        were silently including fault losses.  Kept for compatibility;
        new code should use :attr:`worst_shed_rate`.
        """
        return self.worst_shed_rate

    @property
    def total_goodput_rps(self) -> float:
        return sum(t.throughput_rps for t in self.tenants)

    @property
    def goodput_by_priority(self) -> Tuple[Tuple[int, float], ...]:
        """Deadline-aware goodput (r/s) per priority class, ascending.

        Under brownout the question is not "did the fleet keep up" but
        "did the *protected* classes keep up while lower ones were
        shed" — this is the per-class view that answers it.
        """
        totals: dict = {}
        for t in self.tenants:
            totals[t.priority] = totals.get(t.priority, 0.0) + t.goodput_rps
        return tuple(sorted(totals.items()))


def evaluate_slo(result: ServeResult, slo: SLOSpec) -> SLOReport:
    """Check every tenant of ``result`` against ``slo``.

    A tenant with arrivals but no completions fails any latency or
    throughput clause outright (its tail latency is effectively
    unbounded); a tenant that saw no traffic at all trivially passes.

    ``result`` may equally be a :class:`~repro.fleet.metrics.FleetResult`
    — it exposes the same per-tenant stats and clock conversions, with
    tail latencies taken over the merged cross-replica samples — which
    is how the capacity planner scores whole fleets against one spec.
    """
    verdicts: List[TenantVerdict] = []
    for tenant in result.tenants:
        violations: List[str] = []
        p99_ms = (
            result.cycles_to_ms(tenant.latency.p99)
            if tenant.latency is not None
            else None
        )
        # Rate over the offered window (horizon): a drained run's tail
        # has no arrivals and must not deflate the measured throughput.
        throughput = result.rate_to_rps(
            tenant.completed_rate_per_cycle(result.horizon_cycles)
        )
        late = getattr(tenant, "late", 0)
        goodput = result.rate_to_rps(
            max(tenant.completions - late, 0) / result.horizon_cycles
        )
        saw_traffic = tenant.arrivals > 0
        if slo.p99_ms is not None and saw_traffic:
            if p99_ms is None:
                violations.append("p99: no completions")
            elif p99_ms > slo.p99_ms:
                violations.append(
                    f"p99 {p99_ms:.2f}ms > {slo.p99_ms:.2f}ms"
                )
        # The drop budget covers every unserved arrival: queue drops plus
        # requests lost to replica failures (fault scenarios) — a client
        # retries both the same way.  shed_rate == drop_rate when lost=0,
        # so fault-free behaviour is unchanged.  With a deadline clause,
        # *late* completions join the charge: a response past its
        # deadline is no more useful to the client than a dropped one.
        charged = tenant.shed_rate
        if slo.deadline_ms is not None and saw_traffic:
            charged += late / tenant.arrivals
        if charged > slo.max_drop_rate:
            violations.append(
                f"drops {charged:.1%} > {slo.max_drop_rate:.1%}"
            )
        if slo.min_throughput_rps is not None and saw_traffic:
            if throughput < slo.min_throughput_rps:
                violations.append(
                    f"throughput {throughput:.1f} < "
                    f"{slo.min_throughput_rps:.1f} r/s"
                )
        if slo.min_goodput_rps is not None and saw_traffic:
            if goodput < slo.min_goodput_rps:
                violations.append(
                    f"goodput {goodput:.1f} < "
                    f"{slo.min_goodput_rps:.1f} r/s"
                )
        verdicts.append(
            TenantVerdict(
                name=tenant.name,
                meets=not violations,
                p99_ms=p99_ms,
                drop_rate=charged,
                throughput_rps=throughput,
                violations=tuple(violations),
                goodput_rps=goodput,
                priority=getattr(tenant, "priority", 0),
            )
        )
    met = sum(1 for v in verdicts if v.meets)
    return SLOReport(
        meets=met == len(verdicts),
        attainment=met / len(verdicts) if verdicts else 1.0,
        tenants=tuple(verdicts),
    )
