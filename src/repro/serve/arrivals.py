"""Seeded arrival processes for the traffic simulator.

Every process is a frozen value object that, given a
:class:`random.Random`, yields absolute arrival times in *cycles* in
strictly non-decreasing order.  Rates are expressed in requests per
cycle so the simulator stays clock-agnostic; the CLI converts from
requests/second using the design's clock (``rate_rps / (MHz * 1e6)``).

Four shapes cover the scenarios Section 4 of the paper motivates:

* :class:`ConstantRate` — a deterministic, evenly spaced stream (the
  classical D/D/1-style load used by the differential tests).
* :class:`PoissonArrivals` — memoryless open-loop traffic.
* :class:`BurstyArrivals` — a two-state (on/off) modulated Poisson
  process: bursts at ``burstiness`` times the mean rate, silence in
  between, same long-run average rate.
* :class:`TraceArrivals` — replay of an explicit timestamp list, for
  driving the simulator with recorded production traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "ConstantRate",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "make_arrival_process",
]

#: Process names :func:`make_arrival_process` accepts — the CLI sources
#: its ``--process`` choices from here so the two can never drift.
#: (:class:`TraceArrivals` has no name: a trace needs timestamps, not a
#: rate, so it is constructed directly.)
ARRIVAL_KINDS = ("constant", "poisson", "bursty")


class ArrivalProcess:
    """Base class: a seeded stream of absolute arrival times (cycles)."""

    def times(self, rng: random.Random) -> Iterator[float]:
        raise NotImplementedError

    @property
    def mean_rate(self) -> float:
        """Long-run average arrivals per cycle (0 when unknown)."""
        raise NotImplementedError


def _check_rate(rate: float) -> None:
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")


@dataclass(frozen=True)
class ConstantRate(ArrivalProcess):
    """Evenly spaced arrivals at ``rate`` requests per cycle.

    The first request arrives at cycle 0, so a rate-``r`` stream is an
    exact subset of a rate-``k*r`` stream for integer ``k`` — the
    property the monotonicity tests lean on.
    """

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    @property
    def mean_rate(self) -> float:
        return self.rate

    def times(self, rng: random.Random) -> Iterator[float]:
        period = 1.0 / self.rate
        index = 0
        while True:
            yield index * period
            index += 1


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps with mean ``1/rate``."""

    rate: float

    def __post_init__(self) -> None:
        _check_rate(self.rate)

    @property
    def mean_rate(self) -> float:
        return self.rate

    def times(self, rng: random.Random) -> Iterator[float]:
        now = 0.0
        while True:
            now += rng.expovariate(self.rate)
            yield now


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off modulated Poisson traffic with long-run average ``rate``.

    The source alternates between *on* phases (Poisson at
    ``rate * burstiness``) and silent *off* phases.  Phase durations are
    exponential with means ``period_cycles / burstiness`` (on) and
    ``period_cycles * (1 - 1/burstiness)`` (off), so the duty cycle is
    ``1/burstiness`` and the average rate stays ``rate``.
    """

    rate: float
    burstiness: float = 4.0
    period_cycles: float = 200_000.0

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.burstiness <= 1.0:
            raise ValueError(
                f"burstiness must exceed 1, got {self.burstiness} "
                "(use ConstantRate or PoissonArrivals for smooth traffic)"
            )
        if self.period_cycles <= 0:
            raise ValueError("period_cycles must be positive")

    @property
    def mean_rate(self) -> float:
        return self.rate

    def times(self, rng: random.Random) -> Iterator[float]:
        on_rate = self.rate * self.burstiness
        mean_on = self.period_cycles / self.burstiness
        mean_off = self.period_cycles - mean_on
        now = 0.0
        while True:
            phase_end = now + rng.expovariate(1.0 / mean_on)
            while True:
                gap = rng.expovariate(on_rate)
                if now + gap > phase_end:
                    break
                now += gap
                yield now
            now = phase_end + rng.expovariate(1.0 / mean_off)


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay an explicit list of arrival times (cycles, sorted)."""

    times_cycles: Tuple[float, ...]

    def __init__(self, times_cycles: Sequence[float]):
        times = tuple(float(t) for t in times_cycles)
        for earlier, later in zip(times, times[1:]):
            if later < earlier:
                raise ValueError("trace timestamps must be non-decreasing")
        if times and times[0] < 0:
            raise ValueError("trace timestamps must be non-negative")
        object.__setattr__(self, "times_cycles", times)

    @property
    def mean_rate(self) -> float:
        if len(self.times_cycles) < 2:
            return 0.0
        span = self.times_cycles[-1] - self.times_cycles[0]
        return (len(self.times_cycles) - 1) / span if span > 0 else 0.0

    def times(self, rng: random.Random) -> Iterator[float]:
        return iter(self.times_cycles)


def make_arrival_process(
    kind: str,
    rate_per_cycle: float,
    burstiness: float = 4.0,
    period_cycles: float = 200_000.0,
) -> ArrivalProcess:
    """Build a process from a CLI-style name (constant/poisson/bursty)."""
    key = kind.strip().lower()
    if key == "constant":
        return ConstantRate(rate_per_cycle)
    if key == "poisson":
        return PoissonArrivals(rate_per_cycle)
    if key == "bursty":
        return BurstyArrivals(rate_per_cycle, burstiness, period_cycles)
    raise ValueError(
        f"unknown arrival process {kind!r}; known: {', '.join(ARRIVAL_KINDS)}"
    )
