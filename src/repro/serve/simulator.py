"""Event-driven multi-tenant traffic simulation over Multi-CLP designs.

The accelerator model follows Section 4.1 of the paper: a design runs
back-to-back *epochs* of ``epoch_cycles``; at every epoch boundary each
tenant (network) may inject one image into the pipeline, and an image
completes ``pipeline_depth`` epochs after injection — the number of
in-flight images per tenant (layer count in the general schedule, CLP
count for latency-constrained adjacent assignments).  A
:class:`~repro.opt.joint.JointDesign` advances one image of *every*
member network per epoch (Section 4.3), so each network is a tenant
with its own admission slot.

On top of that service process sits an open-loop traffic model: seeded
arrival streams (:mod:`repro.serve.arrivals`) feed bounded per-tenant
FIFO queues with a drop policy, and the discrete-event engine
(:class:`repro.sim.engine.Simulator`) interleaves arrivals, epoch
dispatch, and completions deterministically.  Epoch length can be taken
from the analytic model (optionally bandwidth-capped through
:meth:`MultiCLPDesign.epoch_cycles_under_bandwidth`) or calibrated by
running the cycle-level system simulator
(:func:`repro.sim.system.simulate_system`) on one epoch.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from ..obs.telemetry import ObsSpec, TimeSeries
    from .overload import OverloadReport, OverloadSpec

from ..core.design import MultiCLPDesign
from ..opt.joint import _JOINT_SEPARATOR, JointDesign
from .arrivals import ArrivalProcess
from .metrics import LatencySummary, ServeResult, TenantStats

__all__ = [
    "TenantSpec",
    "TenantState",
    "DROP_POLICIES",
    "tenant_plans",
    "resolve_epoch",
    "service_capacity_rps",
    "pipeline_latency_cycles",
    "simulate_traffic",
]

#: Queue-full policies: reject the newcomer, or evict the oldest waiter.
DROP_POLICIES = ("drop-tail", "drop-head")


@dataclass(frozen=True)
class TenantSpec:
    """One request class: a network name and its arrival process."""

    name: str
    process: ArrivalProcess
    #: Optional bound on generated requests (guards open-ended traces).
    limit: Optional[int] = None
    #: Scheduling priority class (higher = more important).  Plain FIFO
    #: runs ignore it; the overload layer's brownout controller sheds
    #: lower classes first and its ``priority`` discipline favours fresh
    #: work within a class.
    priority: int = 0
    #: Per-request deadline in milliseconds.  When set, completions past
    #: it count as ``late`` (served but not goodput), deadline-aware
    #: disciplines (``edf``/``priority``) shed requests that expire in
    #: queue, and deadline admission can reject at enqueue.  Setting it
    #: activates the overload layer (event engine under ``auto``).
    deadline_ms: Optional[float] = None


def tenant_plans(
    design: Union[MultiCLPDesign, JointDesign],
) -> Tuple[MultiCLPDesign, Dict[str, Tuple[int, Tuple[int, ...]]]]:
    """Per-tenant (pipeline depth, per-CLP cycles-per-image) from a design.

    The service model every higher layer shares: one admission slot per
    tenant per epoch, completion ``depth`` epochs later.  The fleet
    simulator (:mod:`repro.fleet`) builds its per-replica device models
    from exactly this plan so single-device and cluster runs agree.
    """
    if isinstance(design, JointDesign):
        base = design.design
        plans: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
        for network in design.networks:
            prefix = f"{network.name}{_JOINT_SEPARATOR}"
            per_clp = tuple(
                sum(
                    clp.cycles_for(layer)
                    for layer in clp.layers
                    if layer.name.startswith(prefix)
                )
                for clp in base.clps
            )
            # General (Figure 5) schedule: one image per layer position.
            plans[network.name] = (len(network.layers), per_clp)
        return base, plans
    base = design
    per_clp = tuple(clp.total_cycles for clp in base.clps)
    return base, {
        base.network.name: (base.pipeline_depth_images, per_clp)
    }


def service_capacity_rps(
    design: Union[MultiCLPDesign, JointDesign], frequency_mhz: float
) -> float:
    """Analytic serving ceiling: one image per tenant per epoch."""
    return frequency_mhz * 1e6 / design.epoch_cycles


def pipeline_latency_cycles(
    design: Union[MultiCLPDesign, JointDesign],
    bytes_per_cycle: Optional[float] = None,
) -> float:
    """Worst per-tenant zero-queueing latency: pipeline depth x epoch.

    The shortest horizon at which a request can possibly complete; a
    simulation window below this reports every request as in-flight
    (callers that want percentiles should budget a few multiples, or
    drain)."""
    base, plans = tenant_plans(design)
    epoch = resolve_epoch(base, bytes_per_cycle, "model")
    return max(depth for depth, _ in plans.values()) * epoch


class TenantState:
    """Mutable bookkeeping for one tenant during a run."""

    def __init__(
        self,
        spec: TenantSpec,
        depth_epochs: int,
        clp_cycles: Tuple[int, ...],
        queue_depth: int,
        policy: str,
    ):
        self.spec = spec
        self.depth_epochs = depth_epochs
        self.clp_cycles = clp_cycles
        self.queue_depth = queue_depth
        self.policy = policy
        self.queue: Deque[float] = deque()
        self.arrivals = 0
        self.drops = 0
        self.lost = 0
        self.completions = 0
        self.pipeline = 0
        self.latencies: List[float] = []
        self.first_completion: Optional[float] = None
        self.last_completion: Optional[float] = None
        self.peak_queue = 0
        self._occupancy_area = 0.0
        self._occupancy_mark = 0.0
        self.stream_open = True

    # ------------------------------------------------------------- occupancy
    def _touch(self, now: float) -> None:
        self._occupancy_area += len(self.queue) * (now - self._occupancy_mark)
        self._occupancy_mark = now

    def mean_queue_depth(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        # Flush the integral up to the end of the observation window.
        area = self._occupancy_area + len(self.queue) * (
            elapsed - self._occupancy_mark
        )
        return area / elapsed

    # ---------------------------------------------------------------- events
    def on_arrival(self, now: float) -> None:
        self.arrivals += 1
        self._touch(now)
        if len(self.queue) >= self.queue_depth:
            if self.policy == "drop-tail":
                self.drops += 1
                return
            # drop-head: evict the stalest waiter to admit fresh work.
            self.queue.popleft()
            self.drops += 1
        self.queue.append(now)
        self.peak_queue = max(self.peak_queue, len(self.queue))

    def requeue(self, arrival: float, now: float) -> None:
        """Re-admit a request evacuated from a failed replica's queue.

        Not a new arrival — the request was already counted where it
        first landed; it joins the tail here (a client retry would).  A
        full queue sheds it as an ordinary drop on this replica.
        """
        self._touch(now)
        if len(self.queue) >= self.queue_depth:
            self.drops += 1
            return
        self.queue.append(arrival)
        self.peak_queue = max(self.peak_queue, len(self.queue))

    def admit(self, now: float) -> Optional[float]:
        """Pop the head of the queue into the pipeline; returns arrival time."""
        if not self.queue:
            return None
        self._touch(now)
        arrival = self.queue.popleft()
        self.pipeline += 1
        return arrival

    def on_completion(self, arrival: float, now: float) -> None:
        self.pipeline -= 1
        self.completions += 1
        self.latencies.append(now - arrival)
        if self.first_completion is None:
            self.first_completion = now
        self.last_completion = now

    # ----------------------------------------------------------------- final
    def stats(self, elapsed: float) -> TenantStats:
        steady = None
        if (
            self.completions >= 2
            and self.last_completion is not None
            and self.last_completion > self.first_completion
        ):
            steady = (self.completions - 1) / (
                self.last_completion - self.first_completion
            )
        return TenantStats(
            name=self.spec.name,
            offered_rate_per_cycle=self.spec.process.mean_rate,
            arrivals=self.arrivals,
            completions=self.completions,
            drops=self.drops,
            in_flight=len(self.queue) + self.pipeline,
            latency=LatencySummary.of(self.latencies),
            mean_queue_depth=self.mean_queue_depth(elapsed),
            peak_queue_depth=self.peak_queue,
            steady_rate_per_cycle=steady,
            lost=self.lost,
            priority=self.spec.priority,
        )


def resolve_epoch(
    base: MultiCLPDesign,
    bytes_per_cycle: Optional[float],
    calibrate: str,
) -> float:
    if calibrate == "model":
        return base.epoch_cycles_under_bandwidth(bytes_per_cycle)
    if calibrate == "simulate":
        from ..sim.system import simulate_system

        return simulate_system(base, bytes_per_cycle=bytes_per_cycle).epoch_cycles
    raise ValueError(
        f"unknown calibration {calibrate!r}; expected 'model' or 'simulate'"
    )


def simulate_traffic(
    design: Union[MultiCLPDesign, JointDesign],
    tenants: Sequence[TenantSpec],
    duration_cycles: float,
    *,
    frequency_mhz: float = 100.0,
    seed: int = 0,
    queue_depth: int = 64,
    policy: str = "drop-tail",
    bytes_per_cycle: Optional[float] = None,
    calibrate: str = "model",
    drain: bool = False,
    engine: str = "auto",
    obs: Optional["ObsSpec"] = None,
    overload: Optional["OverloadSpec"] = None,
) -> ServeResult:
    """Drive ``design`` with seeded request streams and measure serving.

    ``tenants`` must name exactly the networks the design serves (any
    order).  With ``drain=False`` the run is cut at ``duration_cycles``
    and queued/pipelined requests are reported as in-flight; with
    ``drain=True`` arrivals stop at the horizon but dispatch continues
    until every admitted request completes, so
    ``arrivals == completions + drops`` exactly.

    ``engine`` selects the execution strategy, not the semantics:
    ``"event"`` runs the reference discrete-event loop, ``"fast"`` the
    epoch-batched solver (:mod:`repro.sim.fastpath`), and ``"auto"``
    (the default) picks fast — both produce the same result bit for
    bit, which the differential test suite pins.

    ``obs`` (an :class:`~repro.obs.ObsSpec`) opts the run into windowed
    telemetry (carried on the result's ``timeseries`` field) and/or
    request-lifecycle tracing.  Observation runs on the event engine:
    under ``engine="auto"`` an observed run falls back from the fast
    solver to the event loop (scalar results are bit-identical either
    way); an explicit ``engine="fast"`` keeps the fast solver and
    reports ``timeseries=None``, and raises if a trace was requested.
    With ``obs=None`` (the default) no extra events are scheduled and
    results are bit-identical to pre-observability behaviour.

    ``overload`` (an :class:`~repro.serve.overload.OverloadSpec`) opts
    the run into admission control, queue disciplines, client retries,
    and brownout (see :mod:`repro.serve.overload`).  Any active overload
    feature — including a tenant ``deadline_ms`` — is a feedback loop
    over the event stream, so ``engine="auto"`` falls back to the event
    engine and an explicit ``engine="fast"`` raises.  With every
    feature off, results are bit-identical to passing ``overload=None``.

    Determinism: identical arguments (including ``seed``) produce an
    identical :class:`~repro.serve.metrics.ServeResult`, bit for bit.
    """
    from ..sim.engine import Simulator
    from ..sim.fastpath import resolve_engine, run_serve_fast
    from .overload import (
        OverloadController,
        OverloadSpec,
        OverloadTenantState,
    )

    if duration_cycles <= 0:
        raise ValueError("duration_cycles must be positive")
    if queue_depth < 1:
        raise ValueError("queue_depth must be at least 1")
    if policy not in DROP_POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {DROP_POLICIES}")

    base, plans = tenant_plans(design)
    offered = [spec.name for spec in tenants]
    if sorted(offered) != sorted(plans):
        raise ValueError(
            f"tenants {sorted(offered)} do not match the design's networks "
            f"{sorted(plans)}"
        )

    overload_active = (overload is not None and overload.active) or any(
        spec.deadline_ms is not None for spec in tenants
    )
    ospec = None
    if overload_active:
        ospec = overload if overload is not None else OverloadSpec()

    epoch = resolve_epoch(base, bytes_per_cycle, calibrate)
    cycles_per_ms = frequency_mhz * 1e3
    states: List[TenantState] = []
    for spec in tenants:
        depth, clp_cycles = plans[spec.name]
        if ospec is not None:
            deadline_ms = (
                spec.deadline_ms
                if spec.deadline_ms is not None
                else ospec.deadline_ms
            )
            states.append(
                OverloadTenantState(
                    spec, depth, clp_cycles, queue_depth, policy,
                    queue_policy=ospec.queue_policy,
                    epoch=epoch,
                    deadline_cycles=(
                        None
                        if deadline_ms is None
                        else deadline_ms * cycles_per_ms
                    ),
                )
            )
        else:
            states.append(
                TenantState(spec, depth, clp_cycles, queue_depth, policy)
            )

    clp_busy = [0.0] * base.num_clps
    horizon = float(duration_cycles)

    concrete = resolve_engine(engine, has_overload=overload_active)
    obs_active = obs is not None and obs.active
    if obs_active and concrete == "fast":
        if engine == "fast" and obs.trace is not None:
            raise ValueError(
                "engine='fast' cannot emit a trace; use 'auto' or 'event'"
            )
        if engine != "fast":
            # The fast solver has no event stream to sample or trace;
            # "auto" prefers observability over speed.  An explicit
            # "fast" keeps the solver and reports timeseries=None.
            concrete = "event"

    if concrete == "fast":
        elapsed = run_serve_fast(states, clp_busy, epoch, horizon, seed, drain)
        return _assemble_result(
            design, base, states, clp_busy, epoch, horizon, elapsed,
            frequency_mhz, seed, queue_depth, policy, drain,
        )

    recorder = obs.make_recorder(horizon) if obs_active else None
    tracer = obs.trace if obs_active else None

    sim = Simulator(
        on_event=(
            None
            if recorder is None
            else lambda when: recorder.count("engine_events", when)
        )
    )

    controller: Optional[OverloadController] = None
    if ospec is not None:
        # Retries/hedges re-enter through the same admission path as
        # fresh arrivals; the single-device "fleet" has one landing spot.
        def deliver(index: int, req) -> None:
            controller.arrive(
                index, req, lambda index=index: (states[index], None)
            )

        controller = OverloadController(
            ospec,
            tenants,
            horizon=horizon,
            frequency_mhz=frequency_mhz,
            seed=seed,
            schedule_at=sim.schedule_at,
            now=lambda: sim.now,
            deliver=deliver,
            tracer=tracer,
            recorder=recorder,
        )

    # Arrivals: one self-rescheduling event chain per tenant, each with
    # a private RNG keyed by (seed, tenant index, tenant name).
    def start_stream(state: TenantState, index: int) -> None:
        rng = random.Random(f"{seed}/{index}/{state.spec.name}")
        stream: Iterator[float] = state.spec.process.times(rng)
        limit = state.spec.limit

        def pump(count: int = 0) -> None:
            if limit is not None and count >= limit:
                state.stream_open = False
                return
            try:
                when = next(stream)
            except StopIteration:
                state.stream_open = False
                return
            if when > horizon:
                state.stream_open = False
                return

            def fire() -> None:
                if controller is not None:
                    controller.arrive(
                        index,
                        controller.make_request(sim.now),
                        lambda: (state, None),
                    )
                elif tracer is None:
                    state.on_arrival(sim.now)
                else:
                    before = state.drops
                    state.on_arrival(sim.now)
                    tracer.request_arrived(
                        state.spec.name,
                        None,
                        sim.now,
                        dropped=state.drops > before,
                        policy=policy,
                    )
                pump(count + 1)

            sim.schedule_at(when, fire)

        pump()

    for index, state in enumerate(states):
        start_stream(state, index)

    def complete(state: TenantState, arrival: float) -> None:
        state.on_completion(arrival, sim.now)
        if tracer is not None:
            tracer.request_completed(state.spec.name, None, sim.now, arrival)

    def complete_overload(t_index: int, state: TenantState, req) -> None:
        controller.complete(t_index, state, req)
        if tracer is not None:
            tracer.request_completed(
                state.spec.name, None, sim.now, req.arrival
            )

    def boundary(index: int = 0) -> None:
        for t_index, state in enumerate(states):
            if controller is not None:
                req = controller.dispatch(t_index, state, None)
                if req is None:
                    continue
                arrival = req.arrival
            else:
                req = None
                arrival = state.admit(sim.now)
                if arrival is None:
                    continue
            if tracer is not None:
                tracer.request_dispatched(
                    state.spec.name, None, sim.now, arrival
                )
            for clp_index, cycles in enumerate(state.clp_cycles):
                clp_busy[clp_index] += cycles
            if req is not None:
                sim.schedule(
                    state.depth_epochs * epoch,
                    lambda t_index=t_index, state=state, req=req: (
                        complete_overload(t_index, state, req)
                    ),
                )
            else:
                sim.schedule(
                    state.depth_epochs * epoch,
                    lambda state=state, arrival=arrival: complete(
                        state, arrival
                    ),
                )
        # Boundaries live on the exact grid ``index * epoch``: chaining
        # ``now + epoch`` instead would accumulate float error over long
        # horizons and drift from the fast engine's batched grid.
        upcoming = (index + 1) * epoch
        pending = any(s.queue or s.stream_open for s in states) or (
            controller is not None and controller.pending_deliveries > 0
        )
        if upcoming <= horizon or (drain and pending):
            sim.schedule_at(upcoming, lambda: boundary(index + 1))

    boundary()  # first dispatch at cycle 0

    if recorder is not None:
        from ..obs.telemetry import BusySampler, TenantGroupSampler

        tenant_samplers = [
            TenantGroupSampler(recorder, state.spec.name, [state])
            for state in states
        ]
        busy_sampler = BusySampler(recorder, "util/CLP", clp_busy)

        def sample(window: int, when: float) -> None:
            for sampler in tenant_samplers:
                sampler.sample(window, when)
            busy_sampler.sample(window, when)

        # Samplers live on the same grid as every other event, read-only
        # and scheduled last, so they never perturb the run they watch.
        for window, when in enumerate(recorder.times):
            sim.schedule_at(
                when, lambda window=window, when=when: sample(window, when)
            )

    if drain:
        elapsed = max(sim.run(), horizon)
    else:
        # The observation window is the horizon even if events ran dry.
        sim.run(until=horizon)
        elapsed = horizon

    if controller is not None:
        # Gate rejections (token bucket, brownout) never reached a
        # tenant state; fold the controller's front-door ledger in so
        # per-tenant conservation holds: arrivals == completions +
        # drops + lost + rejected + expired + in_flight.
        for state in states:
            name = state.spec.name
            state.arrivals += controller.gate_arrivals[name]
            state.rejected += controller.gate_rejected[name]
            state.retries += controller.gate_retries[name]
            state.hedges += controller.gate_hedges[name]

    return _assemble_result(
        design, base, states, clp_busy, epoch, horizon, elapsed,
        frequency_mhz, seed, queue_depth, policy, drain,
        timeseries=recorder.finalize() if recorder is not None else None,
        overload=controller.report() if controller is not None else None,
    )


def _assemble_result(
    design: Union[MultiCLPDesign, JointDesign],
    base: MultiCLPDesign,
    states: Sequence[TenantState],
    clp_busy: Sequence[float],
    epoch: float,
    horizon: float,
    elapsed: float,
    frequency_mhz: float,
    seed: int,
    queue_depth: int,
    policy: str,
    drain: bool,
    timeseries: Optional["TimeSeries"] = None,
    overload: Optional["OverloadReport"] = None,
) -> ServeResult:
    """Reduce final run state to a :class:`ServeResult` (engine-shared)."""
    fractions = tuple(
        min(1.0, busy / elapsed) if elapsed > 0 else 0.0 for busy in clp_busy
    )
    label = (
        " + ".join(net.name for net in design.networks)
        if isinstance(design, JointDesign)
        else base.network.name
    )
    return ServeResult(
        design_label=f"{label} [{base.dtype.label}]",
        num_clps=base.num_clps,
        epoch_cycles=epoch,
        pipeline_depths=tuple(state.depth_epochs for state in states),
        frequency_mhz=frequency_mhz,
        horizon_cycles=horizon,
        elapsed_cycles=elapsed,
        seed=seed,
        queue_depth=queue_depth,
        policy=policy,
        drained=drain,
        tenants=tuple(state.stats(elapsed) for state in states),
        clp_busy_fraction=fractions,
        timeseries=timeseries,
        overload=overload,
    )
