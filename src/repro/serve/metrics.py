"""Per-tenant serving metrics and the :class:`ServeResult` record.

The simulator reduces each run to plain, JSON-friendly dataclasses so a
load-test can be pinned in version control next to the design it
exercised (see ``serve_result_to_dict`` in :mod:`repro.core.serialize`).
Latencies are kept in cycles — the design-space currency of the rest of
the repo — with millisecond conversions derived from the run's clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

if TYPE_CHECKING:  # annotation only; results never construct telemetry
    from ..obs.telemetry import TimeSeries
    from .overload import OverloadReport

__all__ = ["percentile", "LatencySummary", "TenantStats", "ServeResult"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    ``q`` is in [0, 100]; values need not be sorted.  Raises on empty
    input — callers decide how to represent "no completions".
    """
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if q == 0:
        return ordered[0]
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without math import
    return ordered[int(rank) - 1]


@dataclass(frozen=True)
class LatencySummary:
    """Request latency distribution of one tenant, in cycles."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    min: float
    max: float

    @classmethod
    def of(cls, latencies: Sequence[float]) -> Optional["LatencySummary"]:
        if not latencies:
            return None
        # One sort serves every percentile: calling ``percentile`` per
        # quantile re-sorted the full list three times, which dominated
        # the reduction cost for large runs.  Nearest-rank selection on
        # the shared sorted copy returns the exact same elements.
        ordered = sorted(latencies)
        n = len(ordered)
        return cls(
            count=n,
            mean=sum(latencies) / n,
            p50=ordered[int(max(1, -(-n * 50 // 100))) - 1],
            p95=ordered[int(max(1, -(-n * 95 // 100))) - 1],
            p99=ordered[int(max(1, -(-n * 99 // 100))) - 1],
            min=ordered[0],
            max=ordered[-1],
        )


@dataclass(frozen=True)
class TenantStats:
    """One tenant's (network's) view of a traffic simulation."""

    name: str
    offered_rate_per_cycle: float
    arrivals: int
    completions: int
    drops: int
    in_flight: int
    latency: Optional[LatencySummary]
    mean_queue_depth: float
    peak_queue_depth: int
    #: (completions - 1) / (last - first completion time): the epoch-rate
    #: the accelerator actually sustained, independent of warm-up and
    #: horizon truncation.  ``None`` below two completions.
    steady_rate_per_cycle: Optional[float]
    #: Requests destroyed by replica failures (in-flight work on a board
    #: that died, queued requests under the ``lost`` failure policy, and
    #: arrivals with no healthy replica to route to).  Always 0 for
    #: single-device runs and fault-free fleets — drops are back-pressure,
    #: losses are incidents, and the two are budgeted separately.
    lost: int = 0
    #: Arrivals turned away by admission control (token bucket,
    #: queue-deadline admission, or a brownout gate) before queueing.
    #: Distinct from ``drops`` (back-pressure) and ``lost`` (failures):
    #: rejections are deliberate, cheap, and happen at the front door.
    rejected: int = 0
    #: Queued requests shed at dispatch because their deadline passed
    #: while waiting (``edf``/``priority`` disciplines only — FIFO
    #: serves them late instead).
    expired: int = 0
    #: Arrivals that were client retries (attempt > 1) of earlier
    #: rejected/dropped/expired/lost requests.  Subset of ``arrivals``.
    retries: int = 0
    #: Arrivals that were hedge duplicates of still-queued requests.
    hedges: int = 0
    #: Completions whose latency exceeded the tenant's deadline — served,
    #: but not goodput.  Always 0 without a deadline.
    late: int = 0
    #: The tenant's scheduling priority class (higher = more important);
    #: 0 unless overload control assigned one.
    priority: int = 0
    #: Requests whose timeout expired with the failover budget spent —
    #: the request was abandoned unserved.  Always 0 unless a
    #: :class:`~repro.fleet.detector.DetectorSpec` armed
    #: ``request_timeout_ms``.
    timed_out: int = 0
    #: Logical requests that failed over to another replica at least
    #: once (after a timeout or a flaky-replica error).  Counted once
    #: per request regardless of how many hops it took; informational —
    #: not a term of the conservation invariant.
    failed_over: int = 0

    @property
    def drop_rate(self) -> float:
        return self.drops / self.arrivals if self.arrivals else 0.0

    @property
    def shed_rate(self) -> float:
        """Fraction of arrivals not served: drops, losses, rejections,
        in-queue expiries, and timeouts.

        This is the rate an SLO drop budget must cover — a client retries
        a request lost to a dead board exactly like one shed by a full
        queue or turned away at admission, so
        :func:`repro.serve.slo.evaluate_slo` charges all of them against
        ``max_drop_rate``."""
        if not self.arrivals:
            return 0.0
        shed = (
            self.drops + self.lost + self.rejected + self.expired
            + self.timed_out
        )
        return shed / self.arrivals

    @property
    def good_completions(self) -> int:
        """Completions within deadline (all of them when no deadline)."""
        return self.completions - self.late

    def completed_rate_per_cycle(self, window_cycles: float) -> float:
        """Completions per cycle over an observation window.

        Pass the *horizon* (offered-traffic window), not the drained
        elapsed time: a drained run's tail has no arrivals, and dividing
        by it would under-report designs with deep pipelines."""
        return self.completions / window_cycles if window_cycles else 0.0


@dataclass(frozen=True)
class ServeResult:
    """Everything one seeded multi-tenant traffic simulation produced.

    ``clp_busy_fraction`` is each CLP's busy time share: admitted images
    charge the CLP its modelled per-image cycles, so at saturation the
    epoch-limiting CLP approaches 1.0 and the others approach their
    Section 4.1 duty factor (``clp.total_cycles / epoch_cycles``).
    """

    design_label: str
    num_clps: int
    epoch_cycles: float
    pipeline_depths: Tuple[int, ...]  # per tenant, in epochs
    frequency_mhz: float
    horizon_cycles: float
    elapsed_cycles: float
    seed: int
    queue_depth: int
    policy: str
    drained: bool
    tenants: Tuple[TenantStats, ...]
    clp_busy_fraction: Tuple[float, ...]
    #: Windowed telemetry (:class:`repro.obs.TimeSeries`), present only
    #: when the run was observed (``ObsSpec(timeseries=True)``).  ``None``
    #: by default so unobserved results stay byte-identical to pre-obs
    #: records; fast-engine runs legitimately report ``None`` too.
    timeseries: Optional["TimeSeries"] = None
    #: Overload-control report (:class:`repro.serve.overload
    #: .OverloadReport`): per-priority windowed goodput and brownout
    #: shedding.  ``None`` whenever no overload feature was active, so
    #: plain runs stay byte-identical to pre-overload records.
    overload: Optional["OverloadReport"] = None

    # ------------------------------------------------------------ conversions
    @property
    def cycles_per_second(self) -> float:
        return self.frequency_mhz * 1e6

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / self.cycles_per_second * 1e3

    def rate_to_rps(self, rate_per_cycle: float) -> float:
        return rate_per_cycle * self.cycles_per_second

    @property
    def capacity_rps(self) -> float:
        """One image per tenant per epoch: the analytic service ceiling."""
        return self.cycles_per_second / self.epoch_cycles

    # ----------------------------------------------------------------- access
    def tenant(self, name: str) -> TenantStats:
        for stats in self.tenants:
            if stats.name == name:
                return stats
        raise KeyError(
            f"no tenant {name!r}; tenants: {[t.name for t in self.tenants]}"
        )

    @property
    def total_arrivals(self) -> int:
        return sum(t.arrivals for t in self.tenants)

    @property
    def total_completions(self) -> int:
        return sum(t.completions for t in self.tenants)

    # ----------------------------------------------------------------- report
    def format(self) -> str:
        from ..analysis.report import render_table

        # Overload columns appear only when the run produced the class
        # (mirrors the fleet table's conditional ``lost`` column).
        show_rejected = any(t.rejected for t in self.tenants)
        show_expired = any(t.expired for t in self.tenants)
        rows = []
        for t in self.tenants:
            if t.latency is None:
                p50 = p95 = p99 = "-"
            else:
                p50 = f"{self.cycles_to_ms(t.latency.p50):.2f}"
                p95 = f"{self.cycles_to_ms(t.latency.p95):.2f}"
                p99 = f"{self.cycles_to_ms(t.latency.p99):.2f}"
            row = [
                t.name,
                f"{self.rate_to_rps(t.offered_rate_per_cycle):.0f}",
                t.arrivals,
                t.completions,
                f"{self.rate_to_rps(t.completed_rate_per_cycle(self.horizon_cycles)):.1f}",
                p50,
                p95,
                p99,
                f"{t.drop_rate:.1%}",
                f"{t.mean_queue_depth:.1f}",
            ]
            if show_rejected:
                row.append(t.rejected)
            if show_expired:
                row.append(t.expired)
            rows.append(tuple(row))
        headers = [
            "tenant", "offered r/s", "arrivals", "done", "goodput r/s",
            "p50 ms", "p95 ms", "p99 ms", "drop", "avg queue",
        ]
        if show_rejected:
            headers.append("rejected")
        if show_expired:
            headers.append("expired")
        table = render_table(
            tuple(headers),
            rows,
            title=(
                f"{self.design_label}: {self.num_clps} CLPs @ "
                f"{self.frequency_mhz:.0f}MHz, epoch={self.epoch_cycles:.0f} "
                f"cycles, capacity={self.capacity_rps:.1f} img/s/tenant, "
                f"seed={self.seed}"
            ),
        )
        busy = ", ".join(
            f"CLP{i}={share:.1%}" for i, share in enumerate(self.clp_busy_fraction)
        )
        window = (
            f"simulated {self.cycles_to_ms(self.elapsed_cycles):.1f} ms "
            f"({self.elapsed_cycles:.0f} cycles)"
            + (", drained" if self.drained else "")
        )
        return f"{table}\nCLP utilization: {busy}\n{window}"
