"""Overload control: admission, queue disciplines, retries, brownout.

The open-loop simulator (:mod:`repro.serve.simulator`) answers "what
does this design do under a given offered load?"; this module models
what a production front door does when that load exceeds capacity:

* **Admission control** — a per-tenant token bucket
  (:class:`AdmissionPolicy`) rejects excess arrivals at the door, and
  *queue-deadline admission* rejects a request at enqueue time when its
  estimated queue wait already exceeds the tenant's deadline.  Rejected
  work is a new accounting class (``rejected``), distinct from
  back-pressure ``drops`` and failure ``lost``.
* **Queue disciplines** — ``fifo`` (the historical order), ``edf``
  (earliest absolute deadline first), and ``priority`` (fresh arrivals
  ahead of retries/hedges, the classic retry-demotion defence).  Under
  ``edf``/``priority`` a request whose deadline passed while queued is
  *shed at dispatch time* (``expired``) instead of burning an epoch on
  work the client has already given up on; ``fifo`` keeps the naive
  behaviour of serving it late.
* **Closed-loop clients** — a :class:`RetryPolicy` turns the open
  arrival streams into feedback loops: a rejected/dropped/expired/lost
  request is retried after a backoff (fixed or exponential, with
  optional full or decorrelated jitter), bounded by ``max_attempts``
  (0 = unlimited, the naive client that makes retry storms metastable).
  Retry delays draw from a dedicated ``{seed}/{tenant}/retry`` RNG
  substream, so enabling retries never perturbs the arrival streams.
  ``hedge_ms`` optionally duplicates a request still queued after that
  delay (tail-latency hedging).
* **Brownout** — a :class:`BrownoutPolicy` controller stepped on window
  boundaries (like the autoscaler, but *inside* the run): when the
  highest-priority class's windowed p99 breaches its SLO, the lowest
  still-admitted priority class is shed at the gate for subsequent
  windows; classes are restored bottom-up as the tail recovers.  The
  controller never sheds a class while a strictly lower-priority class
  is still admitted, and never sheds the top class.

Every run with any of these features active reduces, alongside the
usual per-tenant stats, to an :class:`OverloadReport`: per-priority
goodput (completions within deadline) on a window grid, which is what
the retry-storm metastability tests and the brownout invariant tests
assert against.

Engine note: overload features are feedback loops over the event
stream, so ``engine="auto"`` falls back to the event engine whenever
any feature is active; a spec with every feature off is bit-exact with
the fast path (regression-tested).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from ..obs.telemetry import MetricsRecorder
    from ..obs.trace import TraceRecorder
    from .simulator import TenantSpec

__all__ = [
    "QUEUE_POLICIES",
    "BACKOFF_MODES",
    "JITTER_MODES",
    "AdmissionPolicy",
    "RetryPolicy",
    "BrownoutPolicy",
    "OverloadSpec",
    "PriorityClassStats",
    "OverloadReport",
    "OverloadTenantState",
    "OverloadController",
    "overload_spec_to_dict",
    "overload_spec_from_dict",
    "overload_report_to_dict",
    "overload_report_from_dict",
]

#: Queue disciplines: historical FIFO, earliest-deadline-first, and
#: fresh-before-retries priority ordering.
QUEUE_POLICIES = ("fifo", "edf", "priority")

BACKOFF_MODES = ("fixed", "exponential")

JITTER_MODES = ("none", "full", "decorrelated")


# --------------------------------------------------------------------- specs
@dataclass(frozen=True)
class AdmissionPolicy:
    """Front-door admission: token bucket and/or queue-deadline checks.

    ``rate_rps`` is the bucket's refill rate in requests per second per
    tenant (``None`` disables the bucket); ``burst`` its capacity in
    tokens.  ``deadline_admission`` rejects a request at enqueue when
    its estimated queue wait — ``(queued + 1) * epoch`` admission slots
    — already exceeds the tenant's deadline, which keeps queues from
    growing beyond a deadline's worth of work.
    """

    rate_rps: Optional[float] = None
    burst: float = 8.0
    deadline_admission: bool = False

    def __post_init__(self) -> None:
        if self.rate_rps is not None and self.rate_rps <= 0:
            raise ValueError("rate_rps must be positive when set")
        if self.burst < 1:
            raise ValueError("burst must be at least 1 token")

    @property
    def active(self) -> bool:
        return self.rate_rps is not None or self.deadline_admission


@dataclass(frozen=True)
class RetryPolicy:
    """Closed-loop client model: bounded, backed-off retries + hedging.

    ``max_attempts`` bounds *total* tries per logical request; 0 means
    unlimited (the naive client).  Backoff for attempt ``n`` starts from
    ``base_ms`` (doubling per attempt under ``"exponential"``), capped
    at ``cap_ms`` (default ``32 * base_ms``), then jittered: ``"full"``
    draws uniformly in ``[0, delay]``; ``"decorrelated"`` draws in
    ``[base, 3 * previous]`` (AWS-style), which decorrelates synchronized
    retry waves.  ``hedge_ms`` duplicates a request still queued after
    that delay (at most one hedge per request).
    """

    max_attempts: int = 3
    backoff: str = "exponential"
    base_ms: float = 0.1
    cap_ms: Optional[float] = None
    jitter: str = "decorrelated"
    hedge_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0 (0 = unlimited)")
        if self.backoff not in BACKOFF_MODES:
            raise ValueError(
                f"backoff must be one of {BACKOFF_MODES}, got {self.backoff!r}"
            )
        if self.base_ms <= 0:
            raise ValueError("base_ms must be positive")
        if self.cap_ms is not None and self.cap_ms < self.base_ms:
            raise ValueError("cap_ms must be >= base_ms when set")
        if self.jitter not in JITTER_MODES:
            raise ValueError(
                f"jitter must be one of {JITTER_MODES}, got {self.jitter!r}"
            )
        if self.hedge_ms is not None and self.hedge_ms <= 0:
            raise ValueError("hedge_ms must be positive when set")

    @property
    def effective_cap_ms(self) -> float:
        return self.cap_ms if self.cap_ms is not None else 32.0 * self.base_ms


@dataclass(frozen=True)
class BrownoutPolicy:
    """Graceful degradation: shed low-priority classes to save the tail.

    Every ``window_ms`` the controller compares the highest-priority
    class's windowed p99 against ``p99_ms``.  On a breach it sheds the
    lowest still-admitted priority class (never the top class); once the
    protected p99 drops under ``recover_factor * p99_ms`` it restores
    the highest shed class.  Shedding is strictly bottom-up: a class is
    only ever shed while every strictly lower class already is.
    """

    p99_ms: float = 5.0
    window_ms: float = 2.0
    recover_factor: float = 0.8

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive")
        if self.window_ms <= 0:
            raise ValueError("window_ms must be positive")
        if not 0 < self.recover_factor <= 1:
            raise ValueError("recover_factor must be in (0, 1]")


@dataclass(frozen=True)
class OverloadSpec:
    """Everything the overload layer can switch on, in one frozen spec.

    The default instance (every field at its default) is *inactive*:
    runs behave — and serialize — bit-identically to passing no spec at
    all, which the differential tests pin.  ``deadline_ms`` supplies a
    default request deadline to tenants that do not set their own
    (:attr:`repro.serve.simulator.TenantSpec.deadline_ms` wins).
    """

    queue_policy: str = "fifo"
    admission: Optional[AdmissionPolicy] = None
    retry: Optional[RetryPolicy] = None
    brownout: Optional[BrownoutPolicy] = None
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.queue_policy not in QUEUE_POLICIES:
            raise ValueError(
                f"unknown queue policy {self.queue_policy!r}; "
                f"known: {QUEUE_POLICIES}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")

    @property
    def active(self) -> bool:
        """True when any feature changes run semantics (forces the event
        engine); an all-defaults spec is equivalent to ``None``."""
        return (
            self.queue_policy != "fifo"
            or (self.admission is not None and self.admission.active)
            or self.retry is not None
            or self.brownout is not None
            or self.deadline_ms is not None
        )


# ----------------------------------------------------------------- requests
class _Request:
    """One attempt of one logical request, as it moves through a queue.

    Mutable on purpose: ``done`` flips when the attempt leaves the queue
    (dispatched, dropped, evicted, expired, or evacuated-lost), which is
    what cancels a pending hedge.  ``backoff_cycles`` carries the last
    delay for decorrelated jitter.
    """

    __slots__ = (
        "arrival", "attempt", "hedge", "hedged", "done", "backoff_cycles",
        "seq",
    )

    def __init__(
        self,
        arrival: float,
        attempt: int = 1,
        *,
        hedge: bool = False,
        backoff_cycles: float = 0.0,
    ) -> None:
        self.arrival = arrival
        self.attempt = attempt
        self.hedge = hedge
        self.hedged = False
        self.done = False
        self.backoff_cycles = backoff_cycles
        self.seq = 0  # stamped by the controller; global insertion order


class OverloadTenantState:
    """Tenant state with a pluggable queue discipline and new counters.

    A drop-in replacement for :class:`repro.serve.simulator.TenantState`
    used when the overload layer is active: the queue holds
    :class:`_Request` entries (in discipline order) instead of bare
    arrival times, and ``rejected``/``expired``/``retries``/``hedges``/
    ``late`` extend the accounting.  The occupancy integral, peak
    tracking, and stats reduction are inherited.
    """

    def __init__(
        self,
        spec: "TenantSpec",
        depth_epochs: int,
        clp_cycles: Tuple[int, ...],
        queue_depth: int,
        policy: str,
        *,
        queue_policy: str = "fifo",
        epoch: float = 1.0,
        deadline_cycles: Optional[float] = None,
    ) -> None:
        # Reuse the base-state constructor for the shared bookkeeping.
        from .simulator import TenantState

        TenantState.__init__(  # type: ignore[arg-type]
            self, spec, depth_epochs, clp_cycles, queue_depth, policy
        )
        self.queue: List[_Request] = []  # discipline order, head at [0]
        self.queue_policy = queue_policy
        self.epoch = epoch
        self.deadline_cycles = deadline_cycles
        self.rejected = 0
        self.expired = 0
        self.retries = 0
        self.hedges = 0
        self.late = 0

    # Shared helpers lifted from TenantState (single inheritance would
    # drag the Deque queue type in; composition keeps the float-queue
    # fast path untouched while this class redefines queue handling).
    from .simulator import TenantState as _Base

    _touch = _Base._touch
    mean_queue_depth = _Base.mean_queue_depth
    on_completion = _Base.on_completion
    del _Base

    # ------------------------------------------------------------- discipline
    def _key(self, req: _Request):
        if self.queue_policy == "edf":
            deadline = (
                req.arrival + self.deadline_cycles
                if self.deadline_cycles is not None
                else float("inf")
            )
            return (deadline, req.seq)
        if self.queue_policy == "priority":
            # Fresh work ahead of retries and hedges: retry demotion
            # keeps a storm from starving first-attempt traffic.
            return (0 if (req.attempt == 1 and not req.hedge) else 1, req.seq)
        return (req.seq,)

    def _insert(self, req: _Request) -> None:
        key = self._key(req)
        position = len(self.queue)
        # Seq keys are monotone, so the common case appends; a linear
        # scan from the tail is O(queue_depth) worst case (<= 64-ish).
        while position > 0 and self._key(self.queue[position - 1]) > key:
            position -= 1
        self.queue.insert(position, req)

    # ----------------------------------------------------------------- events
    def book_arrival(self, req: _Request) -> None:
        """Count one attempt arriving (before any admission decision)."""
        self.arrivals += 1
        if req.hedge:
            self.hedges += 1
        elif req.attempt > 1:
            self.retries += 1

    def push(self, req: _Request, now: float) -> Optional[_Request]:
        """Queue an admitted request; returns the drop-policy victim.

        ``None`` means the request was queued with room to spare.  Under
        drop-tail a full queue returns ``req`` itself (never queued);
        under drop-head it returns the evicted head — the entry the
        discipline would have served next — and queues ``req``.
        """
        self._touch(now)
        victim: Optional[_Request] = None
        if len(self.queue) >= self.queue_depth:
            self.drops += 1
            if self.policy == "drop-tail":
                req.done = True
                return req
            victim = self.queue.pop(0)
            victim.done = True
        self._insert(req)
        self.peak_queue = max(self.peak_queue, len(self.queue))
        return victim

    def requeue(self, req: _Request, now: float) -> Optional[_Request]:
        """Re-admit an evacuated request (not a new arrival).

        Mirrors :meth:`TenantState.requeue` for the fleet's failure
        evacuation: the request keeps its original arrival time; a full
        queue sheds it as a drop here (returned so the host can hand it
        to the retry layer).
        """
        self._touch(now)
        if len(self.queue) >= self.queue_depth:
            self.drops += 1
            req.done = True
            return req
        req.done = False
        self._insert(req)
        self.peak_queue = max(self.peak_queue, len(self.queue))
        return None

    def pop_next(self, now: float) -> Optional[Tuple[str, _Request]]:
        """Take the discipline head: ``("ok", req)`` or ``("expired", req)``.

        Expiry shedding belongs to the deadline-aware disciplines: under
        ``fifo`` a stale request is still served (and completes late),
        which is exactly the epoch-burning naive behaviour the
        retry-storm drill demonstrates.
        """
        if not self.queue:
            return None
        self._touch(now)
        req = self.queue.pop(0)
        req.done = True
        if (
            self.queue_policy != "fifo"
            and self.deadline_cycles is not None
            and now > req.arrival + self.deadline_cycles
        ):
            self.expired += 1
            return ("expired", req)
        self.pipeline += 1
        return ("ok", req)

    # ----------------------------------------------------------------- final
    def stats(self, elapsed: float):
        from .simulator import TenantState

        base = TenantState.stats(self, elapsed)  # type: ignore[arg-type]
        from dataclasses import replace

        return replace(
            base,
            rejected=self.rejected,
            expired=self.expired,
            retries=self.retries,
            hedges=self.hedges,
            late=self.late,
        )


# ------------------------------------------------------------------ reports
@dataclass(frozen=True)
class PriorityClassStats:
    """One priority class's totals across a run (all member tenants)."""

    priority: int
    tenants: Tuple[str, ...]
    arrivals: int = 0
    completions: int = 0
    good: int = 0
    rejected: int = 0
    expired: int = 0
    late: int = 0
    retries: int = 0
    hedges: int = 0


@dataclass(frozen=True)
class OverloadReport:
    """What the overload layer did, on a window grid.

    ``goodput`` maps ``str(priority)`` (string keys survive JSON) to
    per-window counts of *good* completions — completions within the
    tenant's deadline, or all completions for deadline-less tenants.
    ``shed`` maps the same keys to 0/1 flags marking windows the
    brownout controller gated that class.  ``classes`` carries the
    per-class totals the SLO layer and tests reduce over.
    """

    queue_policy: str
    window_cycles: float
    times: Tuple[float, ...]
    goodput: Dict[str, Tuple[int, ...]]
    shed: Dict[str, Tuple[int, ...]]
    classes: Tuple[PriorityClassStats, ...]
    brownout_steps: int = 0

    def class_stats(self, priority: int) -> PriorityClassStats:
        for entry in self.classes:
            if entry.priority == priority:
                return entry
        raise KeyError(
            f"no priority class {priority}; "
            f"classes: {[c.priority for c in self.classes]}"
        )

    def goodput_between(
        self,
        start_cycles: float,
        end_cycles: float,
        priority: Optional[int] = None,
    ) -> int:
        """Good completions finishing in ``[start, end)`` windows.

        Windows are attributed by their end time; ``priority=None`` sums
        every class.  The metastability tests compare pre-fault and
        post-fault slices of the same run through this.
        """
        total = 0
        for key, counts in self.goodput.items():
            if priority is not None and int(key) != priority:
                continue
            for index, count in enumerate(counts):
                window_start = index * self.window_cycles
                if start_cycles <= window_start < end_cycles:
                    total += count
        return total

    def shed_priorities(self, window: int) -> Tuple[int, ...]:
        """Priority classes gated during one window, ascending."""
        return tuple(
            sorted(
                int(key)
                for key, flags in self.shed.items()
                if window < len(flags) and flags[window]
            )
        )


# --------------------------------------------------------------- controller
class OverloadController:
    """Run-scoped overload logic shared by serve and fleet simulators.

    The host simulator owns routing and the event loop; the controller
    owns every admission decision, retry/hedge scheduling, brownout
    stepping, and the per-class accounting that becomes the
    :class:`OverloadReport`.  Hosts interact through three calls:

    * :meth:`arrive` — full admission path for one attempt (gate →
      route → deadline admission → queue insert), used for fresh
      arrivals, retries, and hedges alike.
    * :meth:`dispatch` — discipline-ordered epoch dispatch (pops expired
      entries without burning the slot).
    * :meth:`complete` — completion accounting (lateness, windowed
      goodput).

    ``route`` (passed per :meth:`arrive` call) returns the landing
    ``(state, replica_index)`` or ``None`` for an unroutable arrival —
    the host still books unroutable arrivals in its own ledger; the
    controller only schedules the client's retry.
    """

    def __init__(
        self,
        spec: OverloadSpec,
        tenants: Sequence["TenantSpec"],
        *,
        horizon: float,
        frequency_mhz: float,
        seed: int,
        schedule_at: Callable[[float, Callable[[], None]], None],
        now: Callable[[], float],
        deliver: Callable[[int, _Request], None],
        tracer: Optional["TraceRecorder"] = None,
        recorder: Optional["MetricsRecorder"] = None,
    ) -> None:
        self.spec = spec
        self.tenants = tuple(tenants)
        self.horizon = horizon
        self.cycles_per_ms = frequency_mhz * 1e3
        self.seed = seed
        self._schedule_at = schedule_at
        self._now = now
        self._deliver = deliver
        self.tracer = tracer
        self.recorder = recorder
        self._seq = 0
        #: Scheduled retry/hedge deliveries not yet fired — the host's
        #: drain logic keeps epoch boundaries alive while any remain.
        self.pending_deliveries = 0

        #: Per-tenant deadline in cycles (tenant spec wins over default).
        self.deadline_cycles: List[Optional[float]] = [
            self._ms(
                t.deadline_ms
                if t.deadline_ms is not None
                else spec.deadline_ms
            )
            for t in self.tenants
        ]
        self.priorities: Tuple[int, ...] = tuple(
            t.priority for t in self.tenants
        )
        #: Distinct priorities ascending; brownout sheds a prefix of it.
        self.priority_levels: Tuple[int, ...] = tuple(
            sorted(set(self.priorities))
        )

        # Token buckets start full — a burst at t=0 is admitted.
        admission = spec.admission
        self._bucket_rate: Optional[float] = None
        if admission is not None and admission.rate_rps is not None:
            self._bucket_rate = admission.rate_rps / (frequency_mhz * 1e6)
        self._bucket_burst = admission.burst if admission is not None else 0.0
        self._tokens = [self._bucket_burst] * len(self.tenants)
        self._bucket_mark = [0.0] * len(self.tenants)

        self._retry_rngs: Dict[str, random.Random] = {}
        #: Retry/hedge attempts the host fleet could not aggregate from
        #: replica states because they never landed (gate rejections).
        self.gate_arrivals: Dict[str, int] = {t.name: 0 for t in self.tenants}
        self.gate_rejected: Dict[str, int] = {t.name: 0 for t in self.tenants}
        self.gate_retries: Dict[str, int] = {t.name: 0 for t in self.tenants}
        self.gate_hedges: Dict[str, int] = {t.name: 0 for t in self.tenants}

        # ---------------------------------------------------- window grid
        brownout = spec.brownout
        if brownout is not None:
            self.window_cycles = self._ms(brownout.window_ms) or 1.0
        else:
            self.window_cycles = horizon / 60.0
        self.num_windows = max(1, -int(-horizon // self.window_cycles))
        self._good: Dict[int, List[int]] = {
            level: [0] * self.num_windows for level in self.priority_levels
        }
        self._shed_flags: Dict[int, List[int]] = {
            level: [0] * self.num_windows for level in self.priority_levels
        }
        self._window_latencies: List[float] = []  # protected class, window
        self._window_arrivals: Dict[int, int] = {
            level: 0 for level in self.priority_levels
        }
        self._class_totals: Dict[int, Dict[str, int]] = {
            level: {
                "arrivals": 0, "completions": 0, "good": 0, "rejected": 0,
                "expired": 0, "late": 0, "retries": 0, "hedges": 0,
            }
            for level in self.priority_levels
        }
        self.shed_level = 0
        self.brownout_steps = 0
        if brownout is not None and len(self.priority_levels) > 1:
            self._brownout_slo_cycles = self._ms(brownout.p99_ms)
            for index in range(1, self.num_windows + 1):
                when = min(index * self.window_cycles, horizon)
                self._schedule_at(
                    when, lambda index=index: self._brownout_step(index)
                )

    # ------------------------------------------------------------- utilities
    def _ms(self, value_ms: Optional[float]) -> Optional[float]:
        return None if value_ms is None else value_ms * self.cycles_per_ms

    def _window_of(self, when: float) -> int:
        index = int(when / self.window_cycles)
        return min(index, self.num_windows - 1)

    def _retry_rng(self, name: str) -> random.Random:
        rng = self._retry_rngs.get(name)
        if rng is None:
            # Dedicated substream: enabling retries must not perturb the
            # arrival streams ({seed}/{index}/{name}) or fault draws.
            rng = random.Random(f"{self.seed}/{name}/retry")
            self._retry_rngs[name] = rng
        return rng

    def make_request(self, arrival: float) -> _Request:
        req = _Request(arrival)
        self._seq += 1
        req.seq = self._seq
        return req

    @property
    def shed_set(self) -> Tuple[int, ...]:
        return self.priority_levels[: self.shed_level]

    # ---------------------------------------------------------------- arrive
    def arrive(
        self,
        index: int,
        req: _Request,
        route: Callable[[], Optional[Tuple[Any, Optional[int]]]],
    ) -> None:
        """Full admission path for one attempt of one request."""
        now = self._now()
        spec = self.tenants[index]
        priority = self.priorities[index]
        totals = self._class_totals[priority]
        totals["arrivals"] += 1
        self._window_arrivals[priority] += 1
        if req.hedge:
            totals["hedges"] += 1
        elif req.attempt > 1:
            totals["retries"] += 1

        # Brownout gate: shed classes are rejected before routing.
        if priority in self.shed_set:
            self._gate_reject(index, req, now, reason="brownout")
            return
        # Token bucket (per tenant, fleet-wide: the front door).
        if self._bucket_rate is not None:
            tokens = min(
                self._bucket_burst,
                self._tokens[index]
                + (now - self._bucket_mark[index]) * self._bucket_rate,
            )
            self._bucket_mark[index] = now
            if tokens < 1.0:
                self._tokens[index] = tokens
                self._gate_reject(index, req, now, reason="admission")
                return
            self._tokens[index] = tokens - 1.0

        landing = route()
        if landing is None:
            # The host booked the unroutable arrival; the client retries.
            self._schedule_retry(index, req, now, reason="unroutable")
            return
        state, replica = landing
        state.book_arrival(req)

        admission = self.spec.admission
        deadline = self.deadline_cycles[index]
        if (
            admission is not None
            and admission.deadline_admission
            and deadline is not None
            and (len(state.queue) + 1) * state.epoch > deadline
        ):
            state.rejected += 1
            totals["rejected"] += 1
            self._note_reject(spec.name, replica, now, "deadline")
            self._schedule_retry(index, req, now, reason="deadline")
            return

        victim = state.push(req, now)
        if self.tracer is not None:
            self.tracer.request_arrived(
                spec.name,
                replica,
                now,
                dropped=victim is not None,
                policy=state.policy,
            )
        if victim is not None:
            if self.recorder is not None:
                self.recorder.count(f"drops/{spec.name}", now)
            self._schedule_retry(index, victim, now, reason="dropped")
        if victim is not req:
            self._maybe_hedge(index, req, now)

    def _gate_reject(
        self, index: int, req: _Request, now: float, *, reason: str
    ) -> None:
        spec = self.tenants[index]
        self.gate_arrivals[spec.name] += 1
        self.gate_rejected[spec.name] += 1
        if req.hedge:
            self.gate_hedges[spec.name] += 1
        elif req.attempt > 1:
            self.gate_retries[spec.name] += 1
        self._class_totals[self.priorities[index]]["rejected"] += 1
        self._note_reject(spec.name, None, now, reason)
        self._schedule_retry(index, req, now, reason=reason)

    def _note_reject(
        self, name: str, replica: Optional[int], now: float, reason: str
    ) -> None:
        if self.tracer is not None:
            self.tracer.request_rejected(name, replica, now, reason=reason)
        if self.recorder is not None:
            self.recorder.count(f"rejected/{name}", now)

    # --------------------------------------------------------------- retries
    def client_retry(self, index: int, req: _Request, *, reason: str) -> None:
        """Host hook: the client observed a failure (evacuation loss,
        killed in-flight work) and schedules a retry under the policy."""
        self._schedule_retry(index, req, self._now(), reason=reason)

    def _schedule_retry(
        self, index: int, req: _Request, now: float, *, reason: str
    ) -> None:
        policy = self.spec.retry
        if policy is None:
            return
        if policy.max_attempts and req.attempt >= policy.max_attempts:
            return
        spec = self.tenants[index]
        rng = self._retry_rng(spec.name)
        base = self._ms(policy.base_ms) or 1.0
        cap = self._ms(policy.effective_cap_ms) or base
        if policy.jitter == "decorrelated":
            previous = req.backoff_cycles if req.backoff_cycles > 0 else base
            delay = min(cap, rng.uniform(base, 3.0 * previous))
        else:
            delay = base
            if policy.backoff == "exponential":
                delay = base * (2.0 ** (req.attempt - 1))
            delay = min(cap, delay)
            if policy.jitter == "full":
                delay = rng.uniform(0.0, delay)
        when = now + delay
        if when > self.horizon:
            return  # the client's patience ends with the run window
        retry = _Request(
            when, req.attempt + 1, backoff_cycles=delay
        )
        self._seq += 1
        retry.seq = self._seq
        if self.tracer is not None:
            self.tracer.request_retry(
                spec.name, now, attempt=retry.attempt, delay_cycles=delay,
                reason=reason,
            )
        if self.recorder is not None:
            self.recorder.count(f"retries/{spec.name}", now)
        self.pending_deliveries += 1

        def fire_retry() -> None:
            self.pending_deliveries -= 1
            self._deliver(index, retry)

        self._schedule_at(when, fire_retry)

    def _maybe_hedge(self, index: int, req: _Request, now: float) -> None:
        policy = self.spec.retry
        if (
            policy is None
            or policy.hedge_ms is None
            or req.hedge
            or req.hedged
        ):
            return
        req.hedged = True
        delay = self._ms(policy.hedge_ms) or 0.0
        when = now + delay
        if when > self.horizon:
            return
        spec = self.tenants[index]
        self.pending_deliveries += 1

        def fire_hedge() -> None:
            self.pending_deliveries -= 1
            if req.done:
                return  # original dispatched or shed; hedge moot
            hedge = _Request(self._now(), req.attempt, hedge=True)
            self._seq += 1
            hedge.seq = self._seq
            if self.tracer is not None:
                self.tracer.request_hedged(spec.name, self._now())
            if self.recorder is not None:
                self.recorder.count(f"hedges/{spec.name}", self._now())
            self._deliver(index, hedge)

        self._schedule_at(when, fire_hedge)

    # -------------------------------------------------------------- dispatch
    def dispatch(
        self, index: int, state: OverloadTenantState, replica: Optional[int]
    ) -> Optional[_Request]:
        """Epoch-boundary admission under the queue discipline.

        Pops expired entries (counting and retrying them) until a live
        head is admitted into the pipeline or the queue runs dry —
        expired work never burns the epoch's admission slot.
        """
        now = self._now()
        spec = self.tenants[index]
        totals = self._class_totals[self.priorities[index]]
        while True:
            popped = state.pop_next(now)
            if popped is None:
                return None
            outcome, req = popped
            if outcome == "ok":
                return req
            totals["expired"] += 1
            if self.tracer is not None:
                self.tracer.request_expired(spec.name, replica, now)
            if self.recorder is not None:
                self.recorder.count(f"expired/{spec.name}", now)
            self._schedule_retry(index, req, now, reason="expired")

    # -------------------------------------------------------------- complete
    def complete(
        self, index: int, state: OverloadTenantState, req: _Request
    ) -> None:
        now = self._now()
        state.on_completion(req.arrival, now)
        priority = self.priorities[index]
        totals = self._class_totals[priority]
        totals["completions"] += 1
        latency = now - req.arrival
        deadline = self.deadline_cycles[index]
        if deadline is not None and latency > deadline:
            state.late += 1
            totals["late"] += 1
            if self.recorder is not None:
                self.recorder.count(f"late/{self.tenants[index].name}", now)
        else:
            totals["good"] += 1
            self._good[priority][self._window_of(now)] += 1
        if (
            self.spec.brownout is not None
            and priority == self.priority_levels[-1]
        ):
            self._window_latencies.append(latency)

    # -------------------------------------------------------------- brownout
    def _brownout_step(self, window_index: int) -> None:
        """One controller step at a window boundary (windows 1-based)."""
        from .metrics import percentile

        brownout = self.spec.brownout
        assert brownout is not None
        slo = self._brownout_slo_cycles or 1.0
        protected = self.priority_levels[-1]
        samples = self._window_latencies
        if samples:
            breach = percentile(samples, 99) > slo
            recovered = percentile(samples, 99) < brownout.recover_factor * slo
        else:
            # No completions: a breach if the protected class even tried.
            breach = self._window_arrivals[protected] > 0
            recovered = not breach
        ceiling = len(self.priority_levels) - 1  # never shed the top class
        if breach and self.shed_level < ceiling:
            self.shed_level += 1
            self.brownout_steps += 1
            self._trace_brownout("shed")
        elif recovered and self.shed_level > 0:
            self.shed_level -= 1
            self.brownout_steps += 1
            self._trace_brownout("restore")
        # Stamp the level onto the *next* window's flags (it governs
        # admission from this boundary until the next step).
        if window_index < self.num_windows:
            for level in self.shed_set:
                self._shed_flags[level][window_index] = 1
        self._window_latencies = []
        for level in self.priority_levels:
            self._window_arrivals[level] = 0

    def _trace_brownout(self, action: str) -> None:
        if self.tracer is not None:
            self.tracer.brownout_step(
                self._now(),
                action=action,
                shed=[int(p) for p in self.shed_set],
            )
        if self.recorder is not None:
            self.recorder.count("brownout_steps", self._now())

    # ---------------------------------------------------------------- report
    def report(self) -> OverloadReport:
        times = tuple(
            min((index + 1) * self.window_cycles, self.horizon)
            for index in range(self.num_windows)
        )
        classes = tuple(
            PriorityClassStats(
                priority=level,
                tenants=tuple(
                    t.name
                    for t, p in zip(self.tenants, self.priorities)
                    if p == level
                ),
                **self._class_totals[level],
            )
            for level in self.priority_levels
        )
        return OverloadReport(
            queue_policy=self.spec.queue_policy,
            window_cycles=self.window_cycles,
            times=times,
            goodput={
                str(level): tuple(counts)
                for level, counts in self._good.items()
            },
            shed={
                str(level): tuple(flags)
                for level, flags in self._shed_flags.items()
            },
            classes=classes,
            brownout_steps=self.brownout_steps,
        )


# ------------------------------------------------------------ serialization
def overload_spec_to_dict(spec: OverloadSpec) -> Dict[str, Any]:
    """JSON-ready record; optional sections omitted when disabled, so an
    all-defaults spec round-trips to a minimal record."""
    record: Dict[str, Any] = {"queue_policy": spec.queue_policy}
    if spec.admission is not None:
        from dataclasses import asdict

        record["admission"] = asdict(spec.admission)
    if spec.retry is not None:
        from dataclasses import asdict

        record["retry"] = asdict(spec.retry)
    if spec.brownout is not None:
        from dataclasses import asdict

        record["brownout"] = asdict(spec.brownout)
    if spec.deadline_ms is not None:
        record["deadline_ms"] = spec.deadline_ms
    return record


def overload_spec_from_dict(data: Dict[str, Any]) -> OverloadSpec:
    admission = data.get("admission")
    retry = data.get("retry")
    brownout = data.get("brownout")
    deadline = data.get("deadline_ms")
    return OverloadSpec(
        queue_policy=str(data.get("queue_policy", "fifo")),
        admission=None if admission is None else AdmissionPolicy(**admission),
        retry=None if retry is None else RetryPolicy(**retry),
        brownout=None if brownout is None else BrownoutPolicy(**brownout),
        deadline_ms=None if deadline is None else float(deadline),
    )


def overload_report_to_dict(report: OverloadReport) -> Dict[str, Any]:
    from dataclasses import asdict

    return asdict(report)


def overload_report_from_dict(
    data: Optional[Dict[str, Any]],
) -> Optional[OverloadReport]:
    """Rebuild a report from a result record; tolerant of absence —
    pre-overload records have no ``overload`` key at all."""
    if data is None:
        return None
    return OverloadReport(
        queue_policy=str(data["queue_policy"]),
        window_cycles=float(data["window_cycles"]),
        times=tuple(float(t) for t in data["times"]),
        goodput={
            str(key): tuple(int(v) for v in values)
            for key, values in data["goodput"].items()
        },
        shed={
            str(key): tuple(int(v) for v in values)
            for key, values in data.get("shed", {}).items()
        },
        classes=tuple(
            PriorityClassStats(
                priority=int(entry["priority"]),
                tenants=tuple(str(t) for t in entry["tenants"]),
                arrivals=int(entry.get("arrivals", 0)),
                completions=int(entry.get("completions", 0)),
                good=int(entry.get("good", 0)),
                rejected=int(entry.get("rejected", 0)),
                expired=int(entry.get("expired", 0)),
                late=int(entry.get("late", 0)),
                retries=int(entry.get("retries", 0)),
                hedges=int(entry.get("hedges", 0)),
            )
            for entry in data.get("classes", ())
        ),
        brownout_steps=int(data.get("brownout_steps", 0)),
    )
