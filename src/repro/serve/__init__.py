"""Event-driven multi-tenant traffic serving over Multi-CLP designs.

Turns a static :class:`~repro.core.design.MultiCLPDesign` or
:class:`~repro.opt.joint.JointDesign` into a system you can load-test:
seeded arrival processes feed bounded per-tenant queues, an
epoch-pipelined dispatcher models the accelerator's schedule
(Section 4.1/4.3), and the run reduces to per-tenant latency
percentiles, throughput, drops, and CLP utilization.  See
``repro serve --help`` for the CLI entry point.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BurstyArrivals,
    ConstantRate,
    PoissonArrivals,
    TraceArrivals,
    make_arrival_process,
)
from .metrics import LatencySummary, ServeResult, TenantStats, percentile
from .overload import (
    BACKOFF_MODES,
    JITTER_MODES,
    QUEUE_POLICIES,
    AdmissionPolicy,
    BrownoutPolicy,
    OverloadReport,
    OverloadSpec,
    PriorityClassStats,
    RetryPolicy,
)
from .simulator import (
    DROP_POLICIES,
    TenantSpec,
    pipeline_latency_cycles,
    service_capacity_rps,
    simulate_traffic,
)
from .slo import SLOReport, SLOSpec, TenantVerdict, evaluate_slo

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "ConstantRate",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "make_arrival_process",
    "percentile",
    "LatencySummary",
    "TenantStats",
    "ServeResult",
    "TenantSpec",
    "DROP_POLICIES",
    "QUEUE_POLICIES",
    "BACKOFF_MODES",
    "JITTER_MODES",
    "AdmissionPolicy",
    "RetryPolicy",
    "BrownoutPolicy",
    "OverloadSpec",
    "OverloadReport",
    "PriorityClassStats",
    "simulate_traffic",
    "service_capacity_rps",
    "pipeline_latency_cycles",
    "SLOSpec",
    "SLOReport",
    "TenantVerdict",
    "evaluate_slo",
]
