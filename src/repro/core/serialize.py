"""JSON (de)serialization of networks, CLPs, and designs.

Optimization runs are cheap but not free; a deployment flow wants to
pin the chosen accelerator configuration in version control and reload
it for HLS generation, simulation, or scheduling without re-searching.
The format is plain JSON with a schema version for forward evolution.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .clp import CLPConfig
from .datatypes import DataType
from .design import MultiCLPDesign
from .layer import ConvLayer
from .network import Network

__all__ = [
    "layer_to_dict",
    "layer_from_dict",
    "network_to_dict",
    "network_from_dict",
    "clp_to_dict",
    "clp_from_dict",
    "budget_to_dict",
    "budget_from_dict",
    "design_to_dict",
    "design_from_dict",
    "dump_design",
    "load_design",
    "serve_result_to_dict",
    "serve_result_from_dict",
    "dump_serve_result",
    "load_serve_result",
    "fleet_result_to_dict",
    "fleet_result_from_dict",
    "dump_fleet_result",
    "load_fleet_result",
    "timeseries_to_dict",
    "timeseries_from_dict",
    "scenario_spec_to_dict",
    "scenario_spec_from_dict",
    "slo_spec_to_dict",
    "slo_spec_from_dict",
    "SCHEMA_VERSION",
    "SERVE_SCHEMA_VERSION",
    "FLEET_SCHEMA_VERSION",
    "SCENARIO_SCHEMA_VERSION",
]

SCHEMA_VERSION = 1

SERVE_SCHEMA_VERSION = 1

FLEET_SCHEMA_VERSION = 1

SCENARIO_SCHEMA_VERSION = 1


def layer_to_dict(layer: ConvLayer) -> Dict[str, Any]:
    return {
        "name": layer.name,
        "n": layer.n,
        "m": layer.m,
        "r": layer.r,
        "c": layer.c,
        "k": layer.k,
        "s": layer.s,
    }


def layer_from_dict(data: Dict[str, Any]) -> ConvLayer:
    try:
        return ConvLayer(
            name=data["name"],
            n=int(data["n"]),
            m=int(data["m"]),
            r=int(data["r"]),
            c=int(data["c"]),
            k=int(data["k"]),
            s=int(data["s"]),
        )
    except KeyError as missing:
        raise ValueError(f"layer record missing field {missing}") from None


def network_to_dict(network: Network) -> Dict[str, Any]:
    return {
        "name": network.name,
        "layers": [layer_to_dict(layer) for layer in network],
    }


def network_from_dict(data: Dict[str, Any]) -> Network:
    return Network(
        data["name"], [layer_from_dict(entry) for entry in data["layers"]]
    )


def clp_to_dict(clp: CLPConfig) -> Dict[str, Any]:
    """A JSON-ready CLP record; layers are referenced by name."""
    return {
        "tn": clp.tn,
        "tm": clp.tm,
        "layers": list(clp.layer_names),
        "tile_plans": [list(plan) for plan in clp.tile_plans],
    }


def clp_from_dict(
    record: Dict[str, Any], network: Network, dtype: DataType
) -> CLPConfig:
    """Rebuild a CLP from its record, resolving layer names in ``network``."""
    layers = [network.layer_by_name(name) for name in record["layers"]]
    return CLPConfig(
        tn=int(record["tn"]),
        tm=int(record["tm"]),
        layers=layers,
        dtype=dtype,
        tile_plans=[tuple(plan) for plan in record["tile_plans"]],
    )


def budget_to_dict(budget: "ResourceBudget") -> Dict[str, Any]:
    return {
        "dsp": budget.dsp,
        "bram18k": budget.bram18k,
        "bandwidth_gbps": budget.bandwidth_gbps,
        "frequency_mhz": budget.frequency_mhz,
    }


def budget_from_dict(data: Dict[str, Any]) -> "ResourceBudget":
    from ..fpga.parts import ResourceBudget

    return ResourceBudget(
        dsp=int(data["dsp"]),
        bram18k=int(data["bram18k"]),
        bandwidth_gbps=(
            None if data.get("bandwidth_gbps") is None
            else float(data["bandwidth_gbps"])
        ),
        frequency_mhz=float(data.get("frequency_mhz", 100.0)),
    )


def design_to_dict(design: MultiCLPDesign) -> Dict[str, Any]:
    """A self-contained, JSON-ready record of a design."""
    return {
        "schema": SCHEMA_VERSION,
        "dtype": design.dtype.label,
        "network": network_to_dict(design.network),
        "clps": [clp_to_dict(clp) for clp in design.clps],
        # Redundant summary fields for human diffing; ignored on load.
        "summary": {
            "epoch_cycles": design.epoch_cycles,
            "dsp": design.dsp,
            "bram": design.bram,
            "utilization": design.arithmetic_utilization,
        },
    }


def design_from_dict(data: Dict[str, Any]) -> MultiCLPDesign:
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported design schema {schema!r}; expected {SCHEMA_VERSION}"
        )
    network = network_from_dict(data["network"])
    dtype = DataType.from_name(data["dtype"])
    clps: List[CLPConfig] = [
        clp_from_dict(record, network, dtype) for record in data["clps"]
    ]
    return MultiCLPDesign(network=network, clps=clps, dtype=dtype)


def serve_result_to_dict(result: "ServeResult") -> Dict[str, Any]:
    """A self-contained, JSON-ready record of a traffic simulation.

    Load-test results are evidence: pinning them next to the design they
    exercised lets a deployment diff serving behaviour across optimizer
    or model changes the same way it diffs designs.
    """
    from dataclasses import asdict

    record = asdict(result)
    # Unobserved runs must serialize byte-identically to pre-obs
    # records, so the optional telemetry key is dropped when empty.
    if record.get("timeseries") is None:
        record.pop("timeseries", None)
    _prune_overload_keys(record)
    record["schema"] = SERVE_SCHEMA_VERSION
    return record


#: TenantStats fields introduced by overload control (and, later, by
#: the failure detector's timeout/failover classes).  Every one is zero
#: for a run with none of those features active, and every loader
#: defaults an absent key to zero — so dropping zero-valued keys keeps
#: plain records byte-identical to pre-overload records without losing
#: information.
_OVERLOAD_TENANT_KEYS = (
    "rejected", "expired", "retries", "hedges", "late", "priority",
    "timed_out", "failed_over",
)


def _prune_overload_keys(record: Dict[str, Any]) -> None:
    """Strip overload-era keys that carry no information, in place.

    Applies the same contract as the optional ``timeseries`` key to the
    overload additions: a record written from an overload-free run must
    be byte-identical to one written before overload control existed.
    Mutates ``record`` (a serve- or fleet-result dict from ``asdict``).
    """
    if record.get("overload") is None:
        record.pop("overload", None)
    for tenant in record.get("tenants", ()):
        for key in _OVERLOAD_TENANT_KEYS:
            if tenant.get(key) == 0:
                tenant.pop(key, None)
    for replica in record.get("replicas", ()):
        for tenant in replica.get("tenants", ()):
            for key in _OVERLOAD_TENANT_KEYS:
                if tenant.get(key) == 0:
                    tenant.pop(key, None)


def _tenant_stats_from_dict(entry: Dict[str, Any]) -> "TenantStats":
    """Rebuild one per-tenant record (shared by serve and fleet loaders)."""
    from ..serve.metrics import LatencySummary, TenantStats

    latency = entry.get("latency")
    return TenantStats(
        name=entry["name"],
        offered_rate_per_cycle=float(entry["offered_rate_per_cycle"]),
        arrivals=int(entry["arrivals"]),
        completions=int(entry["completions"]),
        drops=int(entry["drops"]),
        in_flight=int(entry["in_flight"]),
        latency=None if latency is None else LatencySummary(**latency),
        mean_queue_depth=float(entry["mean_queue_depth"]),
        peak_queue_depth=int(entry["peak_queue_depth"]),
        steady_rate_per_cycle=(
            None
            if entry.get("steady_rate_per_cycle") is None
            else float(entry["steady_rate_per_cycle"])
        ),
        # Absent in pre-scenario records: those runs could not lose
        # requests to failures, so 0 is the true historical value.
        lost=int(entry.get("lost", 0)),
        # Absent in pre-overload records (and in overload-free records,
        # which prune zero-valued keys); 0 is the true historical value.
        rejected=int(entry.get("rejected", 0)),
        expired=int(entry.get("expired", 0)),
        retries=int(entry.get("retries", 0)),
        hedges=int(entry.get("hedges", 0)),
        late=int(entry.get("late", 0)),
        priority=int(entry.get("priority", 0)),
        timed_out=int(entry.get("timed_out", 0)),
        failed_over=int(entry.get("failed_over", 0)),
    )


def timeseries_to_dict(timeseries: "TimeSeries") -> Dict[str, Any]:
    """JSON-ready record of run telemetry (standalone; results embed
    the same shape via ``asdict``)."""
    from dataclasses import asdict

    return asdict(timeseries)


def timeseries_from_dict(
    data: Optional[Dict[str, Any]],
) -> Optional["TimeSeries"]:
    """Rebuild telemetry from a result record; tolerant of absence.

    Pre-obs run records have no ``timeseries`` key at all — callers pass
    ``data.get("timeseries")`` and get ``None`` back, the historical
    truth for unobserved runs.
    """
    if data is None:
        return None
    from ..obs.telemetry import HistogramSummary, TimeSeries

    series = {
        name: tuple(
            None if value is None else float(value) for value in values
        )
        for name, values in data["series"].items()
    }
    histograms = {
        name: HistogramSummary(
            edges=tuple(float(edge) for edge in entry["edges"]),
            counts=tuple(int(count) for count in entry["counts"]),
        )
        for name, entry in data.get("histograms", {}).items()
    }
    return TimeSeries(
        window_cycles=float(data["window_cycles"]),
        times=tuple(float(t) for t in data["times"]),
        series=series,
        histograms=histograms,
    )


def serve_result_from_dict(data: Dict[str, Any]) -> "ServeResult":
    from ..serve.metrics import ServeResult

    schema = data.get("schema")
    if schema != SERVE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported serve-result schema {schema!r}; "
            f"expected {SERVE_SCHEMA_VERSION}"
        )
    tenants = [_tenant_stats_from_dict(entry) for entry in data["tenants"]]
    return ServeResult(
        design_label=data["design_label"],
        num_clps=int(data["num_clps"]),
        epoch_cycles=float(data["epoch_cycles"]),
        pipeline_depths=tuple(int(d) for d in data["pipeline_depths"]),
        frequency_mhz=float(data["frequency_mhz"]),
        horizon_cycles=float(data["horizon_cycles"]),
        elapsed_cycles=float(data["elapsed_cycles"]),
        seed=int(data["seed"]),
        queue_depth=int(data["queue_depth"]),
        policy=data["policy"],
        drained=bool(data["drained"]),
        tenants=tuple(tenants),
        clp_busy_fraction=tuple(float(f) for f in data["clp_busy_fraction"]),
        timeseries=timeseries_from_dict(data.get("timeseries")),
        overload=_overload_from_dict(data.get("overload")),
    )


def _overload_from_dict(
    data: Optional[Dict[str, Any]],
) -> Optional["OverloadReport"]:
    if data is None:
        return None
    from ..serve.overload import overload_report_from_dict

    return overload_report_from_dict(data)


def fleet_result_to_dict(result: "FleetResult") -> Dict[str, Any]:
    """A self-contained, JSON-ready record of a fleet simulation.

    Same rationale as serve results: a capacity decision ("4 boards of
    this design meet the SLO") is evidence worth pinning next to the
    design and traffic assumptions it was derived from.
    """
    from dataclasses import asdict

    record = asdict(result)
    # Same contract as serve records: no telemetry key unless observed.
    if record.get("timeseries") is None:
        record.pop("timeseries", None)
    _prune_overload_keys(record)
    # Detector-era keys follow the same discipline: absent unless the
    # run actually carried a detector / measured a detection lag, so
    # legacy records re-serialize byte-identically.
    if record.get("detector") is None:
        record.pop("detector", None)
    resilience = record.get("resilience")
    if (
        resilience is not None
        and resilience.get("mean_time_to_detect_cycles") is None
    ):
        resilience.pop("mean_time_to_detect_cycles", None)
    record["schema"] = FLEET_SCHEMA_VERSION
    return record


def fleet_result_from_dict(data: Dict[str, Any]) -> "FleetResult":
    from ..fleet.metrics import FleetResult, ReplicaStats

    schema = data.get("schema")
    if schema != FLEET_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported fleet-result schema {schema!r}; "
            f"expected {FLEET_SCHEMA_VERSION}"
        )
    replicas = [
        ReplicaStats(
            label=entry["label"],
            part=entry.get("part"),
            epoch_cycles=float(entry["epoch_cycles"]),
            pipeline_depths=tuple(int(d) for d in entry["pipeline_depths"]),
            tenants=tuple(
                _tenant_stats_from_dict(t) for t in entry["tenants"]
            ),
            clp_busy_fraction=tuple(
                float(f) for f in entry["clp_busy_fraction"]
            ),
        )
        for entry in data["replicas"]
    ]
    return FleetResult(
        balancer=data["balancer"],
        num_replicas=int(data["num_replicas"]),
        frequency_mhz=float(data["frequency_mhz"]),
        horizon_cycles=float(data["horizon_cycles"]),
        elapsed_cycles=float(data["elapsed_cycles"]),
        seed=int(data["seed"]),
        queue_depth=int(data["queue_depth"]),
        policy=data["policy"],
        drained=bool(data["drained"]),
        tenants=tuple(
            _tenant_stats_from_dict(entry) for entry in data["tenants"]
        ),
        replicas=tuple(replicas),
        scenario=data.get("scenario"),
        incidents=tuple(
            _incident_from_dict(entry) for entry in data.get("incidents", ())
        ),
        resilience=_resilience_from_dict(data.get("resilience")),
        timeseries=timeseries_from_dict(data.get("timeseries")),
        overload=_overload_from_dict(data.get("overload")),
        detector=_detector_from_dict(data.get("detector")),
    )


def _detector_from_dict(
    data: Optional[Dict[str, Any]],
) -> Optional["DetectorSpec"]:
    if data is None:
        return None
    from ..fleet.detector import detector_spec_from_dict

    return detector_spec_from_dict(data)


def _incident_from_dict(entry: Dict[str, Any]) -> "Incident":
    from ..scenario.faults import Incident

    return Incident(
        kind=entry["kind"],
        target=entry["target"],
        start_cycles=float(entry["start_cycles"]),
        end_cycles=float(entry["end_cycles"]),
        recovered=bool(entry["recovered"]),
    )


def _resilience_from_dict(
    data: Optional[Dict[str, Any]],
) -> Optional["ResilienceReport"]:
    if data is None:
        return None
    from ..scenario.resilience import ResilienceReport, WindowMetrics

    def window(entry: Dict[str, Any]) -> WindowMetrics:
        return WindowMetrics(
            cycles=float(entry["cycles"]),
            completions=int(entry["completions"]),
            goodput_per_cycle=float(entry["goodput_per_cycle"]),
            p99_cycles=(
                None if entry.get("p99_cycles") is None
                else float(entry["p99_cycles"])
            ),
            p50_cycles=(
                None if entry.get("p50_cycles") is None
                else float(entry["p50_cycles"])
            ),
        )

    ttr = data.get("mean_time_to_recover_cycles")
    ttd = data.get("mean_time_to_detect_cycles")
    return ResilienceReport(
        availability=float(data["availability"]),
        incident_cycles=float(data["incident_cycles"]),
        lost_requests=int(data["lost_requests"]),
        mean_time_to_recover_cycles=None if ttr is None else float(ttr),
        during=window(data["during"]),
        outside=window(data["outside"]),
        mean_time_to_detect_cycles=None if ttd is None else float(ttd),
    )


def scenario_spec_to_dict(spec: "ScenarioSpec") -> Dict[str, Any]:
    """JSON-ready record of a scenario spec (faults, surge, policy)."""
    from ..scenario.library import scenario_to_dict

    record = scenario_to_dict(spec)
    record["schema"] = SCENARIO_SCHEMA_VERSION
    return record


def scenario_spec_from_dict(data: Dict[str, Any]) -> "ScenarioSpec":
    """Rebuild a scenario spec written by :func:`scenario_spec_to_dict`."""
    from ..scenario.library import scenario_from_dict

    schema = data.get("schema", SCENARIO_SCHEMA_VERSION)
    if schema != SCENARIO_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported scenario schema {schema!r}; "
            f"expected {SCENARIO_SCHEMA_VERSION}"
        )
    return scenario_from_dict(data)


def slo_spec_to_dict(slo: "SLOSpec") -> Dict[str, Any]:
    """JSON-ready record of an SLO contract.

    The overload-era clauses (``deadline_ms``, ``min_goodput_rps``) are
    emitted only when set, so a spec using none of them serializes to
    exactly the record a pre-overload writer would have produced — and
    a legacy record round-trips byte-identically.
    """
    record: Dict[str, Any] = {
        "p99_ms": slo.p99_ms,
        "max_drop_rate": slo.max_drop_rate,
        "min_throughput_rps": slo.min_throughput_rps,
    }
    if slo.deadline_ms is not None:
        record["deadline_ms"] = slo.deadline_ms
    if slo.min_goodput_rps is not None:
        record["min_goodput_rps"] = slo.min_goodput_rps
    return record


def slo_spec_from_dict(data: Dict[str, Any]) -> "SLOSpec":
    """Rebuild an SLO spec; tolerant of records missing newer clauses."""
    from ..serve.slo import SLOSpec

    def opt(key: str) -> Optional[float]:
        value = data.get(key)
        return None if value is None else float(value)

    return SLOSpec(
        p99_ms=opt("p99_ms"),
        max_drop_rate=float(data.get("max_drop_rate", 0.0)),
        min_throughput_rps=opt("min_throughput_rps"),
        deadline_ms=opt("deadline_ms"),
        min_goodput_rps=opt("min_goodput_rps"),
    )


def dump_fleet_result(result: "FleetResult", path: str) -> None:
    """Write a fleet-simulation result to a JSON file."""
    with open(path, "w") as handle:
        json.dump(fleet_result_to_dict(result), handle, indent=2)
        handle.write("\n")


def load_fleet_result(path: str) -> "FleetResult":
    """Load a result written by :func:`dump_fleet_result`."""
    with open(path) as handle:
        return fleet_result_from_dict(json.load(handle))


def dump_serve_result(result: "ServeResult", path: str) -> None:
    """Write a traffic-simulation result to a JSON file."""
    with open(path, "w") as handle:
        json.dump(serve_result_to_dict(result), handle, indent=2)
        handle.write("\n")


def load_serve_result(path: str) -> "ServeResult":
    """Load a result written by :func:`dump_serve_result`."""
    with open(path) as handle:
        return serve_result_from_dict(json.load(handle))


def dump_design(design: MultiCLPDesign, path: str) -> None:
    """Write a design to a JSON file."""
    with open(path, "w") as handle:
        json.dump(design_to_dict(design), handle, indent=2)
        handle.write("\n")


def load_design(path: str) -> MultiCLPDesign:
    """Load a design from a JSON file written by :func:`dump_design`."""
    with open(path) as handle:
        return design_from_dict(json.load(handle))
