"""Epoch schedule for a Multi-CLP accelerator (Section 4.1, Figure 5).

The timeline is divided into epochs.  In each epoch every CLP processes
its assigned layers sequentially, each layer operating on data produced
in the *previous* epoch, so there are no intra-epoch dependencies.  The
image being processed by layer ``i`` during epoch ``e`` entered the
pipeline at epoch ``e - i`` (one image per layer position in flight).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .design import MultiCLPDesign

__all__ = ["ScheduleEntry", "EpochSchedule", "build_schedule"]


@dataclass(frozen=True)
class ScheduleEntry:
    """One layer execution inside one epoch."""

    epoch: int
    clp_index: int
    layer_name: str
    image_index: int
    start_cycle: int  # relative to the epoch start
    end_cycle: int


@dataclass(frozen=True)
class EpochSchedule:
    """Concrete schedule for a number of epochs of a design."""

    design: MultiCLPDesign
    epochs: int
    entries: Tuple[ScheduleEntry, ...]
    mode: str = "layer-pipelined"

    @property
    def epoch_cycles(self) -> int:
        return self.design.epoch_cycles

    def entries_for_epoch(self, epoch: int) -> List[ScheduleEntry]:
        return [e for e in self.entries if e.epoch == epoch]

    def entries_for_clp(self, clp_index: int) -> List[ScheduleEntry]:
        return [e for e in self.entries if e.clp_index == clp_index]

    @property
    def pipeline_depth(self) -> int:
        if self.mode == "adjacent":
            return len(self.design.clps)
        return len(self.design.network.layers)

    def images_completed(self) -> int:
        """Images fully processed by the end of the scheduled epochs.

        An image finishes when its last pipeline stage has run; image
        ``j`` (first image is 0) leaves in epoch ``j + depth - 1``.
        """
        return max(0, self.epochs - self.pipeline_depth + 1)

    def latency_cycles(self) -> int:
        """Cycles from an image entering to leaving the pipeline."""
        return self.pipeline_depth * self.design.epoch_cycles

    def idle_cycles_by_clp(self) -> Dict[int, int]:
        """End-of-epoch idle time per CLP per epoch (Figure 5's gaps)."""
        epoch = self.design.epoch_cycles
        return {
            index: epoch - clp.total_cycles
            for index, clp in enumerate(self.design.clps)
        }


def build_schedule(
    design: MultiCLPDesign, epochs: int, mode: str = "layer-pipelined"
) -> EpochSchedule:
    """Unroll ``epochs`` epochs of the design's static schedule.

    Two modes, per Section 4.1:

    * ``"layer-pipelined"`` (default, Figure 5): layer ``i`` in network
      order processes image ``epoch - i``; one image per layer position
      is in flight.
    * ``"adjacent"``: each CLP advances one image through *all* of its
      layers within an epoch, so image ``epoch - clp_position`` is in
      flight per CLP.  Requires an adjacent layer assignment; trades
      throughput flexibility for latency.

    Negative image indices (pipeline fill) are skipped.
    """
    if epochs <= 0:
        raise ValueError(f"epochs must be positive, got {epochs}")
    if mode not in ("layer-pipelined", "adjacent"):
        raise ValueError(f"unknown schedule mode {mode!r}")
    if mode == "adjacent" and not design.has_adjacent_assignment:
        raise ValueError(
            "adjacent schedule requires an adjacent layer assignment"
        )
    layer_position = {
        layer.name: position for position, layer in enumerate(design.network)
    }
    if mode == "adjacent":
        order = sorted(
            range(len(design.clps)),
            key=lambda i: layer_position[design.clps[i].layer_names[0]],
        )
        stage_of_clp = {clp: stage for stage, clp in enumerate(order)}
    entries: List[ScheduleEntry] = []
    for epoch in range(epochs):
        for clp_index, clp in enumerate(design.clps):
            cursor = 0
            for layer in clp.layers:
                cycles = clp.cycles_for(layer)
                if mode == "adjacent":
                    image = epoch - stage_of_clp[clp_index]
                else:
                    image = epoch - layer_position[layer.name]
                if image >= 0:
                    entries.append(
                        ScheduleEntry(
                            epoch=epoch,
                            clp_index=clp_index,
                            layer_name=layer.name,
                            image_index=image,
                            start_cycle=cursor,
                            end_cycle=cursor + cycles,
                        )
                    )
                cursor += cycles
    return EpochSchedule(
        design=design, epochs=epochs, entries=tuple(entries), mode=mode
    )
