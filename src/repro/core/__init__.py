"""Core models: layers, networks, datatypes, CLPs, designs, and costs."""

from .bandwidth import LayerTransfer, bandwidth_bound_cycles, layer_transfer
from .clp import CLPConfig
from .cost_model import (
    BufferSpec,
    bram_breakdown,
    bram_count,
    buffer_spec,
    dsp_count,
    layer_cycles,
    max_units_for_budget,
)
from .datatypes import FIXED16, FLOAT32, INT8, DataType
from .design import DesignMetrics, MultiCLPDesign
from .layer import ConvLayer, input_extent
from .network import Network
from .schedule import EpochSchedule, ScheduleEntry, build_schedule
from .serialize import (
    design_from_dict,
    design_to_dict,
    dump_design,
    load_design,
    network_from_dict,
    network_to_dict,
)
from .utilization import (
    UtilizationReport,
    clp_utilization,
    layer_utilization,
    utilization_report,
)

__all__ = [
    "ConvLayer",
    "Network",
    "DataType",
    "FLOAT32",
    "FIXED16",
    "INT8",
    "CLPConfig",
    "MultiCLPDesign",
    "DesignMetrics",
    "BufferSpec",
    "LayerTransfer",
    "layer_cycles",
    "dsp_count",
    "max_units_for_budget",
    "buffer_spec",
    "bram_count",
    "bram_breakdown",
    "layer_transfer",
    "bandwidth_bound_cycles",
    "input_extent",
    "EpochSchedule",
    "ScheduleEntry",
    "build_schedule",
    "UtilizationReport",
    "layer_utilization",
    "clp_utilization",
    "utilization_report",
    "design_to_dict",
    "design_from_dict",
    "dump_design",
    "load_design",
    "network_to_dict",
    "network_from_dict",
]
