"""Multi-CLP accelerator design container (Section 4.1).

A design is a set of CLPs that partition the convolutional layers of a
CNN.  The CLPs run concurrently on independent images; the *epoch* length
is the slowest CLP's total cycles, and system throughput is one image per
epoch (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fpga.parts import ResourceBudget
from .clp import CLPConfig
from .datatypes import DataType
from .network import Network

__all__ = ["MultiCLPDesign", "DesignMetrics"]


@dataclass(frozen=True)
class DesignMetrics:
    """Headline numbers for a design at a given operating point."""

    epoch_cycles: float
    throughput_images_per_s: float
    arithmetic_utilization: float
    dsp: int
    bram: int
    bandwidth_gbps: Optional[float]
    gflops: float


@dataclass(frozen=True)
class MultiCLPDesign:
    """A complete accelerator: one or more CLPs covering a network."""

    network: Network
    clps: Tuple[CLPConfig, ...]
    dtype: DataType

    def __init__(
        self, network: Network, clps: Sequence[CLPConfig], dtype: DataType
    ):
        if not clps:
            raise ValueError("a design needs at least one CLP")
        for clp in clps:
            if clp.dtype is not dtype:
                raise ValueError(
                    f"CLP datatype {clp.dtype.label} does not match design "
                    f"datatype {dtype.label}"
                )
        covered = [name for clp in clps for name in clp.layer_names]
        expected = [layer.name for layer in network]
        if sorted(covered) != sorted(expected):
            missing = set(expected) - set(covered)
            extra = set(covered) - set(expected)
            raise ValueError(
                f"layer assignment does not partition {network.name}: "
                f"missing={sorted(missing)}, extra={sorted(extra)}"
            )
        object.__setattr__(self, "network", network)
        object.__setattr__(self, "clps", tuple(clps))
        object.__setattr__(self, "dtype", dtype)

    # ------------------------------------------------------------- structure
    @property
    def num_clps(self) -> int:
        return len(self.clps)

    @property
    def is_single_clp(self) -> bool:
        return len(self.clps) == 1

    def assignment(self) -> Dict[str, int]:
        """Map of layer name to the index of its CLP."""
        return {
            name: index
            for index, clp in enumerate(self.clps)
            for name in clp.layer_names
        }

    # ----------------------------------------------------------- performance
    @property
    def epoch_cycles(self) -> int:
        """Slowest CLP's cycles: the interval between finished images."""
        return max(clp.total_cycles for clp in self.clps)

    @property
    def total_units(self) -> int:
        return sum(clp.units for clp in self.clps)

    @property
    def arithmetic_utilization(self) -> float:
        """Dynamic arithmetic-unit utilization across the design (Table 1).

        Useful MACs divided by the MAC slots available during one epoch.
        """
        return self.network.total_macs / (self.epoch_cycles * self.total_units)

    def per_clp_utilization(self) -> List[float]:
        epoch = self.epoch_cycles
        return [clp.utilization(epoch) for clp in self.clps]

    def throughput(self, frequency_mhz: float, epoch_cycles: Optional[float] = None) -> float:
        """Images per second at the given clock."""
        epoch = epoch_cycles if epoch_cycles is not None else self.epoch_cycles
        return frequency_mhz * 1e6 / epoch

    @property
    def has_adjacent_assignment(self) -> bool:
        """True when every CLP computes a run of layers *adjacent in the
        network* and the CLPs follow network order.

        Section 4.1: such designs can process several layers of one
        image within a single epoch, shrinking the number of in-flight
        images (and hence latency) to the number of CLPs.
        """
        position = {layer.name: i for i, layer in enumerate(self.network)}
        cursor = 0
        for clp in sorted(
            self.clps, key=lambda c: position[c.layer_names[0]]
        ):
            for name in clp.layer_names:
                if position[name] != cursor:
                    return False
                cursor += 1
        return cursor == len(self.network.layers)

    @property
    def pipeline_depth_images(self) -> int:
        """Independent images in flight.

        With the general (non-adjacent) assignment each layer position
        carries its own image, so depth equals the layer count; with an
        adjacent assignment a CLP advances an image through all its
        layers within one epoch, so depth equals the CLP count
        (Section 4.1).
        """
        if self.has_adjacent_assignment:
            return len(self.clps)
        return len(self.network.layers)

    def latency_cycles(self) -> int:
        """Cycles from an image entering the pipeline to its last layer."""
        return self.pipeline_depth_images * self.epoch_cycles

    # -------------------------------------------------------------- resources
    @property
    def dsp(self) -> int:
        return sum(clp.dsp for clp in self.clps)

    @property
    def bram(self) -> int:
        return sum(clp.bram for clp in self.clps)

    def fits(self, budget: ResourceBudget) -> bool:
        return self.dsp <= budget.dsp and self.bram <= budget.bram18k

    # -------------------------------------------------------------- bandwidth
    def required_bandwidth_bytes_per_cycle(self, slack: float = 0.02) -> float:
        """Total bytes/cycle for all CLPs to stay within ``slack`` of the
        unconstrained epoch (Section 6.3's 2% margin)."""
        target = self.epoch_cycles * (1 + slack)
        return sum(clp.min_bandwidth_for(target) for clp in self.clps)

    def required_bandwidth_gbps(
        self, frequency_mhz: float, slack: float = 0.02
    ) -> float:
        return (
            self.required_bandwidth_bytes_per_cycle(slack)
            * frequency_mhz
            * 1e6
            / 1e9
        )

    def epoch_cycles_under_bandwidth(
        self, bytes_per_cycle: Optional[float], slack: float = 0.02
    ) -> float:
        """Smallest epoch achievable on a capped memory channel.

        The channel is divided optimally among the CLPs: an epoch ``E``
        is achievable iff the per-CLP minimum bandwidths to finish
        within ``E`` sum to at most the cap, so the answer is found by
        bisection on ``E``.  ``slack`` bounds the result from below at
        ``epoch * (1 + slack)`` only when even that epoch fits the cap
        (matching the paper's 2% operating margin).
        """
        if bytes_per_cycle is None:
            return float(self.epoch_cycles)
        if bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive when set")

        def feasible(epoch: float) -> bool:
            total = 0.0
            for clp in self.clps:
                if clp.total_cycles > epoch:
                    return False
                total += clp.min_bandwidth_for(epoch)
                if total > bytes_per_cycle:
                    return False
            return True

        low = float(self.epoch_cycles) * (1 + slack)
        if feasible(low):
            return low
        high = low
        while not feasible(high):
            high *= 2
            if high > low * 1e6:
                raise RuntimeError("failed to bracket bandwidth-bound epoch")
        floor = low
        while (high - floor) / high > 1e-4:
            mid = (floor + high) / 2
            if feasible(mid):
                high = mid
            else:
                floor = mid
        return high

    # ---------------------------------------------------------------- report
    def metrics(
        self,
        budget: ResourceBudget,
        slack: float = 0.02,
    ) -> DesignMetrics:
        """Headline numbers at the budget's frequency and bandwidth cap."""
        cap = budget.bytes_per_cycle()
        epoch = self.epoch_cycles_under_bandwidth(cap, slack)
        throughput = self.throughput(budget.frequency_mhz, epoch)
        if cap is None:
            bandwidth = self.required_bandwidth_gbps(budget.frequency_mhz, slack)
        else:
            bandwidth = min(
                self.required_bandwidth_gbps(budget.frequency_mhz, slack),
                budget.bandwidth_gbps or 0.0,
            )
        return DesignMetrics(
            epoch_cycles=epoch,
            throughput_images_per_s=throughput,
            arithmetic_utilization=self.network.total_macs
            / (epoch * self.total_units),
            dsp=self.dsp,
            bram=self.bram,
            bandwidth_gbps=bandwidth,
            gflops=self.network.total_flops * throughput / 1e9,
        )

    def describe(self) -> str:
        lines = [
            f"{self.network.name} [{self.dtype.label}] "
            f"{self.num_clps}-CLP design: epoch={self.epoch_cycles} cycles, "
            f"util={self.arithmetic_utilization:.1%}, dsp={self.dsp}, "
            f"bram={self.bram}"
        ]
        lines.extend("  " + clp.describe() for clp in self.clps)
        return "\n".join(lines)
