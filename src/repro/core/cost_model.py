"""Analytical CLP cost and performance models (Section 4.2).

Three models are implemented, all parameterised by the CLP compute-grid
size (Tn, Tm), the per-layer tile sizes (Tr, Tc), and the datatype:

* **cycles** — exact loop-iteration count of the tiled loop nest
  (Listing 2): ``R * C * ceil(N/Tn) * ceil(M/Tm) * K^2``.
* **DSP slices** — ``Tn*Tm`` multiply-accumulate units at the datatype's
  DSP cost (5 for float32: 2/multiplier + 3/adder; 1 for fixed16).
* **BRAM-18Kb blocks** — input/weight/output buffer banking with double
  buffering, the single-BRAM small-bank optimisation, the LUTRAM cutoff,
  and 16-bit word packing.

All formulas were validated against the paper's published numbers: the
cycle model reproduces every row of Table 2, and the BRAM model
reproduces every "model" column entry of Table 6 (e.g. 618 BRAMs for the
485T Single-CLP).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Iterable, Sequence, Tuple

from ..fpga.parts import (
    BRAM18K_SINGLE_BANK_WORDS,
    BRAM18K_WORDS_32BIT,
    LUTRAM_CUTOFF_WORDS,
)
from .datatypes import DataType
from .layer import ConvLayer, input_extent

__all__ = [
    "layer_cycles",
    "dsp_count",
    "max_units_for_budget",
    "BufferSpec",
    "buffer_spec",
    "bram_count",
    "bram_breakdown",
]


# --------------------------------------------------------------------- cycles
def layer_cycles(layer: ConvLayer, tn: int, tm: int) -> int:
    """Cycles for one layer on a (Tn, Tm) CLP (Section 4.2).

    ``Cycles = R * C * ceil(N/Tn) * ceil(M/Tm) * K^2``

    The R and C loops contribute exactly R and C iterations because the
    inner tile loops honour the layer boundary (``rloops``/``cloops`` in
    Listing 4); Tr and Tc therefore do not affect the compute cycle count.
    """
    if tn <= 0 or tm <= 0:
        raise ValueError(f"Tn and Tm must be positive, got ({tn}, {tm})")
    n_steps = -(-layer.n // tn)
    m_steps = -(-layer.m // tm)
    return layer.r * layer.c * n_steps * m_steps * layer.k * layer.k


# ------------------------------------------------------------------------ DSP
def dsp_count(tn: int, tm: int, dtype: DataType) -> int:
    """DSP slices for the compute module: Tn*Tm MAC units.

    Exact (integer) even for fractional costs: int8 packs two MACs per
    slice, so ``ceil(units / 2)``.
    """
    if tn <= 0 or tm <= 0:
        raise ValueError(f"Tn and Tm must be positive, got ({tn}, {tm})")
    spec = dtype.spec
    slices = spec.dsp_per_multiplier + spec.dsp_per_adder
    return ceil(tn * tm * slices / spec.macs_per_dsp_group)


def max_units_for_budget(dsp_budget: int, dtype: DataType) -> int:
    """Largest Tn*Tm product affordable within a DSP budget."""
    if dsp_budget <= 0:
        raise ValueError(f"DSP budget must be positive, got {dsp_budget}")
    spec = dtype.spec
    slices = spec.dsp_per_multiplier + spec.dsp_per_adder
    return dsp_budget * spec.macs_per_dsp_group // slices


# ----------------------------------------------------------------------- BRAM
@dataclass(frozen=True)
class BufferSpec:
    """Sizing of one CLP's three on-chip buffers, in words per bank.

    ``input_bank_words`` is the paper's ``Bi``: the largest
    ``((Tr-1)S+K) * ((Tc-1)S+K)`` over the CLP's layers.  The weight bank
    holds the largest ``K^2`` filter, and the output bank the largest
    ``Tr*Tc`` tile.
    """

    input_bank_words: int
    weight_bank_words: int
    output_bank_words: int


def buffer_spec(
    layers: Sequence[ConvLayer],
    tile_plans: Sequence[Tuple[int, int]],
) -> BufferSpec:
    """Buffer bank sizes for a CLP computing ``layers`` with given tiles.

    ``tile_plans[i]`` is the (Tr, Tc) pair used for ``layers[i]``.  Each
    buffer is provisioned for its most demanding layer (Section 4.2).
    """
    if len(layers) != len(tile_plans):
        raise ValueError(
            f"{len(layers)} layers but {len(tile_plans)} tile plans"
        )
    if not layers:
        raise ValueError("a CLP must compute at least one layer")
    input_words = 0
    weight_words = 0
    output_words = 0
    for layer, (tr, tc) in zip(layers, tile_plans):
        if not 1 <= tr <= layer.r or not 1 <= tc <= layer.c:
            raise ValueError(
                f"tile ({tr}, {tc}) out of range for layer {layer.name!r} "
                f"with R={layer.r}, C={layer.c}"
            )
        extent = input_extent(tr, layer.s, layer.k) * input_extent(
            tc, layer.s, layer.k
        )
        input_words = max(input_words, extent)
        weight_words = max(weight_words, layer.k * layer.k)
        output_words = max(output_words, tr * tc)
    return BufferSpec(
        input_bank_words=input_words,
        weight_bank_words=weight_words,
        output_bank_words=output_words,
    )


def _brams_per_bank(bank_words: int, needs_two_ports_per_copy: bool) -> int:
    """BRAM-18Kb blocks for one double-buffered bank of ``bank_words``.

    Input and weight banks with at most 256 words fit both ping-pong
    copies in a single BRAM (one read port + one write port suffice).
    Output banks accumulate in place, so each copy needs its own read and
    write port and therefore its own BRAM(s).  Banks below the LUTRAM
    cutoff cost no BRAM at all.
    """
    if bank_words < LUTRAM_CUTOFF_WORDS:
        return 0
    if not needs_two_ports_per_copy and bank_words <= BRAM18K_SINGLE_BANK_WORDS:
        return 1
    return 2 * ceil(bank_words / BRAM18K_WORDS_32BIT)


def _bank_count(logical_banks: int, dtype: DataType) -> int:
    """Physical banks after 16-bit pair packing (Section 4.2)."""
    return ceil(logical_banks / dtype.words_per_bram_entry)


def bram_breakdown(
    tn: int,
    tm: int,
    spec: BufferSpec,
    dtype: DataType,
) -> Tuple[int, int, int]:
    """(input, weight, output) BRAM usage of a CLP.

    * Input buffer: Tn banks of ``input_bank_words``.
    * Weight buffer: Tn*Tm banks of ``weight_bank_words``.
    * Output buffer: Tm banks of ``output_bank_words``; accumulation
      forces at least two BRAMs per double-buffered bank.

    For fixed16, pairs of banks share one 32-bit-wide physical bank.
    """
    input_brams = _bank_count(tn, dtype) * _brams_per_bank(
        spec.input_bank_words, needs_two_ports_per_copy=False
    )
    weight_brams = _bank_count(tn * tm, dtype) * _brams_per_bank(
        spec.weight_bank_words, needs_two_ports_per_copy=False
    )
    output_brams = _bank_count(tm, dtype) * _brams_per_bank(
        spec.output_bank_words, needs_two_ports_per_copy=True
    )
    return input_brams, weight_brams, output_brams


def bram_count(tn: int, tm: int, spec: BufferSpec, dtype: DataType) -> int:
    """Total BRAM-18Kb blocks used by a CLP."""
    return sum(bram_breakdown(tn, tm, spec, dtype))
