"""Off-chip data transfer and bandwidth models (Section 4.2).

The tiled loop nest of Listing 2 fetches the input tile and the weight
tile once per ``(r, c, m, n)`` iteration and writes the output tile once
per ``(r, c, m)`` iteration.  Transfers move *actual* data, clamped to
layer boundaries (a CLP with Tn=7 computing a layer with N=3 only fetches
3 input feature maps).  Double buffering overlaps transfer with compute,
so a CLP only stalls when the transfer time of a phase exceeds its
compute time.

Closed forms used below (with ``rsteps = ceil(R/Tr)`` etc.):

* input words  = ``msteps * N * (S*R + rsteps*(K-S)) * (S*C + csteps*(K-S))``
  (the sum of boundary-clamped input extents factorises per dimension),
* weight words = ``rsteps * csteps * N * M * K^2``,
* output words = ``M * R * C``.

These were validated against Table 3: AlexNet 485T Single-CLP moves
~9.8 MB for conv1 in 732k cycles, giving the paper's ~1.4 GB/s at
100 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional, Sequence, Tuple

from .datatypes import DataType
from .layer import ConvLayer, input_extent

__all__ = [
    "LayerTransfer",
    "layer_transfer",
    "bandwidth_bound_cycles",
    "min_bandwidth_for_cycles",
    "LAST_TILE_EPSILON",
]

#: Fractional allowance for the trailing tile's transfer (pipeline drain).
LAST_TILE_EPSILON = 0.0


@dataclass(frozen=True)
class LayerTransfer:
    """Data movement of one layer executed on one CLP configuration."""

    layer_name: str
    compute_cycles: int
    input_words: int
    weight_words: int
    output_words: int
    first_tile_words: int  # input + weight words of the very first tile
    steady_words_per_cycle: float  # worst-phase words/cycle to avoid stalls

    @property
    def total_words(self) -> int:
        return self.input_words + self.weight_words + self.output_words

    def total_bytes(self, dtype: DataType) -> int:
        return self.total_words * dtype.word_bytes

    def average_bytes_per_cycle(self, dtype: DataType) -> float:
        """Layer-average transfer rate at full compute speed."""
        return self.total_bytes(dtype) / self.compute_cycles

    def steady_bytes_per_cycle(self, dtype: DataType) -> float:
        """Peak steady-state rate needed for stall-free execution."""
        return self.steady_words_per_cycle * dtype.word_bytes


def _tile_steps(total: int, tile: int) -> int:
    return ceil(total / tile)


def layer_transfer(
    layer: ConvLayer,
    tn: int,
    tm: int,
    tr: int,
    tc: int,
) -> LayerTransfer:
    """Transfer volumes and rates for one layer on a (Tn, Tm) CLP.

    ``tr``/``tc`` are the layer's spatial tile sizes (Section 3.1).
    """
    if not 1 <= tr <= layer.r or not 1 <= tc <= layer.c:
        raise ValueError(
            f"tile ({tr}, {tc}) out of range for layer {layer.name!r}"
        )
    n, m, r, c, k, s = layer.dims
    rsteps = _tile_steps(r, tr)
    csteps = _tile_steps(c, tc)
    msteps = _tile_steps(m, tm)
    nsteps = _tile_steps(n, tn)

    # Sum of input extents across boundary-clamped tiles, per dimension.
    row_extent_sum = s * r + rsteps * (k - s)
    col_extent_sum = s * c + csteps * (k - s)
    input_words = msteps * n * row_extent_sum * col_extent_sum
    weight_words = rsteps * csteps * n * m * k * k
    output_words = m * r * c

    compute_cycles = r * c * nsteps * msteps * k * k

    # First (ping) tile: full Tr x Tc spatial tile, first Tn input maps,
    # first Tn x Tm weight set -- all clamped to the layer.
    first_inputs = min(n, tn) * input_extent(tr, s, k) * input_extent(tc, s, k)
    first_weights = min(n, tn) * min(m, tm) * k * k
    first_tile_words = first_inputs + first_weights

    # Steady state: each full n-phase computes K^2*Tr*Tc cycles while the
    # next phase's inputs and weights stream in; output write-back of a
    # finished (r, c, m) group is spread over the following group's
    # nsteps phases.
    phase_cycles = k * k * tr * tc
    phase_in = min(n, tn) * input_extent(tr, s, k) * input_extent(tc, s, k)
    phase_w = min(n, tn) * min(m, tm) * k * k
    phase_out = min(m, tm) * tr * tc / nsteps
    steady_words_per_cycle = (phase_in + phase_w + phase_out) / phase_cycles

    return LayerTransfer(
        layer_name=layer.name,
        compute_cycles=compute_cycles,
        input_words=input_words,
        weight_words=weight_words,
        output_words=output_words,
        first_tile_words=first_tile_words,
        steady_words_per_cycle=steady_words_per_cycle,
    )


def bandwidth_bound_cycles(
    transfers: Sequence[LayerTransfer],
    dtype: DataType,
    bytes_per_cycle: Optional[float],
) -> float:
    """Cycles for a CLP to finish its layers under a bandwidth cap.

    With double buffering, each layer completes in the maximum of its
    compute time and its transfer time, plus the initial tile fill that
    cannot be overlapped.  ``bytes_per_cycle=None`` means unconstrained.
    """
    if bytes_per_cycle is None:
        return float(sum(t.compute_cycles for t in transfers))
    if bytes_per_cycle <= 0:
        raise ValueError("bytes_per_cycle must be positive when set")
    total = 0.0
    for t in transfers:
        transfer_cycles = t.total_bytes(dtype) / bytes_per_cycle
        fill_cycles = t.first_tile_words * dtype.word_bytes / bytes_per_cycle
        total += max(t.compute_cycles, transfer_cycles) + fill_cycles
    return total


def min_bandwidth_for_cycles(
    transfers: Sequence[LayerTransfer],
    dtype: DataType,
    cycle_budget: float,
    tolerance: float = 1e-4,
) -> float:
    """Smallest bytes/cycle letting the CLP finish within ``cycle_budget``.

    Monotone in the bandwidth, so solved by bisection.  Raises if even
    unconstrained compute exceeds the budget.
    """
    compute = sum(t.compute_cycles for t in transfers)
    if compute > cycle_budget:
        raise ValueError(
            f"compute alone needs {compute} cycles, over budget {cycle_budget}"
        )
    total_bytes = sum(t.total_bytes(dtype) for t in transfers)
    if total_bytes == 0:
        return 0.0
    # Bracket: high enough that every layer is compute bound with fills
    # absorbed; low = pure serial transfer.
    low = total_bytes / cycle_budget / 4
    high = max(
        total_bytes / max(cycle_budget - compute, 1.0),
        max(t.steady_bytes_per_cycle(dtype) for t in transfers) * 2,
        low * 2,
    )
    while bandwidth_bound_cycles(transfers, dtype, high) > cycle_budget:
        high *= 2
        if high > 1e9:
            raise RuntimeError("failed to bracket bandwidth requirement")
    while (high - low) / high > tolerance:
        mid = (low + high) / 2
        if bandwidth_bound_cycles(transfers, dtype, mid) <= cycle_budget:
            high = mid
        else:
            low = mid
    return high
