"""CNN container: an ordered collection of convolutional layers.

As in the paper, only convolutional layers are modelled (they dominate
compute); pooling/activation/fully-connected layers are not part of the
accelerator design space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from .layer import ConvLayer

__all__ = ["Network"]


@dataclass(frozen=True)
class Network:
    """An ordered, immutable sequence of convolutional layers."""

    name: str
    layers: Tuple[ConvLayer, ...]

    def __init__(self, name: str, layers: Sequence[ConvLayer]):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "layers", tuple(layers))
        if not self.layers:
            raise ValueError(f"network {name!r} has no layers")
        seen: Dict[str, int] = {}
        for layer in self.layers:
            if layer.name in seen:
                raise ValueError(
                    f"network {name!r}: duplicate layer name {layer.name!r}"
                )
            seen[layer.name] = 1

    # ------------------------------------------------------------- container
    def __iter__(self) -> Iterator[ConvLayer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> ConvLayer:
        return self.layers[index]

    def layer_by_name(self, name: str) -> ConvLayer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"network {self.name!r} has no layer {name!r}")

    def index_of(self, name: str) -> int:
        for i, layer in enumerate(self.layers):
            if layer.name == name:
                return i
        raise KeyError(f"network {self.name!r} has no layer {name!r}")

    # ------------------------------------------------------------ aggregates
    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    @property
    def total_flops(self) -> int:
        return sum(layer.flops for layer in self.layers)

    @property
    def total_weight_words(self) -> int:
        return sum(layer.weight_words for layer in self.layers)

    def describe(self) -> str:
        """Multi-line summary of the network."""
        lines = [
            f"{self.name}: {len(self.layers)} conv layers, "
            f"{self.total_macs / 1e9:.2f} GMACs"
        ]
        lines.extend("  " + layer.describe() for layer in self.layers)
        return "\n".join(lines)
