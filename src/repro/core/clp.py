"""Convolutional Layer Processor (CLP) configuration.

A CLP is described by its compute-grid dimensions (Tn, Tm), the layers
assigned to it, and a (Tr, Tc) tile plan for each layer (Section 4.2).
This module combines the cost models into a single queryable object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .bandwidth import (
    LayerTransfer,
    bandwidth_bound_cycles,
    layer_transfer,
    min_bandwidth_for_cycles,
)
from .cost_model import (
    BufferSpec,
    bram_breakdown,
    bram_count,
    buffer_spec,
    dsp_count,
    layer_cycles,
)
from .datatypes import DataType
from .layer import ConvLayer

__all__ = ["CLPConfig"]


@dataclass(frozen=True)
class CLPConfig:
    """One CLP: compute grid, assigned layers, and per-layer tile plans."""

    tn: int
    tm: int
    layers: Tuple[ConvLayer, ...]
    tile_plans: Tuple[Tuple[int, int], ...]
    dtype: DataType

    def __init__(
        self,
        tn: int,
        tm: int,
        layers: Sequence[ConvLayer],
        dtype: DataType,
        tile_plans: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        if tn <= 0 or tm <= 0:
            raise ValueError(f"Tn and Tm must be positive, got ({tn}, {tm})")
        if not layers:
            raise ValueError("a CLP must compute at least one layer")
        if tile_plans is None:
            # Default: whole-feature-map tiles clamped to the layer size.
            tile_plans = [(layer.r, layer.c) for layer in layers]
        if len(tile_plans) != len(layers):
            raise ValueError(
                f"{len(layers)} layers but {len(tile_plans)} tile plans"
            )
        object.__setattr__(self, "tn", tn)
        object.__setattr__(self, "tm", tm)
        object.__setattr__(self, "layers", tuple(layers))
        object.__setattr__(
            self, "tile_plans", tuple((int(tr), int(tc)) for tr, tc in tile_plans)
        )
        object.__setattr__(self, "dtype", dtype)
        # Validate tile plans eagerly via the buffer model.
        buffer_spec(self.layers, self.tile_plans)

    # ------------------------------------------------------------ identities
    @property
    def layer_names(self) -> Tuple[str, ...]:
        return tuple(layer.name for layer in self.layers)

    def with_tile_plans(
        self, tile_plans: Sequence[Tuple[int, int]]
    ) -> "CLPConfig":
        return CLPConfig(self.tn, self.tm, self.layers, self.dtype, tile_plans)

    def tile_plan_for(self, layer_name: str) -> Tuple[int, int]:
        for layer, plan in zip(self.layers, self.tile_plans):
            if layer.name == layer_name:
                return plan
        raise KeyError(f"CLP does not compute layer {layer_name!r}")

    # --------------------------------------------------------------- compute
    @property
    def units(self) -> int:
        """Parallel multiply-accumulate units in the compute grid."""
        return self.tn * self.tm

    def cycles_for(self, layer: ConvLayer) -> int:
        return layer_cycles(layer, self.tn, self.tm)

    @property
    def total_cycles(self) -> int:
        """Cycles to process all assigned layers back to back."""
        return sum(self.cycles_for(layer) for layer in self.layers)

    @property
    def per_layer_cycles(self) -> Dict[str, int]:
        return {layer.name: self.cycles_for(layer) for layer in self.layers}

    @property
    def total_macs(self) -> int:
        return sum(layer.macs for layer in self.layers)

    def utilization(self, epoch_cycles: Optional[int] = None) -> float:
        """Dynamic arithmetic-unit utilization of this CLP.

        With ``epoch_cycles`` given, idle time at the end of the epoch
        counts against utilization (Section 4.1).
        """
        cycles = epoch_cycles if epoch_cycles is not None else self.total_cycles
        if cycles < self.total_cycles:
            raise ValueError("epoch shorter than the CLP's own work")
        return self.total_macs / (cycles * self.units)

    # ------------------------------------------------------------- resources
    @property
    def dsp(self) -> int:
        return dsp_count(self.tn, self.tm, self.dtype)

    @property
    def buffers(self) -> BufferSpec:
        return buffer_spec(self.layers, self.tile_plans)

    @property
    def bram(self) -> int:
        return bram_count(self.tn, self.tm, self.buffers, self.dtype)

    @property
    def bram_by_buffer(self) -> Tuple[int, int, int]:
        """(input, weight, output) BRAM usage."""
        return bram_breakdown(self.tn, self.tm, self.buffers, self.dtype)

    # ------------------------------------------------------------- transfers
    @property
    def transfers(self) -> Tuple[LayerTransfer, ...]:
        return tuple(
            layer_transfer(layer, self.tn, self.tm, tr, tc)
            for layer, (tr, tc) in zip(self.layers, self.tile_plans)
        )

    @property
    def total_transfer_words(self) -> int:
        return sum(t.total_words for t in self.transfers)

    def peak_bandwidth_bytes_per_cycle(self) -> float:
        """Worst per-layer average transfer rate at full compute speed."""
        return max(t.average_bytes_per_cycle(self.dtype) for t in self.transfers)

    def cycles_under_bandwidth(self, bytes_per_cycle: Optional[float]) -> float:
        return bandwidth_bound_cycles(self.transfers, self.dtype, bytes_per_cycle)

    def min_bandwidth_for(self, cycle_budget: float) -> float:
        return min_bandwidth_for_cycles(self.transfers, self.dtype, cycle_budget)

    # ----------------------------------------------------------------- debug
    def describe(self) -> str:
        names = ", ".join(self.layer_names)
        return (
            f"CLP(Tn={self.tn}, Tm={self.tm}, dsp={self.dsp}, "
            f"bram={self.bram}, cycles={self.total_cycles}, layers=[{names}])"
        )
