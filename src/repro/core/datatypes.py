"""Arithmetic datatype model for CLP accelerators.

The paper evaluates two datatypes (Section 4.2):

* 32-bit single-precision floating point, where one multiplier costs two
  Virtex-7 DSP slices and one adder costs three, i.e. 5 DSP slices per
  multiply-accumulate unit.
* 16-bit fixed point, where a single DSP slice provides both the
  multiplier and the adder, i.e. 1 DSP slice per MAC.

The datatype also determines the word size used by the bandwidth model and
how words pack into 32-bit-wide BRAM-18Kb blocks (pairs of 16-bit words
share one BRAM entry, which halves the number of physical buffer banks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["DataType", "FLOAT32", "FIXED16", "INT8"]


@dataclass(frozen=True)
class _DataTypeSpec:
    """Static properties of an arithmetic datatype.

    ``macs_per_dsp_pair`` expresses the DSP cost as a rational number of
    MAC units per (dsp_cost) DSP slices: a grid of U units costs
    ``ceil(U * dsp_cost / macs)`` slices.  float32 is (1 MAC : 5 DSP),
    fixed16 is (1 : 1), and int8 packs two MACs into one DSP slice
    (2 : 1), the standard DSP48 dual-INT8 trick.
    """

    name: str
    word_bytes: int
    dsp_per_multiplier: int
    dsp_per_adder: int
    words_per_bram_entry: int
    macs_per_dsp_group: int = 1  # MAC units sharing the group's slices

    @property
    def dsp_per_mac(self) -> float:
        """DSP slices consumed by one multiply-accumulate unit.

        May be fractional (int8 fits two MACs per slice); use
        :func:`repro.core.cost_model.dsp_count` for exact grid costs.
        """
        return (
            self.dsp_per_multiplier + self.dsp_per_adder
        ) / self.macs_per_dsp_group


class DataType(enum.Enum):
    """Arithmetic datatypes supported by the CLP template."""

    FLOAT32 = _DataTypeSpec(
        name="float32",
        word_bytes=4,
        dsp_per_multiplier=2,
        dsp_per_adder=3,
        words_per_bram_entry=1,
    )
    FIXED16 = _DataTypeSpec(
        name="fixed16",
        word_bytes=2,
        dsp_per_multiplier=1,
        dsp_per_adder=0,
        words_per_bram_entry=2,
    )
    INT8 = _DataTypeSpec(
        name="int8",
        word_bytes=1,
        dsp_per_multiplier=1,
        dsp_per_adder=0,
        words_per_bram_entry=4,
        macs_per_dsp_group=2,
    )

    @property
    def spec(self) -> _DataTypeSpec:
        return self.value

    @property
    def word_bytes(self) -> int:
        """Bytes per data word (4 for float32, 2 for fixed16)."""
        return self.spec.word_bytes

    @property
    def dsp_per_mac(self) -> float:
        """DSP slices per multiply-accumulate unit (Section 4.2).

        Fractional for int8 (two MACs share one slice).
        """
        return self.spec.dsp_per_mac

    @property
    def words_per_bram_entry(self) -> int:
        """How many words pack into one 32-bit BRAM entry."""
        return self.spec.words_per_bram_entry

    @property
    def label(self) -> str:
        return self.spec.name

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Look up a datatype by its friendly name (``float32``/``fixed16``).

        Also accepts the paper's shorthand ``float`` and ``fixed``.
        """
        normalized = name.strip().lower()
        aliases = {
            "float": cls.FLOAT32,
            "float32": cls.FLOAT32,
            "fp32": cls.FLOAT32,
            "fixed": cls.FIXED16,
            "fixed16": cls.FIXED16,
            "int16": cls.FIXED16,
            "int8": cls.INT8,
            "fixed8": cls.INT8,
        }
        try:
            return aliases[normalized]
        except KeyError:
            raise ValueError(
                f"unknown datatype {name!r}; expected one of {sorted(aliases)}"
            ) from None


FLOAT32 = DataType.FLOAT32
FIXED16 = DataType.FIXED16
INT8 = DataType.INT8
