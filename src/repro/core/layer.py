"""Convolutional layer description.

A convolutional layer is fully described for the purposes of the paper's
models by the six dimensions of Listing 1:

* ``N`` — number of input feature maps,
* ``M`` — number of output feature maps,
* ``R`` × ``C`` — rows and columns of each output feature map,
* ``K`` — filter kernel size (K×K),
* ``S`` — convolution stride.

The input feature maps have spatial size ``((R-1)*S+K) x ((C-1)*S+K)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Tuple

__all__ = ["ConvLayer", "input_extent"]


def input_extent(tile: int, stride: int, kernel: int) -> int:
    """Input pixels needed to produce ``tile`` contiguous outputs.

    This is the ``(T-1)*S+K`` expression used throughout the paper for
    sizing input buffers and transfers.
    """
    if tile <= 0:
        raise ValueError(f"tile must be positive, got {tile}")
    return (tile - 1) * stride + kernel


@dataclass(frozen=True)
class ConvLayer:
    """A single convolutional layer (Section 2, Figure 3).

    Instances are immutable and hashable so they can key memoization
    tables inside the optimizer.
    """

    name: str
    n: int  # input feature maps (N)
    m: int  # output feature maps (M)
    r: int  # output rows (R)
    c: int  # output columns (C)
    k: int  # kernel size (K)
    s: int = 1  # stride (S)

    def __post_init__(self) -> None:
        for attr in ("n", "m", "r", "c", "k", "s"):
            value = getattr(self, attr)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(
                    f"layer {self.name!r}: {attr.upper()} must be a positive "
                    f"integer, got {value!r}"
                )

    # ----------------------------------------------------------------- sizes
    @property
    def input_rows(self) -> int:
        """Rows of each input feature map: (R-1)*S+K."""
        return input_extent(self.r, self.s, self.k)

    @property
    def input_cols(self) -> int:
        """Columns of each input feature map: (C-1)*S+K."""
        return input_extent(self.c, self.s, self.k)

    @property
    def input_words(self) -> int:
        """Total words of input feature map data."""
        return self.n * self.input_rows * self.input_cols

    @property
    def output_words(self) -> int:
        """Total words of output feature map data."""
        return self.m * self.r * self.c

    @property
    def weight_words(self) -> int:
        """Total words of filter weights: M*N*K*K."""
        return self.m * self.n * self.k * self.k

    @property
    def total_words(self) -> int:
        """All data words touched by this layer once."""
        return self.input_words + self.output_words + self.weight_words

    # ------------------------------------------------------------------ work
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations in the layer: M*N*R*C*K^2."""
        return self.m * self.n * self.r * self.c * self.k * self.k

    @property
    def flops(self) -> int:
        """Floating point operations (two per MAC: multiply and add)."""
        return 2 * self.macs

    @property
    def compute_to_data_ratio(self) -> float:
        """MACs per data word; the bandwidth-limited ordering heuristic."""
        return self.macs / self.total_words

    # ------------------------------------------------------------- utilities
    def with_name(self, name: str) -> "ConvLayer":
        """Return an identical layer under a different name."""
        return replace(self, name=name)

    def split_outputs(self, parts: int) -> Iterator["ConvLayer"]:
        """Split the layer into ``parts`` equal slices along M.

        Mirrors the grouped-convolution a/b halves of AlexNet (Figure 2).
        ``M`` must divide evenly.
        """
        if self.m % parts:
            raise ValueError(
                f"cannot split M={self.m} into {parts} equal parts"
            )
        suffixes = "abcdefgh"
        if parts > len(suffixes):
            raise ValueError(f"at most {len(suffixes)} parts supported")
        for i in range(parts):
            yield replace(self, name=f"{self.name}{suffixes[i]}", m=self.m // parts)

    @property
    def dims(self) -> Tuple[int, int, int, int, int, int]:
        """The (N, M, R, C, K, S) tuple, matching the paper's notation."""
        return (self.n, self.m, self.r, self.c, self.k, self.s)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.name}: N={self.n} M={self.m} R={self.r} C={self.c} "
            f"K={self.k} S={self.s} ({self.macs / 1e6:.1f} MMACs)"
        )
