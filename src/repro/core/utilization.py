"""Arithmetic-unit utilization analysis (Section 3.2).

Quantifies the fraction of multiply-accumulate slots doing useful work
when a (Tn, Tm) CLP computes layers whose (N, M) dimensions mismatch the
grid.  Reproduces the paper's motivating numbers: SqueezeNet on a
(Tn=9, Tm=64) CLP has 33.3% utilization on layer 1, 22.2% on layer 2,
and 76.4% overall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .cost_model import layer_cycles
from .layer import ConvLayer
from .network import Network

__all__ = [
    "layer_utilization",
    "clp_utilization",
    "UtilizationReport",
    "utilization_report",
]


def layer_utilization(layer: ConvLayer, tn: int, tm: int) -> float:
    """Fraction of MAC slots doing useful work for one layer.

    Equals ``macs / (cycles * Tn * Tm)``; mismatches show up through the
    ceiling terms of the cycle count (e.g. N=3 on Tn=9 wastes 2/3 of the
    grid on every cycle).
    """
    return layer.macs / (layer_cycles(layer, tn, tm) * tn * tm)


def clp_utilization(layers: Sequence[ConvLayer], tn: int, tm: int) -> float:
    """Work-weighted utilization of a CLP over several layers."""
    if not layers:
        raise ValueError("need at least one layer")
    total_macs = sum(layer.macs for layer in layers)
    total_cycles = sum(layer_cycles(layer, tn, tm) for layer in layers)
    return total_macs / (total_cycles * tn * tm)


@dataclass(frozen=True)
class UtilizationReport:
    """Per-layer and aggregate utilization of a network on one CLP."""

    network_name: str
    tn: int
    tm: int
    per_layer: Tuple[Tuple[str, float], ...]
    overall: float

    def worst_layers(self, count: int = 3) -> List[Tuple[str, float]]:
        return sorted(self.per_layer, key=lambda item: item[1])[:count]

    def describe(self) -> str:
        lines = [
            f"{self.network_name} on CLP(Tn={self.tn}, Tm={self.tm}): "
            f"overall {self.overall:.1%}"
        ]
        lines.extend(
            f"  {name}: {value:.1%}" for name, value in self.per_layer
        )
        return "\n".join(lines)


def utilization_report(network: Network, tn: int, tm: int) -> UtilizationReport:
    """Utilization of every layer of ``network`` on a (Tn, Tm) CLP."""
    per_layer = tuple(
        (layer.name, layer_utilization(layer, tn, tm)) for layer in network
    )
    return UtilizationReport(
        network_name=network.name,
        tn=tn,
        tm=tm,
        per_layer=per_layer,
        overall=clp_utilization(list(network), tn, tm),
    )
