"""Pluggable request-routing policies for the cluster simulator.

A balancer sees one arrival at a time and must pick a replica from the
*eligible* set — the replicas whose designs actually serve the arriving
tenant (a heterogeneous fleet can dedicate boards to subsets of the
traffic).  Policies are deliberately stateful objects created fresh per
simulation run: the cluster binds them to the replica list and a
dedicated seeded RNG before the first arrival, so randomized policies
(random, power-of-two-choices) stay deterministic under a fixed fleet
seed without perturbing the tenants' arrival streams.

The classic menu:

* ``round-robin`` — per-tenant rotation; fair to within one request.
* ``least-outstanding`` — join the replica with the fewest queued +
  in-pipeline requests (the greedy full-information policy).
* ``power-of-two`` — sample two eligible replicas, keep the less
  loaded; nearly all of least-outstanding's benefit at O(1) state
  (Mitzenmacher's "power of two choices").
* ``random`` — uniform choice; the baseline power-of-two is measured
  against.
* ``tenant-affinity`` — pin each tenant to one replica by a stable
  hash, trading balance for per-tenant locality (weight reuse).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Sequence

__all__ = [
    "ReplicaView",
    "Balancer",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "PowerOfTwoBalancer",
    "RandomBalancer",
    "TenantAffinityBalancer",
    "BALANCER_NAMES",
    "make_balancer",
]


class ReplicaView:
    """What a balancer may observe about a replica: its current load.

    Structural contract only — the cluster's runtime ``Replica`` objects
    satisfy it by duck typing; custom balancers should depend on nothing
    beyond this attribute.
    """

    #: Requests queued or in the pipeline on this replica.
    outstanding: int


class Balancer:
    """Routing policy interface; subclasses implement :meth:`route`.

    Policies may be stateful (round-robin counters).  The cluster calls
    :meth:`reset` then :meth:`bind` before each run, so one policy
    object can be reused across simulation windows without leaking
    state; stateful custom balancers should override :meth:`reset` to
    clear per-run state while keeping their configuration.
    """

    #: CLI/registry name, set on each concrete policy.
    name = "abstract"

    def reset(self) -> None:
        """Drop per-run routing state (configuration survives)."""

    def bind(self, replicas: Sequence[ReplicaView], rng: random.Random) -> None:
        """Attach the run's replica list and the policy's private RNG."""
        self._replicas = replicas
        self._rng = rng

    def route(self, tenant: str, eligible: Sequence[int], now: float) -> int:
        """Pick a replica index from ``eligible`` for one arrival."""
        raise NotImplementedError

    def _load(self, index: int) -> int:
        return self._replicas[index].outstanding


class RoundRobinBalancer(Balancer):
    """Rotate each tenant over its eligible replicas independently."""

    name = "round-robin"

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def reset(self) -> None:
        self._counters.clear()

    def route(self, tenant: str, eligible: Sequence[int], now: float) -> int:
        turn = self._counters.get(tenant, 0)
        self._counters[tenant] = turn + 1
        return eligible[turn % len(eligible)]


class LeastOutstandingBalancer(Balancer):
    """Join the shortest queue (queued + in-pipeline); ties to low index."""

    name = "least-outstanding"

    def route(self, tenant: str, eligible: Sequence[int], now: float) -> int:
        return min(eligible, key=lambda index: (self._load(index), index))


class PowerOfTwoBalancer(Balancer):
    """Sample two distinct eligible replicas, keep the less loaded."""

    name = "power-of-two"

    def route(self, tenant: str, eligible: Sequence[int], now: float) -> int:
        if len(eligible) == 1:
            return eligible[0]
        first, second = self._rng.sample(list(eligible), 2)
        return min((first, second), key=lambda index: (self._load(index), index))


class RandomBalancer(Balancer):
    """Uniform random routing: the no-information baseline."""

    name = "random"

    def route(self, tenant: str, eligible: Sequence[int], now: float) -> int:
        return self._rng.choice(list(eligible))


class TenantAffinityBalancer(Balancer):
    """Pin each tenant to one replica by a stable hash of its name.

    Every request of a tenant lands on the same board (maximal weight
    locality, zero rebalancing); the cost is imbalance when tenants'
    rates differ.  The hash is CRC-32 (not Python's salted ``hash``) so
    the pinning is reproducible across processes and machines.
    """

    name = "tenant-affinity"

    def route(self, tenant: str, eligible: Sequence[int], now: float) -> int:
        digest = zlib.crc32(tenant.encode("utf-8"))
        return eligible[digest % len(eligible)]


_POLICIES = (
    RoundRobinBalancer,
    LeastOutstandingBalancer,
    PowerOfTwoBalancer,
    RandomBalancer,
    TenantAffinityBalancer,
)

#: Registry of routing policies accepted by ``make_balancer`` and the CLI.
BALANCER_NAMES = tuple(policy.name for policy in _POLICIES)


def make_balancer(name: str) -> Balancer:
    """Build a fresh policy instance from its registry name."""
    key = name.strip().lower()
    for policy in _POLICIES:
        if policy.name == key:
            return policy()
    raise ValueError(
        f"unknown balancer {name!r}; known: {', '.join(BALANCER_NAMES)}"
    )
