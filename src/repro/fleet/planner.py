"""Capacity planning and reactive autoscaling over the cluster simulator.

Two ways to answer "how many boards?":

* :func:`plan_capacity` — offline: binary-search the minimum replica
  count whose simulated fleet meets an :class:`~repro.serve.slo.SLOSpec`
  at a target arrival rate.  Every probe is a full seeded fleet
  simulation (drained, horizon floored at a few pipeline latencies), so
  the plan accounts for queueing and tail latency, not just the analytic
  throughput ceiling.
* :func:`autoscale` — online: a reactive controller stepped *between*
  simulation windows.  Each window is one seeded fleet run at the
  current replica count; the controller then compares the observed p99
  and mean queue depth against its thresholds and scales up or down for
  the next window.  A rate schedule makes ramps and spikes expressible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:
    from ..obs.telemetry import TimeSeries
    from ..obs.trace import TraceRecorder
    from ..serve.overload import OverloadSpec

from ..scenario.library import ScenarioSpec, get_scenario
from ..serve.simulator import TenantSpec, pipeline_latency_cycles
from ..serve.slo import SLOReport, SLOSpec, evaluate_slo
from .balancer import Balancer
from .cluster import ClusterSimulator
from .detector import DetectorSpec
from .device import DeviceSpec
from .metrics import FleetResult

__all__ = [
    "PlanProbe",
    "CapacityPlan",
    "plan_capacity",
    "AutoscalerPolicy",
    "AutoscaleWindow",
    "AutoscaleTrace",
    "autoscale",
]


def _fleet_tenants(
    device: DeviceSpec,
    rate_per_cycle: float,
    deadline_ms: Optional[float] = None,
) -> List[TenantSpec]:
    from ..serve.arrivals import make_arrival_process

    return [
        TenantSpec(
            name,
            make_arrival_process("poisson", rate_per_cycle),
            deadline_ms=deadline_ms,
        )
        for name in device.networks
    ]


def _window_cycles(
    device: DeviceSpec, duration_cycles: float
) -> float:
    """Floor the window at 3 pipeline latencies so percentiles exist."""
    return max(
        float(duration_cycles),
        3.0 * pipeline_latency_cycles(device.design, device.bytes_per_cycle),
    )


@dataclass(frozen=True)
class PlanProbe:
    """One evaluated replica count during the capacity search."""

    replicas: int
    meets: bool
    p99_ms: Optional[float]
    drop_rate: float
    goodput_rps: float


@dataclass(frozen=True)
class CapacityPlan:
    """Outcome of a minimum-replica search against an SLO."""

    rate_rps: float
    slo: SLOSpec
    replicas: Optional[int]  # minimum meeting count; None if unmet at cap
    max_replicas: int
    probes: Tuple[PlanProbe, ...]
    result: Optional[FleetResult]  # the fleet at the planned count
    report: Optional[SLOReport]
    #: Scenario the probes ran under (after any redundancy overlay);
    #: ``None`` for a plain fault-free plan.  Defaults keep pre-scenario
    #: plans comparing equal.
    scenario: Optional[str] = None
    #: Extra replica failures the plan was forced to survive (N+k).
    redundancy: int = 0

    @property
    def meets(self) -> bool:
        return self.replicas is not None

    def format(self) -> str:
        from ..analysis.report import render_table

        rows = [
            (
                probe.replicas,
                "-" if probe.p99_ms is None else f"{probe.p99_ms:.2f}",
                f"{probe.drop_rate:.1%}",
                f"{probe.goodput_rps:.1f}",
                "yes" if probe.meets else "NO",
            )
            for probe in self.probes
        ]
        verdict = (
            f"minimum fleet: {self.replicas} replica(s)"
            if self.meets
            else f"SLO not met within {self.max_replicas} replicas"
        )
        stress = ""
        if self.scenario is not None:
            stress = f" under {self.scenario}"
        table = render_table(
            ("replicas", "p99 ms", "drop", "goodput r/s", "meets SLO"),
            rows,
            title=(
                f"capacity plan @ {self.rate_rps:g} r/s per tenant"
                f"{stress} -- {verdict}"
            ),
        )
        if self.result is not None and self.result.resilience is not None:
            table += "\n" + self.result._format_resilience()
        return table


def plan_capacity(
    device: DeviceSpec,
    rate_rps: float,
    slo: SLOSpec,
    *,
    tenants: Optional[Sequence[TenantSpec]] = None,
    max_replicas: int = 64,
    duration_ms: float = 100.0,
    seed: int = 0,
    balancer: Union[str, Balancer, None] = "least-outstanding",
    queue_depth: int = 64,
    policy: str = "drop-tail",
    frequency_mhz: float = 100.0,
    scenario: Union[str, ScenarioSpec, None] = None,
    redundancy: int = 0,
    engine: str = "auto",
    overload: Optional["OverloadSpec"] = None,
    detector: Optional[DetectorSpec] = None,
) -> CapacityPlan:
    """Minimum replicas of ``device`` meeting ``slo`` at ``rate_rps``.

    ``rate_rps`` is the offered rate *per tenant* (matching the
    ``repro serve --rate`` convention); pass explicit ``tenants`` for a
    non-uniform mix.  The search doubles the fleet until the SLO is met
    (or ``max_replicas`` is hit), then binary-searches the gap — probing
    O(log n) counts, each one seeded, drained fleet simulation.

    ``scenario`` makes every probe run a failure/surge drill (see
    :mod:`repro.scenario`), so the plan answers "how many boards survive
    a rack loss at the daily peak?" rather than the fair-weather
    question.  ``detector`` runs every probe under that failure
    detector (see :mod:`repro.fleet.detector`), so a gray-fault drill
    is planned against *detected* health — including detection lag,
    request timeouts, and failover — rather than oracle knowledge.
    ``redundancy=k`` additionally forces the *last* ``k``
    replicas down over the worst window of each probe (N+k planning);
    the search then starts at ``k + 1`` boards, since a fleet of ``k``
    can be wiped out entirely.  Note a fault scenario makes a strict
    ``max_drop_rate=0`` unattainable — work in flight on a dying board
    is always lost — so plan drills with a small positive drop budget
    and let the latency clause bind.

    The bisection is sound only for *load-spreading* policies, where a
    bigger fleet gives every tenant more admission slots and SLO
    attainment is monotone in the replica count.  ``tenant-affinity``
    breaks that premise twice over — a pinned tenant gains nothing from
    added boards, and the CRC-32 pin (``digest % n``) moves
    non-monotonically as ``n`` grows — so it is rejected here rather
    than silently producing a non-minimal (or falsely "unmet") plan.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if max_replicas < 1:
        raise ValueError("max_replicas must be at least 1")
    if redundancy < 0:
        raise ValueError("redundancy must be >= 0")
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if redundancy > 0:
        base = scenario if scenario is not None else get_scenario("steady")
        scenario = base.with_redundancy(redundancy)
    if redundancy >= max_replicas:
        raise ValueError(
            f"redundancy {redundancy} leaves no surviving replica within "
            f"max_replicas {max_replicas}"
        )
    balancer_name = (
        balancer if isinstance(balancer, str)
        else balancer.name if balancer is not None
        else "round-robin"
    )
    if balancer_name == "tenant-affinity":
        raise ValueError(
            "tenant-affinity pins each tenant to one board, so capacity "
            "is not monotone in the replica count and the minimum-fleet "
            "search is meaningless; plan with a load-spreading balancer "
            "(e.g. least-outstanding) instead"
        )
    cycles_per_second = frequency_mhz * 1e6
    if tenants is None:
        tenants = _fleet_tenants(
            device, rate_rps / cycles_per_second, deadline_ms=slo.deadline_ms
        )
    duration_cycles = _window_cycles(
        device, duration_ms * 1e-3 * cycles_per_second
    )

    evaluations: dict = {}

    def evaluate(count: int) -> Tuple[FleetResult, SLOReport]:
        if count not in evaluations:
            cluster = ClusterSimulator(
                device.replicated(count),
                tenants,
                balancer=balancer,
                frequency_mhz=frequency_mhz,
                queue_depth=queue_depth,
                policy=policy,
            )
            result = cluster.run(
                duration_cycles,
                seed=seed,
                drain=True,
                scenario=scenario,
                engine=engine,
                overload=overload,
                detector=detector,
            )
            evaluations[count] = (result, evaluate_slo(result, slo))
        return evaluations[count]

    # Exponential probe for an upper bound, then bisect the gap.  With
    # redundancy k the floor is k+1 boards (k of them will be failed).
    floor = redundancy + 1
    count = floor
    while not evaluate(count)[1].meets and count < max_replicas:
        count = min(count * 2, max_replicas)
    if not evaluate(count)[1].meets:
        planned: Optional[int] = None
    else:
        low = max(count // 2 + 1, floor) if count > floor else floor
        high = count
        while low < high:
            mid = (low + high) // 2
            if evaluate(mid)[1].meets:
                high = mid
            else:
                low = mid + 1
        planned = high

    probes = tuple(
        PlanProbe(
            replicas=n,
            meets=report.meets,
            p99_ms=report.worst_p99_ms,
            drop_rate=report.worst_shed_rate,
            goodput_rps=report.total_goodput_rps,
        )
        for n, (result, report) in sorted(evaluations.items())
    )
    final = evaluations.get(planned) if planned is not None else None
    return CapacityPlan(
        rate_rps=rate_rps,
        slo=slo,
        replicas=planned,
        max_replicas=max_replicas,
        probes=probes,
        result=final[0] if final else None,
        report=final[1] if final else None,
        scenario=scenario.name if scenario is not None else None,
        redundancy=redundancy,
    )


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Reactive thresholds: scale up on pressure, down on slack.

    The controller scales *up* by ``step`` when the observed fleet p99
    exceeds ``p99_high_ms`` or the mean queued requests per replica
    exceed ``queue_high`` (a window with arrivals but no completions
    counts as unbounded p99).  It scales *down* when every configured
    low-water clause holds (p99 below ``p99_low_ms``, queue below
    ``queue_low``).  ``None`` disables a clause; bounds always win.
    """

    min_replicas: int = 1
    max_replicas: int = 16
    step: int = 1
    p99_high_ms: Optional[float] = None
    queue_high: Optional[float] = None
    p99_low_ms: Optional[float] = None
    queue_low: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be at least 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.step < 1:
            raise ValueError("step must be at least 1")
        if self.p99_high_ms is None and self.queue_high is None:
            raise ValueError(
                "configure at least one scale-up clause "
                "(p99_high_ms or queue_high)"
            )

    # ------------------------------------------------------------- decisions
    def decide(self, result: FleetResult) -> int:
        """Replica delta for the next window (positive = scale up).

        When the window ran a scenario, the pressure signal is the worse
        of the whole-window p99 and the *in-incident* p99 from the
        resilience report.  A short flash crowd can triple latency inside
        its spike yet leave the window-wide percentile under the
        threshold (calm traffic dominates the sample), and a controller
        watching only the aggregate scales up one window late — after
        the spike already burned the SLO.
        """
        p99_ms = self._observed_p99_ms(result)
        resilience = result.resilience
        if (
            p99_ms is not None
            and resilience is not None
            and resilience.during.p99_cycles is not None
        ):
            p99_ms = max(
                p99_ms, result.cycles_to_ms(resilience.during.p99_cycles)
            )
        queue = self._queue_per_replica(result)
        up = False
        if self.p99_high_ms is not None:
            up = up or p99_ms is None or p99_ms > self.p99_high_ms
        if self.queue_high is not None:
            up = up or queue > self.queue_high
        if up:
            return min(self.step, self.max_replicas - result.num_replicas)
        down = True
        if self.p99_low_ms is not None:
            down = down and p99_ms is not None and p99_ms < self.p99_low_ms
        if self.queue_low is not None:
            down = down and queue < self.queue_low
        if (self.p99_low_ms is None and self.queue_low is None) or not down:
            return 0
        return -min(self.step, result.num_replicas - self.min_replicas)

    @staticmethod
    def _observed_p99_ms(result: FleetResult) -> Optional[float]:
        """Worst aggregate tenant p99 in ms; None = unbounded (no samples)."""
        worst = None
        for tenant in result.tenants:
            if tenant.latency is None:
                if tenant.arrivals > 0:
                    return None  # saw traffic, completed nothing
                continue
            p99 = result.cycles_to_ms(tenant.latency.p99)
            worst = p99 if worst is None else max(worst, p99)
        return 0.0 if worst is None else worst

    @staticmethod
    def _queue_per_replica(result: FleetResult) -> float:
        total = sum(t.mean_queue_depth for t in result.tenants)
        return total / result.num_replicas if result.num_replicas else 0.0


@dataclass(frozen=True)
class AutoscaleWindow:
    """One controller step: what it saw and what it did."""

    index: int
    replicas: int
    rate_rps: float
    p99_ms: Optional[float]
    queue_per_replica: float
    drops: int
    completions: int
    action: int  # replica delta applied after this window


@dataclass(frozen=True)
class AutoscaleTrace:
    """The controller's whole trajectory across windows."""

    windows: Tuple[AutoscaleWindow, ...]
    policy: AutoscalerPolicy
    #: Simulated cycles per controller window; lets the trajectory be
    #: re-expressed on the telemetry grid (:meth:`to_timeseries`).
    #: Defaults to ``None`` so pre-obs traces compare equal.
    window_cycles: Optional[float] = None

    def to_timeseries(self) -> "TimeSeries":
        """The trajectory as a :class:`repro.obs.TimeSeries`.

        One telemetry window per controller window, so autoscaler
        decisions render with the same sparkline/report machinery as
        run telemetry.  ``p99_ms`` is ``None`` for windows that saw
        traffic but completed nothing (unbounded latency).
        """
        from ..obs.telemetry import TimeSeries

        width = self.window_cycles if self.window_cycles is not None else 1.0
        times = tuple((index + 1) * width for index in range(len(self.windows)))
        series = {
            "replicas": tuple(float(w.replicas) for w in self.windows),
            "action": tuple(float(w.action) for w in self.windows),
            "rate_rps": tuple(float(w.rate_rps) for w in self.windows),
            "p99_ms": tuple(w.p99_ms for w in self.windows),
            "queue_per_replica": tuple(
                float(w.queue_per_replica) for w in self.windows
            ),
            "drops": tuple(float(w.drops) for w in self.windows),
            "completions": tuple(float(w.completions) for w in self.windows),
        }
        return TimeSeries(window_cycles=width, times=times, series=series)

    @property
    def final_replicas(self) -> int:
        last = self.windows[-1]
        return last.replicas + last.action

    @property
    def peak_replicas(self) -> int:
        return max(window.replicas for window in self.windows)

    def format(self) -> str:
        from ..analysis.report import render_table

        rows = [
            (
                window.index,
                window.replicas,
                f"{window.rate_rps:g}",
                "inf" if window.p99_ms is None else f"{window.p99_ms:.2f}",
                f"{window.queue_per_replica:.1f}",
                window.drops,
                window.completions,
                f"{window.action:+d}" if window.action else "hold",
            )
            for window in self.windows
        ]
        return render_table(
            (
                "window", "replicas", "rate r/s", "p99 ms", "queue/replica",
                "drops", "done", "action",
            ),
            rows,
            title=(
                f"autoscaler trace: {len(self.windows)} windows, "
                f"final fleet {self.final_replicas} replica(s)"
            ),
        )


def autoscale(
    device: DeviceSpec,
    rate_schedule: Sequence[float],
    policy: AutoscalerPolicy,
    *,
    window_ms: float = 50.0,
    initial_replicas: Optional[int] = None,
    seed: int = 0,
    balancer: Union[str, Balancer, None] = "least-outstanding",
    queue_depth: int = 64,
    drop_policy: str = "drop-tail",
    frequency_mhz: float = 100.0,
    scenario: Union[str, ScenarioSpec, None] = None,
    engine: str = "auto",
    trace: Optional["TraceRecorder"] = None,
    overload: Optional["OverloadSpec"] = None,
    detector: Optional[DetectorSpec] = None,
) -> AutoscaleTrace:
    """Step a reactive autoscaler across per-window offered rates.

    ``rate_schedule`` gives the per-tenant offered rate (req/s) of each
    window; the fleet size carries over between windows (queue state
    does not — each window is an independent seeded run, the standard
    fluid approximation for control-loop studies).  Window ``w`` runs at
    seed ``seed + w`` so consecutive windows see fresh randomness while
    the whole trace stays reproducible.

    ``scenario`` replays the drill inside *every* window (the window is
    the scenario's horizon): a flash-crowd scenario spikes each window,
    a rack-loss scenario fails boards each window — sustained incident
    pressure, the hostile environment for threshold tuning.  Because
    :meth:`AutoscalerPolicy.decide` reads each window's resilience
    report, the controller reacts to in-incident degradation rather
    than only the window-wide aggregate.

    ``detector`` runs every window under that failure detector, so the
    controller's p99/queue signals reflect detection lag and failover
    rather than oracle health.

    ``trace`` (a :class:`repro.obs.TraceRecorder`) records every scale
    step as an instant event on the autoscaler track, timestamped at
    the end of the window that triggered it.
    """
    if not rate_schedule:
        raise ValueError("rate_schedule must name at least one window")
    replicas = (
        policy.min_replicas if initial_replicas is None else initial_replicas
    )
    if not policy.min_replicas <= replicas <= policy.max_replicas:
        raise ValueError(
            f"initial_replicas {replicas} outside "
            f"[{policy.min_replicas}, {policy.max_replicas}]"
        )
    cycles_per_second = frequency_mhz * 1e6
    duration_cycles = _window_cycles(
        device, window_ms * 1e-3 * cycles_per_second
    )
    windows: List[AutoscaleWindow] = []
    for index, rate_rps in enumerate(rate_schedule):
        if rate_rps <= 0:
            raise ValueError(f"window {index} rate must be positive")
        tenants = _fleet_tenants(device, rate_rps / cycles_per_second)
        cluster = ClusterSimulator(
            device.replicated(replicas),
            tenants,
            balancer=balancer,
            frequency_mhz=frequency_mhz,
            queue_depth=queue_depth,
            policy=drop_policy,
        )
        result = cluster.run(
            duration_cycles,
            seed=seed + index,
            drain=True,
            scenario=scenario,
            engine=engine,
            overload=overload,
            detector=detector,
        )
        action = policy.decide(result)
        if trace is not None and action != 0:
            trace.scale_step(
                (index + 1) * duration_cycles,
                replicas=replicas + action,
                action=f"{action:+d}",
                reason=f"window {index} @ {rate_rps:g} r/s",
            )
        windows.append(
            AutoscaleWindow(
                index=index,
                replicas=replicas,
                rate_rps=rate_rps,
                p99_ms=AutoscalerPolicy._observed_p99_ms(result),
                queue_per_replica=AutoscalerPolicy._queue_per_replica(result),
                drops=result.total_drops,
                completions=result.total_completions,
                action=action,
            )
        )
        replicas += action
    return AutoscaleTrace(
        windows=tuple(windows),
        policy=policy,
        window_cycles=duration_cycles,
    )
