"""Device specifications: the replica template a fleet is built from.

A :class:`DeviceSpec` pins everything one accelerator *instance* needs
to be simulated inside a cluster: the optimized design it runs (a
:class:`~repro.core.design.MultiCLPDesign` or a
:class:`~repro.opt.joint.JointDesign`), the FPGA part it is deployed on
(a catalog label used for cost accounting), an optional bandwidth cap,
and how its epoch length is calibrated — from the analytic model or by
running the cycle-level system simulator once (per-replica calibration,
so a heterogeneous fleet can mix both).  ``count`` replicates the spec,
which is how "N boards of this design" is expressed without N objects.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

from ..core.design import MultiCLPDesign
from ..opt.joint import JointDesign
from ..serve.simulator import resolve_epoch, tenant_plans

__all__ = ["DeviceSpec", "CALIBRATION_MODES"]

#: Epoch-length calibration modes (see :func:`repro.serve.simulator.resolve_epoch`).
CALIBRATION_MODES = ("model", "simulate")


@dataclass(frozen=True)
class DeviceSpec:
    """One replica template: design + part + epoch calibration.

    ``part`` is a human/cost label (e.g. ``"485t"``); the design itself
    already encodes the resource partition, so the part only matters for
    cost-to-serve accounting and reporting.  ``bytes_per_cycle`` caps
    the replica's off-chip bandwidth (``None`` = unconstrained), and
    ``calibrate`` selects the analytic epoch model or a one-epoch run of
    the cycle-level system simulator.
    """

    design: Union[MultiCLPDesign, JointDesign]
    part: Optional[str] = None
    count: int = 1
    bytes_per_cycle: Optional[float] = None
    calibrate: str = "model"
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be at least 1, got {self.count}")
        if self.calibrate not in CALIBRATION_MODES:
            raise ValueError(
                f"unknown calibration {self.calibrate!r}; "
                f"known: {CALIBRATION_MODES}"
            )
        if self.bytes_per_cycle is not None and self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive when set")

    # ------------------------------------------------------------ derivation
    def plans(self) -> Tuple[MultiCLPDesign, Dict[str, Tuple[int, Tuple[int, ...]]]]:
        """The (base design, tenant -> (depth, per-CLP cycles)) service plan."""
        return tenant_plans(self.design)

    @property
    def networks(self) -> Tuple[str, ...]:
        """Tenant (network) names this device can serve."""
        _, plans = self.plans()
        return tuple(plans)

    def resolve_epoch(self) -> float:
        """Epoch length in cycles under this spec's calibration mode."""
        base, _ = self.plans()
        return resolve_epoch(base, self.bytes_per_cycle, self.calibrate)

    @property
    def display_label(self) -> str:
        if self.label is not None:
            return self.label
        base, _ = self.plans()
        name = (
            "+".join(net.name for net in self.design.networks)
            if isinstance(self.design, JointDesign)
            else base.network.name
        )
        part = f"@{self.part}" if self.part else ""
        return f"{name}{part}"

    def replicated(self, count: int) -> "DeviceSpec":
        """The same template at a different replica count."""
        return replace(self, count=count)
