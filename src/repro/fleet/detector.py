"""Failure detection: health probes, outlier ejection, detected health.

Everything upstream of this module routes on *oracle* health — a dead
replica is known dead the same cycle it dies.  Real fleets only ever see
*detected* health: a probe loop notices the board stopped answering, an
outlier monitor notices its error rate or tail latency left the pack,
and both are late, sometimes wrong, and bounded by an ejection budget.
This module is that layer.

:class:`DetectorSpec` is the frozen configuration; the cluster
simulator materializes it into a :class:`FailureDetector` — a pure
state machine fed by probe outcomes and per-request successes/errors,
deciding which replicas are currently *routable*:

* **Health probes**: every ``probe_interval`` the cluster probes each
  replica; a probe fails when the board is down, when its (degraded)
  epoch plus link delay exceeds ``probe_timeout``, or when a flaky
  board drops it.  ``unhealthy_after`` consecutive failures eject the
  replica; ``healthy_after`` consecutive successes (after a
  ``probation`` spent ejected) re-admit it.
* **Outlier ejection** (Envoy-style): per ``ejection_window`` the
  detector compares each replica's windowed error rate against
  ``outlier_error_rate`` and its windowed p99 latency against
  ``outlier_p99_factor`` times the fleet median, ejecting outliers that
  served at least ``min_requests``.
* **Ejection budget**: no combination of the above may eject more than
  ``max_eject_fraction`` of the fleet (always allowing at least one),
  so a detector gone wrong cannot blackhole all traffic.

``mode="oracle"`` keeps today's instant perfect knowledge (extended to
gray degradations) and is the baseline probe-based detection is judged
against; an oracle spec with no request timeout is entirely inert, so
default runs stay bit-exact with the pre-detector engine.

The module is deliberately a leaf — it imports nothing from
``repro.fleet`` or ``repro.scenario`` — so scenario specs can embed a
:class:`DetectorSpec` without an import cycle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DETECTOR_MODES",
    "DetectorSpec",
    "FailureDetector",
    "detector_spec_to_dict",
    "detector_spec_from_dict",
]

#: How health is known: ``oracle`` = instant perfect knowledge (the
#: pre-detector behavior, extended to gray faults), ``probe`` = periodic
#: health checks plus outlier ejection, with real detection latency.
DETECTOR_MODES = ("oracle", "probe")


@dataclass(frozen=True)
class DetectorSpec:
    """How the fleet learns which replicas are worth routing to.

    Durations are milliseconds (the :class:`~repro.serve.overload`
    convention); the ``None`` defaults resolve against the device's
    epoch at run time — probe every 4 epochs with a 2-epoch timeout,
    judge outliers over 8-epoch windows, hold ejected replicas out for
    2 probe intervals — so one spec transfers across designs with
    different epoch lengths.

    ``request_timeout_ms`` arms per-request timeouts: a request that
    outlives it (queued or in flight) is pulled back and failed over to
    another replica up to ``max_failovers`` times before being counted
    ``timed_out``.  It composes with either mode; an ``oracle`` spec
    without it changes nothing at all.
    """

    mode: str = "oracle"
    probe_interval_ms: Optional[float] = None
    probe_timeout_ms: Optional[float] = None
    unhealthy_after: int = 2
    healthy_after: int = 2
    outlier_error_rate: Optional[float] = 0.5
    outlier_p99_factor: Optional[float] = 3.0
    ejection_window_ms: Optional[float] = None
    probation_ms: Optional[float] = None
    min_requests: int = 5
    max_eject_fraction: float = 0.5
    request_timeout_ms: Optional[float] = None
    max_failovers: int = 1

    def __post_init__(self) -> None:
        if self.mode not in DETECTOR_MODES:
            raise ValueError(
                f"unknown detector mode {self.mode!r}; known: {DETECTOR_MODES}"
            )
        for name in ("probe_interval_ms", "probe_timeout_ms",
                     "ejection_window_ms", "probation_ms",
                     "request_timeout_ms"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.unhealthy_after < 1 or self.healthy_after < 1:
            raise ValueError(
                "unhealthy_after and healthy_after must be at least 1"
            )
        if self.outlier_error_rate is not None and not (
            0.0 < self.outlier_error_rate <= 1.0
        ):
            raise ValueError(
                f"outlier_error_rate must be in (0, 1], got "
                f"{self.outlier_error_rate}"
            )
        if self.outlier_p99_factor is not None and self.outlier_p99_factor <= 1.0:
            raise ValueError(
                f"outlier_p99_factor must exceed 1, got "
                f"{self.outlier_p99_factor}"
            )
        if self.min_requests < 1:
            raise ValueError("min_requests must be at least 1")
        if not 0.0 < self.max_eject_fraction <= 1.0:
            raise ValueError(
                f"max_eject_fraction must be in (0, 1], got "
                f"{self.max_eject_fraction}"
            )
        if self.max_failovers < 0:
            raise ValueError("max_failovers must be >= 0")

    @property
    def active(self) -> bool:
        """Whether this spec changes anything a fault-free run can see.

        Probe mode and request timeouts both alter event order, so they
        force the event engine and are recorded on the result; a pure
        oracle spec is behaviourally invisible outside gray-fault runs.
        """
        return self.mode == "probe" or self.request_timeout_ms is not None


class _ReplicaView:
    """Detector-side state for one replica."""

    __slots__ = (
        "ejected", "ejected_at", "fail_streak", "ok_streak",
        "window_errors", "window_total", "window_latencies", "onset_at",
    )

    def __init__(self) -> None:
        self.ejected = False
        self.ejected_at = 0.0
        self.fail_streak = 0
        self.ok_streak = 0
        self.window_errors = 0
        self.window_total = 0
        self.window_latencies: List[float] = []
        self.onset_at: Optional[float] = None


class FailureDetector:
    """Detected-health state machine over one fleet.

    The cluster feeds it probe outcomes (:meth:`record_probe`),
    request results (:meth:`record_success` / :meth:`record_error`),
    windowed outlier sweeps (:meth:`evaluate_outliers`), and ground
    truth about when replicas actually started/stopped misbehaving
    (:meth:`note_onset` / :meth:`note_clear`, used only for the
    detection-latency ledger).  It answers :meth:`routable` and keeps
    the false-positive / missed-detection counts honest.
    """

    def __init__(
        self,
        spec: DetectorSpec,
        num_replicas: int,
        *,
        epoch: float,
        cycles_per_ms: float,
    ) -> None:
        self.spec = spec
        self.num_replicas = num_replicas

        def _cycles(value_ms: Optional[float], default: float) -> float:
            if value_ms is None:
                return default
            return value_ms * cycles_per_ms

        self.probe_interval = _cycles(spec.probe_interval_ms, 4.0 * epoch)
        self.probe_timeout = _cycles(spec.probe_timeout_ms, 2.0 * epoch)
        self.ejection_window = _cycles(spec.ejection_window_ms, 8.0 * epoch)
        self.probation = _cycles(spec.probation_ms, 2.0 * self.probe_interval)
        self.request_timeout: Optional[float] = (
            None if spec.request_timeout_ms is None
            else spec.request_timeout_ms * cycles_per_ms
        )
        self._replicas = [_ReplicaView() for _ in range(num_replicas)]
        #: Detection latencies (cycles) for true onsets the detector
        #: caught, and the two ways it can be wrong.
        self.detection_lags: List[float] = []
        self.false_positives = 0
        self.missed_detections = 0

    # ------------------------------------------------------------- routing
    def routable(self, index: int) -> bool:
        return not self._replicas[index].ejected

    def detected_healthy_count(self) -> int:
        return sum(1 for view in self._replicas if not view.ejected)

    # ------------------------------------------------------------ ejection
    def _eject_budget_ok(self) -> bool:
        ejected = self.num_replicas - self.detected_healthy_count()
        limit = max(1, int(self.spec.max_eject_fraction * self.num_replicas))
        return ejected + 1 <= limit

    def _eject(self, index: int, now: float) -> bool:
        view = self._replicas[index]
        if view.ejected or not self._eject_budget_ok():
            return False
        view.ejected = True
        view.ejected_at = now
        view.ok_streak = 0
        if view.onset_at is not None:
            self.detection_lags.append(now - view.onset_at)
            view.onset_at = None
        else:
            self.false_positives += 1
        return True

    def _readmit(self, index: int) -> None:
        view = self._replicas[index]
        view.ejected = False
        view.fail_streak = 0
        view.ok_streak = 0

    # -------------------------------------------------------------- probes
    def record_probe(self, index: int, now: float, ok: bool) -> Optional[str]:
        """Feed one probe outcome; returns ``"ejected"``/``"readmitted"``
        when the probe flipped the replica's detected state."""
        view = self._replicas[index]
        if ok:
            view.fail_streak = 0
            if view.ejected:
                view.ok_streak += 1
                if (
                    view.ok_streak >= self.spec.healthy_after
                    and now - view.ejected_at >= self.probation
                ):
                    self._readmit(index)
                    return "readmitted"
            return None
        view.ok_streak = 0
        if view.ejected:
            return None
        view.fail_streak += 1
        if view.fail_streak >= self.spec.unhealthy_after:
            if self._eject(index, now):
                return "ejected"
        return None

    # ------------------------------------------------------- request stats
    def record_success(self, index: int, latency: float) -> None:
        view = self._replicas[index]
        view.window_total += 1
        view.window_latencies.append(latency)

    def record_error(self, index: int) -> None:
        view = self._replicas[index]
        view.window_total += 1
        view.window_errors += 1

    @staticmethod
    def _p99(latencies: List[float]) -> Optional[float]:
        if not latencies:
            return None
        ordered = sorted(latencies)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    def evaluate_outliers(self, now: float) -> List[Tuple[int, str]]:
        """One windowed sweep: eject error-rate and p99 outliers, then
        reset the window.  Returns ``(replica, reason)`` per ejection."""
        spec = self.spec
        events: List[Tuple[int, str]] = []
        p99s: Dict[int, float] = {}
        for index, view in enumerate(self._replicas):
            p99 = self._p99(view.window_latencies)
            if p99 is not None:
                p99s[index] = p99
        median_p99: Optional[float] = None
        if len(p99s) >= 2:
            ordered = sorted(p99s.values())
            median_p99 = ordered[len(ordered) // 2]
        for index, view in enumerate(self._replicas):
            if not view.ejected and view.window_total >= spec.min_requests:
                rate = view.window_errors / view.window_total
                if (
                    spec.outlier_error_rate is not None
                    and rate >= spec.outlier_error_rate
                ):
                    if self._eject(index, now):
                        events.append((index, "error-rate"))
                elif (
                    spec.outlier_p99_factor is not None
                    and median_p99 is not None
                    and index in p99s
                    and p99s[index] > spec.outlier_p99_factor * median_p99
                ):
                    if self._eject(index, now):
                        events.append((index, "p99-outlier"))
            view.window_errors = 0
            view.window_total = 0
            view.window_latencies = []
        return events

    # --------------------------------------------------------- ground truth
    def note_onset(self, index: int, now: float) -> None:
        """A replica truly went bad at ``now`` (outage or gray onset).

        Already-ejected replicas count as pre-detected with zero lag;
        back-to-back onsets keep the earliest undetected one.
        """
        view = self._replicas[index]
        if view.ejected:
            self.detection_lags.append(0.0)
            return
        if view.onset_at is None:
            view.onset_at = now

    def note_clear(self, index: int, now: float) -> None:
        """The replica truly recovered; an onset still pending was never
        detected."""
        view = self._replicas[index]
        if view.onset_at is not None:
            self.missed_detections += 1
            view.onset_at = None

    def mean_time_to_detect(self) -> Optional[float]:
        if not self.detection_lags:
            return None
        return sum(self.detection_lags) / len(self.detection_lags)


def detector_spec_to_dict(spec: DetectorSpec) -> Dict[str, Any]:
    """JSON-ready record of a detector spec (all fields, explicit)."""
    return asdict(spec)


def detector_spec_from_dict(data: Dict[str, Any]) -> DetectorSpec:
    """Rebuild a detector spec; absent keys keep their defaults."""
    known = {f for f in DetectorSpec.__dataclass_fields__}
    params = {k: v for k, v in data.items() if k in known}
    return DetectorSpec(**params)
