"""Fleet-level metrics: per-replica and aggregate serving statistics.

A cluster run reduces to the same JSON-friendly shape as a single-device
run (:class:`~repro.serve.metrics.ServeResult`), twice over: once per
replica (:class:`ReplicaStats`, each holding the familiar per-tenant
:class:`~repro.serve.metrics.TenantStats`) and once fleet-wide, where
per-tenant latencies are merged across replicas *before* the percentile
reduction — so the aggregate p99 is the p99 a client would actually
observe, not an average of per-board p99s.  A one-replica fleet's
aggregate tenants are therefore identical to the ``ServeResult`` of the
same seeded run, which the differential tests pin exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # annotation only; results never construct telemetry
    from ..obs.telemetry import TimeSeries
    from ..serve.overload import OverloadReport
    from .detector import DetectorSpec

from ..scenario.faults import Incident
from ..scenario.resilience import ResilienceReport, WindowMetrics
from ..serve.metrics import TenantStats

__all__ = ["ReplicaStats", "FleetResult"]


@dataclass(frozen=True)
class ReplicaStats:
    """One board's view of a fleet simulation."""

    label: str
    part: Optional[str]
    epoch_cycles: float
    pipeline_depths: Tuple[int, ...]  # per served tenant, in epochs
    tenants: Tuple[TenantStats, ...]
    clp_busy_fraction: Tuple[float, ...]

    @property
    def utilization(self) -> float:
        """Busy share of the epoch-limiting CLP (the board's duty factor)."""
        return max(self.clp_busy_fraction, default=0.0)

    @property
    def arrivals(self) -> int:
        """Requests routed to this replica (including ones it dropped)."""
        return sum(t.arrivals for t in self.tenants)

    @property
    def completions(self) -> int:
        return sum(t.completions for t in self.tenants)

    @property
    def drops(self) -> int:
        return sum(t.drops for t in self.tenants)

    def tenant(self, name: str) -> TenantStats:
        for stats in self.tenants:
            if stats.name == name:
                return stats
        raise KeyError(
            f"replica {self.label} serves {[t.name for t in self.tenants]}, "
            f"not {name!r}"
        )


@dataclass(frozen=True)
class FleetResult:
    """Everything one seeded cluster simulation produced.

    ``tenants`` are the fleet-wide aggregates (latency percentiles over
    the merged per-replica samples; arrivals/completions/drops summed;
    queue depth summed — the expected number of requests waiting
    anywhere in the fleet); ``replicas`` keep the per-board breakdown
    the imbalance metrics come from.  The conversion helpers mirror
    :class:`~repro.serve.metrics.ServeResult` exactly, so
    :func:`repro.serve.slo.evaluate_slo` scores either shape.
    """

    balancer: str
    num_replicas: int
    frequency_mhz: float
    horizon_cycles: float
    elapsed_cycles: float
    seed: int
    queue_depth: int
    policy: str
    drained: bool
    tenants: Tuple[TenantStats, ...]
    replicas: Tuple[ReplicaStats, ...]
    #: Name of the scenario the run executed, or ``None`` for a plain run.
    #: All three scenario fields default to their empty values so a
    #: scenario-less result is byte-identical to pre-scenario results —
    #: the no-op differential test compares against exactly this.
    scenario: Optional[str] = None
    incidents: Tuple[Incident, ...] = ()
    resilience: Optional[ResilienceReport] = None
    #: Windowed telemetry (:class:`repro.obs.TimeSeries`), present only
    #: when the run was observed; ``None`` keeps unobserved results
    #: byte-identical to pre-obs records (fast-path runs report ``None``).
    timeseries: Optional["TimeSeries"] = None
    #: Overload-control report (per-priority windowed goodput, brownout
    #: shedding); ``None`` whenever no overload feature was active so
    #: plain runs stay byte-identical to pre-overload records.
    overload: Optional["OverloadReport"] = None
    #: The failure-detection spec the run routed with
    #: (:class:`~repro.fleet.detector.DetectorSpec`); recorded only when
    #: it could have mattered (probe mode, request timeouts, or gray
    #: faults present), so detector-free runs stay byte-identical to
    #: pre-detector records.
    detector: Optional["DetectorSpec"] = None

    # ------------------------------------------------------------ conversions
    @property
    def cycles_per_second(self) -> float:
        return self.frequency_mhz * 1e6

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / self.cycles_per_second * 1e3

    def rate_to_rps(self, rate_per_cycle: float) -> float:
        return rate_per_cycle * self.cycles_per_second

    # ----------------------------------------------------------------- access
    def tenant(self, name: str) -> TenantStats:
        for stats in self.tenants:
            if stats.name == name:
                return stats
        raise KeyError(
            f"no tenant {name!r}; tenants: {[t.name for t in self.tenants]}"
        )

    @property
    def total_arrivals(self) -> int:
        return sum(t.arrivals for t in self.tenants)

    @property
    def total_completions(self) -> int:
        return sum(t.completions for t in self.tenants)

    @property
    def total_drops(self) -> int:
        return sum(t.drops for t in self.tenants)

    @property
    def total_lost(self) -> int:
        """Requests destroyed by failures, fleet-wide (see ``TenantStats.lost``)."""
        return sum(t.lost for t in self.tenants)

    @property
    def total_rejected(self) -> int:
        """Arrivals turned away by admission control, fleet-wide."""
        return sum(t.rejected for t in self.tenants)

    @property
    def total_expired(self) -> int:
        """Queued requests shed past-deadline at dispatch, fleet-wide."""
        return sum(t.expired for t in self.tenants)

    @property
    def total_timed_out(self) -> int:
        """Requests abandoned after exhausting timeout failovers, fleet-wide."""
        return sum(t.timed_out for t in self.tenants)

    @property
    def total_failed_over(self) -> int:
        """Logical requests that failed over at least once, fleet-wide."""
        return sum(t.failed_over for t in self.tenants)

    # --------------------------------------------------------------- capacity
    def tenant_capacity_rps(self, name: str) -> float:
        """Admission slots per second the fleet offers one tenant."""
        return sum(
            self.cycles_per_second / replica.epoch_cycles
            for replica in self.replicas
            if any(t.name == name for t in replica.tenants)
        )

    @property
    def capacity_rps(self) -> float:
        """Total admission slots per second across the whole fleet."""
        return sum(
            self.tenant_capacity_rps(tenant.name) for tenant in self.tenants
        )

    # -------------------------------------------------------------- imbalance
    @property
    def utilization_imbalance(self) -> float:
        """Spread (max - min) of replica duty factors; 0 for one board.

        A high value under a supposedly balancing policy means routing
        is concentrating load — the signal the balancer property tests
        and the autoscaler's scale-down guard look at.
        """
        if len(self.replicas) < 2:
            return 0.0
        utilizations = [replica.utilization for replica in self.replicas]
        return max(utilizations) - min(utilizations)

    # ----------------------------------------------------------------- report
    def format(self) -> str:
        from ..analysis.report import render_table

        # The unserved column must show what the SLO layer charges: the
        # *shed* rate (queue drops plus fault losses).  Printing bare
        # ``drop_rate`` let a rack-loss drill report 0.0% while the fleet
        # was losing traffic to dead boards.  A separate ``lost`` column
        # appears whenever failures actually destroyed requests.
        show_lost = self.total_lost > 0
        # Overload columns follow the same rule: present only when the
        # run actually produced the class, so plain reports are stable.
        show_rejected = self.total_rejected > 0
        show_expired = self.total_expired > 0
        show_timed_out = self.total_timed_out > 0
        show_failed_over = self.total_failed_over > 0
        tenant_rows = []
        for t in self.tenants:
            if t.latency is None:
                p50 = p95 = p99 = "-"
            else:
                p50 = f"{self.cycles_to_ms(t.latency.p50):.2f}"
                p95 = f"{self.cycles_to_ms(t.latency.p95):.2f}"
                p99 = f"{self.cycles_to_ms(t.latency.p99):.2f}"
            row = [
                t.name,
                f"{self.rate_to_rps(t.offered_rate_per_cycle):.0f}",
                t.arrivals,
                t.completions,
                f"{self.rate_to_rps(t.completed_rate_per_cycle(self.horizon_cycles)):.1f}",
                p50,
                p95,
                p99,
                f"{t.shed_rate:.1%}",
            ]
            if show_lost:
                row.append(t.lost)
            if show_rejected:
                row.append(t.rejected)
            if show_expired:
                row.append(t.expired)
            if show_timed_out:
                row.append(t.timed_out)
            if show_failed_over:
                row.append(t.failed_over)
            tenant_rows.append(tuple(row))
        headers = [
            "tenant", "offered r/s", "arrivals", "done", "goodput r/s",
            "p50 ms", "p95 ms", "p99 ms", "shed",
        ]
        if show_lost:
            headers.append("lost")
        if show_rejected:
            headers.append("rejected")
        if show_expired:
            headers.append("expired")
        if show_timed_out:
            headers.append("timed-out")
        if show_failed_over:
            headers.append("failed-over")
        tenant_table = render_table(
            tuple(headers),
            tenant_rows,
            title=(
                f"fleet of {self.num_replicas} replicas, "
                f"balancer={self.balancer}, @{self.frequency_mhz:.0f}MHz, "
                f"capacity={self.capacity_rps:.1f} img/s, seed={self.seed}"
            ),
        )
        replica_rows = []
        for index, replica in enumerate(self.replicas):
            worst = None
            for t in replica.tenants:
                if t.latency is not None:
                    p99 = t.latency.p99
                    worst = p99 if worst is None else max(worst, p99)
            replica_rows.append(
                (
                    index,
                    replica.label,
                    f"{replica.epoch_cycles:.0f}",
                    replica.arrivals,
                    replica.completions,
                    replica.drops,
                    "-" if worst is None else f"{self.cycles_to_ms(worst):.2f}",
                    f"{replica.utilization:.1%}",
                )
            )
        replica_table = render_table(
            (
                "#", "replica", "epoch", "routed", "done", "drops",
                "p99 ms", "util",
            ),
            replica_rows,
            title=(
                f"per-replica breakdown "
                f"(imbalance={self.utilization_imbalance:.1%})"
            ),
        )
        window = (
            f"simulated {self.cycles_to_ms(self.elapsed_cycles):.1f} ms "
            f"({self.elapsed_cycles:.0f} cycles)"
            + (", drained" if self.drained else "")
        )
        report = f"{tenant_table}\n\n{replica_table}\n{window}"
        if self.scenario is not None:
            report += f"\n{self._format_resilience()}"
        if self.overload is not None:
            report += f"\n{self._format_overload()}"
        return report

    def _format_overload(self) -> str:
        o = self.overload
        classes = "  ".join(
            f"p{c.priority}: good={c.good} rejected={c.rejected} "
            f"expired={c.expired} retries={c.retries}"
            for c in o.classes
        )
        line = f"overload: discipline={o.queue_policy}  {classes}"
        if o.brownout_steps:
            line += f"  brownout-steps={o.brownout_steps}"
        return line

    def _format_resilience(self) -> str:
        lines = [
            f"scenario: {self.scenario} "
            f"({len(self.incidents)} incidents, {self.total_lost} requests lost)"
        ]
        r = self.resilience
        if r is not None:
            def p99(window: WindowMetrics) -> str:
                if window.p99_cycles is None:
                    return "-"
                return f"{self.cycles_to_ms(window.p99_cycles):.2f}ms"

            ttr = (
                f"{self.cycles_to_ms(r.mean_time_to_recover_cycles):.2f}ms"
                if r.mean_time_to_recover_cycles is not None
                else "-"
            )
            line = (
                f"  availability={r.availability:.2%}  mean-ttr={ttr}  "
                f"incident window={self.cycles_to_ms(r.incident_cycles):.1f}ms"
            )
            if r.mean_time_to_detect_cycles is not None:
                line += (
                    f"  mean-ttd="
                    f"{self.cycles_to_ms(r.mean_time_to_detect_cycles):.2f}ms"
                )
            lines.append(line)
            lines.append(
                f"  during incidents:  p99={p99(r.during)}  "
                f"goodput={self.rate_to_rps(r.during.goodput_per_cycle):.1f} r/s"
            )
            lines.append(
                f"  outside incidents: p99={p99(r.outside)}  "
                f"goodput={self.rate_to_rps(r.outside.goodput_per_cycle):.1f} r/s"
            )
        return "\n".join(lines)
