"""The cluster simulator: N epoch-pipelined devices, one event engine.

Scale-out layer over :mod:`repro.serve`: the same seeded arrival streams
(one per tenant, keyed exactly as :func:`repro.serve.simulator.simulate_traffic`
keys them), but each arrival is routed by a pluggable
:class:`~repro.fleet.balancer.Balancer` to one of N replicas, each an
independent epoch-pipelined device model with its own per-tenant bounded
FIFO queues, epoch boundary chain, and CLP busy accounting.  All
replicas share one discrete-event engine, so cross-replica orderings are
deterministic under a fixed seed.

The construction is deliberately a superset of the single-device
simulator: with one replica, every arrival routes to it, the event
structure degenerates to ``simulate_traffic``'s, and the per-tenant
metrics come out *identical* — the differential tests pin this bit for
bit.  That equivalence is what makes fleet-level answers (how many
boards?) trustworthy extrapolations of the paper's device model.
"""

from __future__ import annotations

import random
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:
    from ..obs.telemetry import ObsSpec, TimeSeries
    from ..serve.overload import OverloadController, OverloadSpec

from ..scenario.faults import Degradation, Incident, Outage
from ..scenario.library import ScenarioSpec, get_scenario
from ..scenario.resilience import compute_resilience
from ..serve.metrics import LatencySummary, TenantStats
from ..serve.simulator import DROP_POLICIES, TenantSpec, TenantState
from .balancer import Balancer, make_balancer
from .detector import DetectorSpec, FailureDetector
from .device import DeviceSpec
from .metrics import FleetResult, ReplicaStats

__all__ = ["Replica", "ClusterSimulator", "simulate_fleet"]


class Replica:
    """Runtime model of one board: per-tenant states + busy counters."""

    def __init__(
        self,
        spec: DeviceSpec,
        index: int,
        tenants: Sequence[TenantSpec],
        queue_depth: int,
        policy: str,
        overload: Optional["OverloadSpec"] = None,
        deadline_cycles: Optional[Dict[str, Optional[float]]] = None,
    ):
        self.spec = spec
        self.index = index
        self.label = f"{spec.display_label}#{index}"
        #: Failure-injection state: a replica is healthy iff no outage
        #: currently covers it (``down_depth`` handles overlapping
        #: schedules); ``generation`` bumps on every fresh failure so
        #: completion events scheduled before the board died become
        #: no-ops instead of resurrecting destroyed work.
        self.down_depth = 0
        self.generation = 0
        #: Gray-failure overlays: one severity stack per mode so
        #: overlapping degradation windows compose (the worst active
        #: severity wins); ``slow_next`` is the next boundary index at
        #: which a straggling replica may dispatch again.
        self.gray: Dict[str, List[float]] = {
            "slow": [], "flaky": [], "link-delay": []
        }
        self.slow_next = 0.0
        base, plans = spec.plans()
        self.epoch = spec.resolve_epoch()
        self.num_clps = base.num_clps
        self.clp_busy = [0.0] * base.num_clps
        #: Tenant states in fleet tenant order, only for served tenants.
        self.states: Dict[str, TenantState] = {}
        for tenant in tenants:
            if tenant.name not in plans:
                continue
            depth, clp_cycles = plans[tenant.name]
            if overload is not None:
                from ..serve.overload import OverloadTenantState

                self.states[tenant.name] = OverloadTenantState(
                    tenant, depth, clp_cycles, queue_depth, policy,
                    queue_policy=overload.queue_policy,
                    epoch=self.epoch,
                    deadline_cycles=(
                        deadline_cycles or {}
                    ).get(tenant.name),
                )
            else:
                self.states[tenant.name] = TenantState(
                    tenant, depth, clp_cycles, queue_depth, policy
                )

    @property
    def outstanding(self) -> int:
        """Requests queued or in the pipeline (the balancer's load signal)."""
        return sum(
            len(state.queue) + state.pipeline for state in self.states.values()
        )

    @property
    def healthy(self) -> bool:
        return self.down_depth == 0

    @property
    def degraded(self) -> bool:
        """True while any gray-failure window covers this replica."""
        return any(self.gray.values())

    @property
    def slow_factor(self) -> float:
        stack = self.gray["slow"]
        return max(stack) if stack else 1.0

    @property
    def error_rate(self) -> float:
        stack = self.gray["flaky"]
        return min(1.0, max(stack)) if stack else 0.0

    @property
    def link_delay_epochs(self) -> float:
        stack = self.gray["link-delay"]
        return max(stack) if stack else 0.0

    def gray_begin(self, mode: str, severity: float) -> None:
        self.gray[mode].append(severity)

    def gray_end(self, mode: str, severity: float) -> None:
        self.gray[mode].remove(severity)

    def serves(self, tenant: str) -> bool:
        return tenant in self.states

    def stats(self, elapsed: float) -> ReplicaStats:
        fractions = tuple(
            min(1.0, busy / elapsed) if elapsed > 0 else 0.0
            for busy in self.clp_busy
        )
        return ReplicaStats(
            label=self.label,
            part=self.spec.part,
            epoch_cycles=self.epoch,
            pipeline_depths=tuple(
                state.depth_epochs for state in self.states.values()
            ),
            tenants=tuple(
                state.stats(elapsed) for state in self.states.values()
            ),
            clp_busy_fraction=fractions,
        )


def _aggregate_tenant(
    spec: TenantSpec,
    states: Sequence[TenantState],
    elapsed: float,
    unroutable: int = 0,
    gate_arrivals: int = 0,
    gate_rejected: int = 0,
    gate_retries: int = 0,
    gate_hedges: int = 0,
    timed_out: int = 0,
    failed_over: int = 0,
) -> TenantStats:
    """Fleet-wide view of one tenant: merge raw samples, then reduce.

    ``unroutable`` counts arrivals that found no healthy replica to land
    on during an outage — they never reached a replica's state, so the
    fleet books them here, once as an arrival and once as lost, keeping
    the conservation invariant (arrivals = completions + drops + lost +
    rejected + expired + timed_out + in-flight) intact.  The ``gate_*``
    counters are
    the overload controller's front-door ledger — token-bucket and
    brownout rejections equally never landed on a replica, so they are
    folded in here the same way (once as an arrival, once as rejected).
    ``timed_out``/``failed_over`` are the cluster's request-timeout
    ledger (requests reaped from queues after the detector's deadline,
    and logical requests that failed over at least once) — fleet-level
    concepts, tracked outside the per-replica tenant states.
    """
    latencies: List[float] = []
    for state in states:
        latencies.extend(state.latencies)
    completions = sum(state.completions for state in states)
    firsts = [s.first_completion for s in states if s.first_completion is not None]
    lasts = [s.last_completion for s in states if s.last_completion is not None]
    steady = None
    if completions >= 2 and firsts and max(lasts) > min(firsts):
        steady = (completions - 1) / (max(lasts) - min(firsts))
    return TenantStats(
        name=spec.name,
        offered_rate_per_cycle=spec.process.mean_rate,
        arrivals=(
            sum(state.arrivals for state in states)
            + unroutable
            + gate_arrivals
        ),
        completions=completions,
        drops=sum(state.drops for state in states),
        in_flight=sum(
            len(state.queue) + state.pipeline for state in states
        ),
        latency=LatencySummary.of(latencies),
        mean_queue_depth=sum(
            state.mean_queue_depth(elapsed) for state in states
        ),
        peak_queue_depth=max(state.peak_queue for state in states),
        steady_rate_per_cycle=steady,
        lost=sum(state.lost for state in states) + unroutable,
        rejected=(
            sum(getattr(state, "rejected", 0) for state in states)
            + gate_rejected
        ),
        expired=sum(getattr(state, "expired", 0) for state in states),
        retries=(
            sum(getattr(state, "retries", 0) for state in states)
            + gate_retries
        ),
        hedges=(
            sum(getattr(state, "hedges", 0) for state in states)
            + gate_hedges
        ),
        late=sum(getattr(state, "late", 0) for state in states),
        priority=spec.priority,
        timed_out=timed_out,
        failed_over=failed_over,
    )


class ClusterSimulator:
    """Multiplex N device models over shared arrival streams.

    Construction validates the topology (every tenant must be servable
    by at least one replica; every replica network must be an offered
    tenant); :meth:`run` executes one seeded window and returns a
    :class:`~repro.fleet.metrics.FleetResult`.  A simulator instance is
    reusable — each ``run`` builds fresh replica state — which is what
    the capacity planner and autoscaler lean on.
    """

    def __init__(
        self,
        devices: Union[DeviceSpec, Sequence[DeviceSpec]],
        tenants: Sequence[TenantSpec],
        *,
        balancer: Union[str, Balancer, None] = None,
        frequency_mhz: float = 100.0,
        queue_depth: int = 64,
        policy: str = "drop-tail",
    ):
        if isinstance(devices, DeviceSpec):
            devices = [devices]
        if not devices:
            raise ValueError("a fleet needs at least one device spec")
        if not tenants:
            raise ValueError("a fleet needs at least one tenant")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if policy not in DROP_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {DROP_POLICIES}")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.devices = tuple(devices)
        self.tenants = tuple(tenants)
        self._balancer_spec = balancer
        self.frequency_mhz = frequency_mhz
        self.queue_depth = queue_depth
        self.policy = policy

        served = set()
        for device in self.devices:
            served.update(device.networks)
        offered = set(names)
        if not offered <= served:
            raise ValueError(
                f"tenants {sorted(offered - served)} are not served by any "
                f"replica (fleet serves {sorted(served)})"
            )
        if not served <= offered:
            raise ValueError(
                f"replica networks {sorted(served - offered)} have no tenant "
                f"stream (offered: {sorted(offered)})"
            )

    @property
    def num_replicas(self) -> int:
        return sum(device.count for device in self.devices)

    def _make_balancer(self) -> Balancer:
        spec = self._balancer_spec
        if spec is None:
            spec = "round-robin"
        if isinstance(spec, str):
            return make_balancer(spec)
        # Reuse the caller's policy object (it may carry configuration a
        # plain re-instantiation would lose) but drop its per-run state.
        spec.reset()
        return spec

    # ------------------------------------------------------------------- run
    def run(
        self,
        duration_cycles: float,
        *,
        seed: int = 0,
        drain: bool = False,
        scenario: Union[str, ScenarioSpec, None] = None,
        engine: str = "auto",
        obs: Optional["ObsSpec"] = None,
        overload: Optional["OverloadSpec"] = None,
        detector: Optional[DetectorSpec] = None,
    ) -> FleetResult:
        """One seeded traffic window over the whole fleet.

        Semantics mirror :func:`repro.serve.simulator.simulate_traffic`:
        ``drain=False`` cuts the run at the horizon (queued/pipelined
        requests reported in-flight); ``drain=True`` stops arrivals at
        the horizon but serves out every queue, so arrivals equal
        completions plus drops exactly.  Identical arguments produce an
        identical :class:`~repro.fleet.metrics.FleetResult`.

        ``engine`` selects the execution strategy: ``"auto"`` (default)
        uses the epoch-batched fast path (:mod:`repro.sim.fastpath`)
        for scenario-free runs and the event engine otherwise;
        ``"fast"``/``"event"`` force a choice (``"fast"`` with a
        scenario raises).  Both engines produce bit-identical results;
        routing policies whose choices depend on the global event
        interleaving (least-outstanding, power-of-two, random across
        multiple replicas) are executed on the event engine regardless,
        since their behaviour *is* that interleaving.

        ``scenario`` (a name from :data:`repro.scenario.SCENARIOS` or a
        :class:`~repro.scenario.ScenarioSpec`) overlays a failure/surge
        drill on the run: fault specs become fail/recover events inside
        this same event loop, surge shapes replace each tenant's arrival
        process with a time-varying one, and the result carries the
        incident log plus a resilience report.  Fault draws come from a
        dedicated RNG substream (``{seed}/scenario/faults``), so a
        scenario never perturbs the arrival streams; a *no-op* scenario
        (no faults, no surge) is bit-exact to passing ``scenario=None``
        apart from the result's ``scenario`` label.

        ``obs`` (an :class:`~repro.obs.ObsSpec`) opts the run into
        windowed telemetry (the result's ``timeseries`` field: fleet
        per-tenant gauges and rates, per-replica duty factors and
        health, windowed p99) and/or request-lifecycle + incident
        tracing.  Observation needs the event engine: ``engine="auto"``
        falls back to it for observed runs (scalars stay bit-identical);
        an explicit ``engine="fast"`` keeps the fast path where it
        applies and reports ``timeseries=None``, and raises if a trace
        was requested.  ``obs=None`` (default) changes nothing.

        ``overload`` (an :class:`~repro.serve.overload.OverloadSpec`)
        switches on admission control, queue disciplines, client
        retries, and/or brownout — see :mod:`repro.serve.overload`.
        When ``None``, a scenario that carries its own overload spec
        (e.g. ``retry-storm``) supplies it.  Active overload forces the
        event engine under ``auto`` (``"fast"`` raises); with every
        feature off, results are bit-identical to ``overload=None``.

        ``detector`` (a :class:`~repro.fleet.detector.DetectorSpec`)
        replaces oracle health with *detected* health: ``mode="probe"``
        routes on periodic health probes plus outlier ejection (with
        real detection latency, false positives under flaky replicas,
        and probation re-admission), and ``request_timeout_ms`` arms a
        request-level timeout with bounded failover (``max_failovers``
        re-dispatches per request; exhausted requests are booked in the
        new ``timed_out`` class).  When ``None``, a scenario that
        carries its own detector supplies it.  The default oracle
        detector with no timeout is inert: results are bit-identical
        to ``detector=None``.  An *active* detector forces the event
        engine under ``auto`` (``"fast"`` raises).
        """
        from ..sim.engine import Simulator
        from ..sim.fastpath import (
            fleet_fast_supported,
            resolve_engine,
            run_fleet_fast,
        )
        from ..serve.overload import OverloadController, OverloadSpec

        if duration_cycles <= 0:
            raise ValueError("duration_cycles must be positive")
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if overload is None and scenario is not None:
            overload = scenario.overload
        if detector is None and scenario is not None:
            detector = scenario.detector
        detector_active = detector is not None and detector.active
        overload_active = (overload is not None and overload.active) or any(
            spec.deadline_ms is not None for spec in self.tenants
        )
        ospec: Optional[OverloadSpec] = None
        if overload_active:
            ospec = overload if overload is not None else OverloadSpec()
        concrete = resolve_engine(
            engine,
            has_scenario=scenario is not None,
            has_overload=overload_active,
            has_detector=detector_active,
        )
        obs_active = obs is not None and obs.active
        if obs_active and concrete == "fast":
            if engine == "fast" and obs.trace is not None:
                raise ValueError(
                    "engine='fast' cannot emit a trace; use 'auto' or 'event'"
                )
            if engine != "fast":
                # The fast solver has no event stream to sample or
                # trace; "auto" prefers observability over speed.
                concrete = "event"

        deadline_cycles: Optional[Dict[str, Optional[float]]] = None
        if ospec is not None:
            cycles_per_ms = self.frequency_mhz * 1e3
            deadline_cycles = {}
            for spec in self.tenants:
                ms = (
                    spec.deadline_ms
                    if spec.deadline_ms is not None
                    else ospec.deadline_ms
                )
                deadline_cycles[spec.name] = (
                    None if ms is None else ms * cycles_per_ms
                )

        replicas: List[Replica] = []
        for device in self.devices:
            for _ in range(device.count):
                replicas.append(
                    Replica(
                        device,
                        len(replicas),
                        self.tenants,
                        self.queue_depth,
                        self.policy,
                        overload=ospec,
                        deadline_cycles=deadline_cycles,
                    )
                )
        eligible: Dict[str, Tuple[int, ...]] = {
            spec.name: tuple(
                replica.index
                for replica in replicas
                if replica.serves(spec.name)
            )
            for spec in self.tenants
        }
        balancer = self._make_balancer()
        balancer.bind(replicas, random.Random(f"{seed}/balancer"))

        horizon = float(duration_cycles)

        if concrete == "fast" and fleet_fast_supported(balancer, eligible):
            elapsed = run_fleet_fast(
                replicas, self.tenants, eligible, balancer,
                horizon, seed, drain,
            )
            return self._finalize(
                balancer, replicas, horizon, elapsed, seed, drain,
                None, [], {spec.name: 0 for spec in self.tenants}, [],
            )

        recorder = obs.make_recorder(horizon) if obs_active else None
        tracer = obs.trace if obs_active else None

        sim = Simulator(
            on_event=(
                None
                if recorder is None
                else lambda when: recorder.count("engine_events", when)
            )
        )
        #: One open/closed flag per tenant *stream* (shared by replicas).
        stream_open = [True] * len(self.tenants)

        # ----------------------------------------------- scenario overlay
        # Surge shapes swap each tenant's arrival process for a
        # time-varying one; fault specs materialize into concrete outage
        # windows against a *dedicated* RNG substream, so the arrival
        # streams below draw exactly what they would without a scenario.
        processes = [spec.process for spec in self.tenants]
        outages: List[Outage] = []
        degradations: List[Degradation] = []
        failure_policy = "requeue"
        if scenario is not None:
            failure_policy = scenario.failure_policy
            if scenario.surge is not None:
                processes = [
                    scenario.surge.reshape(
                        spec.process, horizon, index, len(self.tenants)
                    )
                    for index, spec in enumerate(self.tenants)
                ]
            fault_rng = random.Random(f"{seed}/scenario/faults")
            for fault in scenario.faults:
                outages.extend(
                    fault.materialize(horizon, len(replicas), fault_rng)
                )
                degradations.extend(
                    fault.materialize_gray(horizon, len(replicas), fault_rng)
                )
            outages.sort(key=lambda o: (o.start, o.replica))
            degradations.sort(key=lambda d: (d.start, d.replica))
        have_faults = bool(outages)
        have_gray = bool(degradations)
        #: Flaky-replica error draws: a dedicated substream, consumed
        #: only while an error-rate window is active at dispatch time,
        #: so flaky faults never perturb arrivals or balancer draws.
        flaky_rng = random.Random(f"{seed}/scenario/flaky")

        # --------------------------------------------- failure detection
        # ``fd`` resolves the spec's ms-denominated knobs into cycles;
        # probing/ejection only runs in "probe" mode (oracle routing
        # stays ground truth).  ``routable`` is the single health
        # predicate the router, evacuation, and failover all consult —
        # with no detector it is exactly ``Replica.healthy``, so
        # detector-free runs stay bit-identical.
        fd: Optional[FailureDetector] = None
        fdet: Optional[FailureDetector] = None
        rt_cycles: Optional[float] = None
        max_failovers = 0
        if detector is not None:
            fd = FailureDetector(
                detector,
                len(replicas),
                epoch=min(replica.epoch for replica in replicas),
                cycles_per_ms=self.frequency_mhz * 1e3,
            )
            rt_cycles = fd.request_timeout
            max_failovers = detector.max_failovers
            if detector.mode == "probe":
                fdet = fd
        if fdet is not None:
            routable = fdet.routable
        elif detector is not None:
            # Oracle detection is gray-aware: degraded replicas are
            # known instantly and routed around.
            def routable(i: int) -> bool:
                replica = replicas[i]
                return replica.healthy and not replica.degraded
        else:
            def routable(i: int) -> bool:
                return replicas[i].healthy
        filter_routing = (
            have_faults or have_gray or fdet is not None
        )
        #: Per-request failover ledger, keyed by ``(tenant, arrival)``
        #: for plain runs and by the live request object under overload:
        #: (attempts so far, start of the current attempt).  Entries
        #: exist only for requests that have failed over at least once.
        failover_state: Dict[object, Tuple[int, float]] = {}
        #: Fleet-level timeout/failover ledgers (per tenant name).
        timed_out: Dict[str, int] = {spec.name: 0 for spec in self.tenants}
        failed_over: Dict[str, int] = {spec.name: 0 for spec in self.tenants}
        #: Arrivals that found no healthy replica, per tenant name.
        unroutable: Dict[str, int] = {spec.name: 0 for spec in self.tenants}
        #: (finish_cycles, latency_cycles) fleet-wide, for resilience.
        samples: List[Tuple[float, float]] = []
        tenant_index = {
            spec.name: index for index, spec in enumerate(self.tenants)
        }

        controller: Optional[OverloadController] = None
        if ospec is not None:
            # The controller is the fleet's front door: every attempt
            # (fresh, retry, hedge) passes its gates, then routes
            # through the balancer exactly as an ungated arrival would.
            def route_request(
                name: str,
            ) -> Optional[Tuple[TenantState, Optional[int]]]:
                targets = eligible[name]
                if filter_routing:
                    targets = tuple(i for i in targets if routable(i))
                    if not targets:
                        unroutable[name] += 1
                        if tracer is not None:
                            tracer.request_unroutable(name, sim.now)
                        return None
                choice = balancer.route(name, targets, sim.now)
                return (replicas[choice].states[name], choice)

            def deliver(index: int, req) -> None:
                controller.arrive(
                    index,
                    req,
                    lambda index=index: route_request(
                        self.tenants[index].name
                    ),
                )

            controller = OverloadController(
                ospec,
                self.tenants,
                horizon=horizon,
                frequency_mhz=self.frequency_mhz,
                seed=seed,
                schedule_at=sim.schedule_at,
                now=lambda: sim.now,
                deliver=deliver,
                tracer=tracer,
                recorder=recorder,
            )

        def start_stream(spec: TenantSpec, index: int) -> None:
            # Same RNG keying as the single-device simulator: the fleet
            # sees the *same* traffic a lone board would.
            rng = random.Random(f"{seed}/{index}/{spec.name}")
            stream: Iterator[float] = processes[index].times(rng)
            limit = spec.limit

            def pump(count: int = 0) -> None:
                if limit is not None and count >= limit:
                    stream_open[index] = False
                    return
                try:
                    when = next(stream)
                except StopIteration:
                    stream_open[index] = False
                    return
                if when > horizon:
                    stream_open[index] = False
                    return

                def fire() -> None:
                    if controller is not None:
                        controller.arrive(
                            index,
                            controller.make_request(sim.now),
                            lambda: route_request(spec.name),
                        )
                        pump(count + 1)
                        return
                    targets = eligible[spec.name]
                    if filter_routing:
                        targets = tuple(i for i in targets if routable(i))
                        if not targets:
                            # Nobody can take it: the fleet still saw the
                            # request — booked as arrived and lost at
                            # aggregation time.
                            unroutable[spec.name] += 1
                            if tracer is not None:
                                tracer.request_unroutable(spec.name, sim.now)
                            pump(count + 1)
                            return
                    choice = balancer.route(spec.name, targets, sim.now)
                    landing = replicas[choice].states[spec.name]
                    if tracer is None:
                        landing.on_arrival(sim.now)
                    else:
                        before = landing.drops
                        landing.on_arrival(sim.now)
                        tracer.request_arrived(
                            spec.name,
                            choice,
                            sim.now,
                            dropped=landing.drops > before,
                            policy=self.policy,
                        )
                    pump(count + 1)

                sim.schedule_at(when, fire)

            pump()

        for index, spec in enumerate(self.tenants):
            start_stream(spec, index)

        # ------------------------------------------------- fault events
        def fail(replica: Replica) -> None:
            replica.down_depth += 1
            if replica.down_depth > 1:
                return  # already down (overlapping outage windows)
            if fdet is not None:
                fdet.note_onset(replica.index, sim.now)
            if tracer is not None:
                tracer.incident_begin(replica.label, sim.now)
            # Work in the pipeline dies with the board; a new generation
            # turns its already-scheduled completion events into no-ops.
            replica.generation += 1
            for state in replica.states.values():
                # Refund the admission-time CLP charge of the destroyed
                # in-flight images: the cycles were booked when each image
                # entered the pipeline, but the board never finishes them,
                # so leaving the charge overstates CLP utilization for the
                # exact windows (incidents) where the number matters.
                for clp_index, cycles in enumerate(state.clp_cycles):
                    replica.clp_busy[clp_index] -= state.pipeline * cycles
                state.lost += state.pipeline
                state.pipeline = 0
                if tracer is not None:
                    tracer.pipeline_killed(
                        state.spec.name, replica.index, sim.now
                    )
                evacuated = list(state.queue)
                if not evacuated:
                    continue
                state._touch(sim.now)
                state.queue.clear()
                t_idx = tenant_index[state.spec.name]
                for item in evacuated:
                    # ``item`` is an arrival time (plain runs) or a
                    # live request object (overload runs).
                    if failure_policy == "lost":
                        state.lost += 1
                        if tracer is not None:
                            tracer.request_evacuated(
                                state.spec.name, replica.index, sim.now,
                                outcome="lost",
                            )
                        if controller is not None:
                            item.done = True
                            controller.client_retry(
                                t_idx, item, reason="lost"
                            )
                        continue
                    rescue = tuple(
                        i
                        for i in eligible[state.spec.name]
                        if routable(i)
                    )
                    if not rescue:
                        state.lost += 1
                        if tracer is not None:
                            tracer.request_evacuated(
                                state.spec.name, replica.index, sim.now,
                                outcome="lost",
                            )
                        if controller is not None:
                            item.done = True
                            controller.client_retry(
                                t_idx, item, reason="lost"
                            )
                        continue
                    choice = balancer.route(
                        state.spec.name, rescue, sim.now
                    )
                    target = replicas[choice].states[state.spec.name]
                    if controller is not None:
                        victim = target.requeue(item, sim.now)
                        if tracer is not None:
                            tracer.request_evacuated(
                                state.spec.name, replica.index, sim.now,
                                outcome=(
                                    "dropped"
                                    if victim is not None
                                    else "requeued"
                                ),
                                target=choice,
                            )
                        if victim is not None:
                            controller.client_retry(
                                t_idx, victim, reason="dropped"
                            )
                    elif tracer is None:
                        target.requeue(item, sim.now)
                    else:
                        before = target.drops
                        target.requeue(item, sim.now)
                        tracer.request_evacuated(
                            state.spec.name, replica.index, sim.now,
                            outcome=(
                                "dropped"
                                if target.drops > before
                                else "requeued"
                            ),
                            target=choice,
                        )

        def recover(replica: Replica) -> None:
            replica.down_depth -= 1
            if replica.down_depth == 0:
                if fdet is not None and not replica.degraded:
                    fdet.note_clear(replica.index, sim.now)
                if tracer is not None:
                    tracer.incident_end(replica.label, sim.now)

        for outage in outages:
            target = replicas[outage.replica]
            sim.schedule_at(
                outage.start, lambda target=target: fail(target)
            )
            sim.schedule_at(
                outage.end, lambda target=target: recover(target)
            )

        # ------------------------------------------- gray-failure events
        # Degradations never kill in-flight work: the board keeps
        # serving, just slower / flakier / farther away.  Onset and
        # clearance feed the detector's ground-truth ledger so
        # mean-time-to-detect measures probe latency, not luck.
        def degrade(replica: Replica, deg: Degradation) -> None:
            was_bad = not replica.healthy or replica.degraded
            replica.gray_begin(deg.mode, deg.severity)
            if fdet is not None and not was_bad:
                fdet.note_onset(replica.index, sim.now)
            if tracer is not None:
                tracer.degradation_begin(
                    replica.label, sim.now, mode=deg.mode,
                    severity=deg.severity,
                )

        def undegrade(replica: Replica, deg: Degradation) -> None:
            replica.gray_end(deg.mode, deg.severity)
            if (
                fdet is not None
                and replica.healthy
                and not replica.degraded
            ):
                fdet.note_clear(replica.index, sim.now)
            if tracer is not None:
                tracer.degradation_end(
                    replica.label, sim.now, mode=deg.mode
                )

        for deg in degradations:
            target = replicas[deg.replica]
            sim.schedule_at(
                deg.start,
                lambda target=target, deg=deg: degrade(target, deg),
            )
            sim.schedule_at(
                deg.end,
                lambda target=target, deg=deg: undegrade(target, deg),
            )

        # ------------------------------------------------ detector events
        # Probes are out-of-band (they consume no replica capacity): a
        # probe round-trips one epoch plus any link delay, so a dead
        # board, a straggler, or a slow link misses the deadline, and a
        # flaky board fails the probe with its error probability (its
        # own substream — probe draws never perturb request draws).
        if fdet is not None:
            probe_rng = random.Random(f"{seed}/detector/probe")

            def probe_all(k: int = 1) -> None:
                for replica in replicas:
                    ok = replica.healthy
                    if ok and (
                        replica.slow_factor > 1.0
                        or replica.link_delay_epochs > 0.0
                    ):
                        ok = (
                            replica.epoch * replica.slow_factor
                            + replica.link_delay_epochs * replica.epoch
                        ) <= fdet.probe_timeout
                    if ok and replica.error_rate > 0.0:
                        ok = probe_rng.random() >= replica.error_rate
                    event = fdet.record_probe(replica.index, sim.now, ok)
                    if event is not None and tracer is not None:
                        if event == "ejected":
                            tracer.replica_ejected(
                                replica.label, sim.now, reason="probes"
                            )
                        else:
                            tracer.replica_readmitted(
                                replica.label, sim.now
                            )
                upcoming = (k + 1) * fdet.probe_interval
                if upcoming <= horizon:
                    sim.schedule_at(upcoming, lambda: probe_all(k + 1))

            if fdet.probe_interval <= horizon:
                sim.schedule_at(
                    fdet.probe_interval, lambda: probe_all(1)
                )

            if detector.outlier_error_rate is not None or (
                detector.outlier_p99_factor is not None
            ):

                def outliers(k: int = 1) -> None:
                    for index, reason in fdet.evaluate_outliers(sim.now):
                        if tracer is not None:
                            tracer.replica_ejected(
                                replicas[index].label, sim.now,
                                reason=reason,
                            )
                    upcoming = (k + 1) * fdet.ejection_window
                    if upcoming <= horizon:
                        sim.schedule_at(upcoming, lambda: outliers(k + 1))

                if fdet.ejection_window <= horizon:
                    sim.schedule_at(
                        fdet.ejection_window, lambda: outliers(1)
                    )

        # ------------------------------------------------- request timeout
        # A periodic sweep (twice per timeout) reaps queue entries whose
        # *current attempt* has sat longer than the deadline: failover
        # re-dispatches them (restarting the attempt clock, original
        # arrival kept for latency), an exhausted budget books them as
        # ``timed_out``.  In-pipeline work is past the point of no
        # return — it completes late or dies with the board.
        if rt_cycles is not None:
            sweep_step = rt_cycles / 2.0

            def reap(replica: Replica, state: TenantState, item) -> None:
                name = state.spec.name
                if fdet is not None:
                    fdet.record_error(replica.index)
                if failover(replica, state, item):
                    return
                timed_out[name] += 1
                if recorder is not None:
                    recorder.count(f"timeouts/{name}", sim.now)
                if tracer is not None:
                    tracer.request_timeout(name, replica.index, sim.now)
                if controller is not None:
                    item.done = True
                    controller.client_retry(
                        tenant_index[name], item, reason="timeout"
                    )

            def sweep(k: int = 1) -> None:
                for replica in replicas:
                    for state in replica.states.values():
                        if not state.queue:
                            continue
                        name = state.spec.name
                        if controller is None:
                            stale = [
                                item
                                for item in state.queue
                                if sim.now
                                - failover_state.get(
                                    (name, item), (0, item)
                                )[1]
                                >= rt_cycles
                            ]
                        else:
                            stale = [
                                item
                                for item in state.queue
                                if sim.now
                                - failover_state.get(
                                    item, (0, item.arrival)
                                )[1]
                                >= rt_cycles
                            ]
                        if not stale:
                            continue
                        state._touch(sim.now)
                        for item in stale:
                            state.queue.remove(item)
                        for item in stale:
                            reap(replica, state, item)
                upcoming = (k + 1) * sweep_step
                if upcoming <= horizon or (
                    drain
                    and any(
                        state.queue
                        for replica in replicas
                        for state in replica.states.values()
                    )
                ):
                    sim.schedule_at(upcoming, lambda: sweep(k + 1))

            if sweep_step <= horizon:
                sim.schedule_at(sweep_step, lambda: sweep(1))

        record = scenario is not None

        def failover(
            replica: Replica,
            state: TenantState,
            item,
            phase: str = "queue",
        ) -> bool:
            """Re-dispatch a failed/stale request onto another replica.

            Returns True when the request found a new queue (or died as
            a drop there — either way it was handed off); False when
            the failover budget or candidate set is exhausted and the
            caller must book the terminal outcome.
            """
            name = state.spec.name
            key = (name, item) if controller is None else item
            used, _ = failover_state.get(key, (0, 0.0))
            candidates = tuple(
                i
                for i in eligible[name]
                if i != replica.index and routable(i)
            )
            if used >= max_failovers or not candidates:
                failover_state.pop(key, None)
                return False
            # The attempt clock restarts: timeouts measure the current
            # attempt, not the request's total age (latency still does).
            failover_state[key] = (used + 1, sim.now)
            if used == 0:
                failed_over[name] += 1
            choice = balancer.route(name, candidates, sim.now)
            target = replicas[choice].states[name]
            if controller is not None:
                victim = target.requeue(item, sim.now)
                if victim is not None:
                    controller.client_retry(
                        tenant_index[name], victim, reason="dropped"
                    )
            else:
                target.requeue(item, sim.now)
            if recorder is not None:
                recorder.count(f"failovers/{name}", sim.now)
            if tracer is not None:
                tracer.request_failover(
                    name, replica.index, sim.now, target=choice,
                    phase=phase,
                )
            return True

        def flaky_error(
            replica: Replica, state: TenantState, item, t_idx: Optional[int]
        ) -> None:
            """A dispatched request came back as an error (flaky board)."""
            name = state.spec.name
            if fdet is not None:
                fdet.record_error(replica.index)
            if recorder is not None:
                recorder.count(f"errors/{name}", sim.now)
            if failover(replica, state, item, phase="pipeline"):
                return
            # Terminal: the error response is the final word.
            state.lost += 1
            if tracer is not None:
                tracer.request_errored(name, replica.index, sim.now)
            if controller is not None:
                item.done = True
                controller.client_retry(t_idx, item, reason="error")

        def finish(
            replica: Replica,
            state: TenantState,
            arrival: float,
            gen: int,
            errored: bool = False,
        ) -> None:
            if replica.generation != gen:
                return  # the board died after admission; work already lost
            if errored:
                state.pipeline -= 1
                flaky_error(replica, state, arrival, None)
                return
            state.on_completion(arrival, sim.now)
            if fdet is not None:
                fdet.record_success(replica.index, sim.now - arrival)
            if failover_state:
                failover_state.pop((state.spec.name, arrival), None)
            if tracer is not None:
                tracer.request_completed(
                    state.spec.name, replica.index, sim.now, arrival
                )
            if record:
                samples.append((sim.now, sim.now - arrival))

        def finish_overload(
            replica: Replica,
            state: TenantState,
            req,
            gen: int,
            t_idx: int,
            errored: bool = False,
        ) -> None:
            if replica.generation != gen:
                # The board died after admission: the loss was booked at
                # fail time; the client notices around when the reply
                # was due and may retry.
                controller.client_retry(t_idx, req, reason="lost")
                return
            if errored:
                state.pipeline -= 1
                flaky_error(replica, state, req, t_idx)
                return
            controller.complete(t_idx, state, req)
            if fdet is not None:
                fdet.record_success(replica.index, sim.now - req.arrival)
            if failover_state:
                failover_state.pop(req, None)
            if tracer is not None:
                tracer.request_completed(
                    state.spec.name, replica.index, sim.now, req.arrival
                )
            if record:
                samples.append((sim.now, sim.now - req.arrival))

        def make_boundary(replica: Replica):
            epoch = replica.epoch

            def boundary(count: int = 0) -> None:
                dispatching = replica.healthy
                if dispatching and have_gray:
                    sf = replica.slow_factor
                    if sf > 1.0:
                        # A straggler dispatches only every ``sf``-th
                        # boundary — epoch slowdown without perturbing
                        # the exact boundary grid.  The fractional
                        # accumulator keeps non-integer factors honest;
                        # the catch-up clamp resets a stale marker when
                        # a new slow window opens.
                        if count - replica.slow_next >= sf:
                            replica.slow_next = float(count)
                        if count < replica.slow_next:
                            dispatching = False
                        else:
                            replica.slow_next += sf
                if dispatching:
                    for state in replica.states.values():
                        if have_gray:
                            service = (
                                state.depth_epochs
                                * epoch
                                * replica.slow_factor
                                + replica.link_delay_epochs * epoch
                            )
                            flaky = replica.error_rate
                        else:
                            service = state.depth_epochs * epoch
                            flaky = 0.0
                        if controller is not None:
                            t_idx = tenant_index[state.spec.name]
                            req = controller.dispatch(
                                t_idx, state, replica.index
                            )
                            if req is None:
                                continue
                            errored = (
                                flaky > 0.0
                                and flaky_rng.random() < flaky
                            )
                            if tracer is not None:
                                tracer.request_dispatched(
                                    state.spec.name, replica.index,
                                    sim.now, req.arrival,
                                )
                            for clp_index, cycles in enumerate(
                                state.clp_cycles
                            ):
                                replica.clp_busy[clp_index] += cycles
                            sim.schedule(
                                service,
                                lambda state=state, req=req, t_idx=t_idx, gen=replica.generation, errored=errored: finish_overload(
                                    replica, state, req, gen, t_idx, errored
                                ),
                            )
                            continue
                        arrival = state.admit(sim.now)
                        if arrival is None:
                            continue
                        errored = (
                            flaky > 0.0 and flaky_rng.random() < flaky
                        )
                        if tracer is not None:
                            tracer.request_dispatched(
                                state.spec.name, replica.index, sim.now,
                                arrival,
                            )
                        for clp_index, cycles in enumerate(state.clp_cycles):
                            replica.clp_busy[clp_index] += cycles
                        sim.schedule(
                            service,
                            lambda state=state, arrival=arrival, gen=replica.generation, errored=errored: finish(
                                replica, state, arrival, gen, errored
                            ),
                        )
                # Exact grid ``count * epoch`` — see the single-device
                # boundary chain; chained ``now + epoch`` sums drift.
                upcoming = (count + 1) * epoch
                pending = (
                    any(state.queue for state in replica.states.values())
                    or any(
                        stream_open[index]
                        for index, spec in enumerate(self.tenants)
                        if replica.serves(spec.name)
                    )
                    or (
                        controller is not None
                        and controller.pending_deliveries > 0
                    )
                )
                if upcoming <= horizon or (drain and pending):
                    sim.schedule_at(upcoming, lambda: boundary(count + 1))

            return boundary

        for replica in replicas:
            make_boundary(replica)()  # first dispatch at cycle 0

        if recorder is not None:
            from ..obs.telemetry import BusySampler, TenantGroupSampler

            tenant_samplers = [
                TenantGroupSampler(
                    recorder,
                    spec.name,
                    [
                        replicas[i].states[spec.name]
                        for i in eligible[spec.name]
                    ],
                    unroutable=lambda name=spec.name: unroutable[name],
                )
                for spec in self.tenants
            ]
            busy_samplers = [
                BusySampler(
                    recorder,
                    f"util/{replica.label}",
                    replica.clp_busy,
                    aggregate="max",
                )
                for replica in replicas
            ]

            def sample(window: int, when: float) -> None:
                for sampler in tenant_samplers:
                    sampler.sample(window, when)
                for sampler in busy_samplers:
                    sampler.sample(window, when)
                recorder.gauge(
                    "healthy_replicas",
                    window,
                    sum(1 for replica in replicas if replica.healthy),
                )
                if fdet is not None:
                    # The detector's view next to the oracle's: the two
                    # diverge exactly during detection lag and false
                    # positives — the gap *is* the gray-failure story.
                    recorder.gauge(
                        "detected_healthy_replicas",
                        window,
                        fdet.detected_healthy_count(),
                    )
                for replica in replicas:
                    recorder.gauge(
                        f"outstanding/{replica.label}",
                        window,
                        replica.outstanding,
                    )
                    if have_faults or have_gray:
                        recorder.gauge(
                            f"healthy/{replica.label}",
                            window,
                            (
                                1.0
                                if replica.healthy and not replica.degraded
                                else 0.0
                            ),
                        )

            # Read-only samplers on the shared grid; scheduled last so
            # they never perturb the run they watch.
            for window, when in enumerate(recorder.times):
                sim.schedule_at(
                    when,
                    lambda window=window, when=when: sample(window, when),
                )

        if drain:
            elapsed = max(sim.run(), horizon)
        else:
            sim.run(until=horizon)
            elapsed = horizon

        return self._finalize(
            balancer, replicas, horizon, elapsed, seed, drain,
            scenario, outages, unroutable, samples,
            timeseries=(
                recorder.finalize() if recorder is not None else None
            ),
            controller=controller,
            degradations=degradations,
            detector_spec=(
                detector
                if detector is not None
                and (detector.active or have_gray)
                else None
            ),
            fdet=fdet,
            timed_out=timed_out,
            failed_over=failed_over,
        )

    def _finalize(
        self,
        balancer: Balancer,
        replicas: List[Replica],
        horizon: float,
        elapsed: float,
        seed: int,
        drain: bool,
        scenario: Optional[ScenarioSpec],
        outages: List[Outage],
        unroutable: Dict[str, int],
        samples: List[Tuple[float, float]],
        timeseries: Optional["TimeSeries"] = None,
        controller: Optional["OverloadController"] = None,
        degradations: Optional[List[Degradation]] = None,
        detector_spec: Optional[DetectorSpec] = None,
        fdet: Optional[FailureDetector] = None,
        timed_out: Optional[Dict[str, int]] = None,
        failed_over: Optional[Dict[str, int]] = None,
    ) -> FleetResult:
        """Reduce final replica state to a :class:`FleetResult` (engine-shared)."""
        aggregates = tuple(
            _aggregate_tenant(
                spec,
                [
                    replica.states[spec.name]
                    for replica in replicas
                    if replica.serves(spec.name)
                ],
                elapsed,
                unroutable[spec.name],
                gate_arrivals=(
                    controller.gate_arrivals[spec.name]
                    if controller is not None
                    else 0
                ),
                gate_rejected=(
                    controller.gate_rejected[spec.name]
                    if controller is not None
                    else 0
                ),
                gate_retries=(
                    controller.gate_retries[spec.name]
                    if controller is not None
                    else 0
                ),
                gate_hedges=(
                    controller.gate_hedges[spec.name]
                    if controller is not None
                    else 0
                ),
                timed_out=(
                    timed_out[spec.name] if timed_out is not None else 0
                ),
                failed_over=(
                    failed_over[spec.name]
                    if failed_over is not None
                    else 0
                ),
            )
            for spec in self.tenants
        )

        incidents: Tuple[Incident, ...] = ()
        resilience = None
        if scenario is not None:
            log: List[Incident] = [
                Incident(
                    kind="fault",
                    target=replicas[o.replica].label,
                    start_cycles=o.start,
                    end_cycles=min(o.end, elapsed),
                    recovered=o.end <= elapsed,
                )
                for o in outages
            ]
            log.extend(
                Incident(
                    kind="gray",
                    target=replicas[d.replica].label,
                    start_cycles=d.start,
                    end_cycles=min(d.end, elapsed),
                    recovered=d.end <= elapsed,
                )
                for d in (degradations or [])
            )
            if scenario.surge is not None:
                log.extend(
                    Incident(
                        kind="surge",
                        target="fleet",
                        start_cycles=start,
                        end_cycles=end,
                        recovered=True,
                    )
                    for start, end in scenario.surge.windows(horizon)
                )
            incidents = tuple(
                sorted(log, key=lambda i: (i.start_cycles, i.target))
            )
            resilience = compute_resilience(
                completions=samples,
                incidents=incidents,
                horizon_cycles=elapsed,
                num_replicas=len(replicas),
                lost_requests=sum(t.lost for t in aggregates),
                mean_time_to_detect_cycles=(
                    fdet.mean_time_to_detect() if fdet is not None else None
                ),
            )

        return FleetResult(
            balancer=balancer.name,
            num_replicas=len(replicas),
            frequency_mhz=self.frequency_mhz,
            horizon_cycles=horizon,
            elapsed_cycles=elapsed,
            seed=seed,
            queue_depth=self.queue_depth,
            policy=self.policy,
            drained=drain,
            tenants=aggregates,
            replicas=tuple(replica.stats(elapsed) for replica in replicas),
            scenario=scenario.name if scenario is not None else None,
            incidents=incidents,
            resilience=resilience,
            timeseries=timeseries,
            overload=(
                controller.report() if controller is not None else None
            ),
            detector=detector_spec,
        )


def simulate_fleet(
    devices: Union[DeviceSpec, Sequence[DeviceSpec]],
    tenants: Sequence[TenantSpec],
    duration_cycles: float,
    *,
    balancer: Union[str, Balancer, None] = None,
    frequency_mhz: float = 100.0,
    seed: int = 0,
    queue_depth: int = 64,
    policy: str = "drop-tail",
    drain: bool = False,
    scenario: Union[str, ScenarioSpec, None] = None,
    engine: str = "auto",
    obs: Optional["ObsSpec"] = None,
    overload: Optional["OverloadSpec"] = None,
    detector: Optional[DetectorSpec] = None,
) -> FleetResult:
    """One-shot convenience wrapper around :class:`ClusterSimulator`."""
    cluster = ClusterSimulator(
        devices,
        tenants,
        balancer=balancer,
        frequency_mhz=frequency_mhz,
        queue_depth=queue_depth,
        policy=policy,
    )
    return cluster.run(
        duration_cycles,
        seed=seed,
        drain=drain,
        scenario=scenario,
        engine=engine,
        obs=obs,
        overload=overload,
        detector=detector,
    )
