"""The cluster simulator: N epoch-pipelined devices, one event engine.

Scale-out layer over :mod:`repro.serve`: the same seeded arrival streams
(one per tenant, keyed exactly as :func:`repro.serve.simulator.simulate_traffic`
keys them), but each arrival is routed by a pluggable
:class:`~repro.fleet.balancer.Balancer` to one of N replicas, each an
independent epoch-pipelined device model with its own per-tenant bounded
FIFO queues, epoch boundary chain, and CLP busy accounting.  All
replicas share one discrete-event engine, so cross-replica orderings are
deterministic under a fixed seed.

The construction is deliberately a superset of the single-device
simulator: with one replica, every arrival routes to it, the event
structure degenerates to ``simulate_traffic``'s, and the per-tenant
metrics come out *identical* — the differential tests pin this bit for
bit.  That equivalence is what makes fleet-level answers (how many
boards?) trustworthy extrapolations of the paper's device model.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..serve.metrics import LatencySummary, TenantStats
from ..serve.simulator import DROP_POLICIES, TenantSpec, TenantState
from .balancer import Balancer, make_balancer
from .device import DeviceSpec
from .metrics import FleetResult, ReplicaStats

__all__ = ["Replica", "ClusterSimulator", "simulate_fleet"]


class Replica:
    """Runtime model of one board: per-tenant states + busy counters."""

    def __init__(
        self,
        spec: DeviceSpec,
        index: int,
        tenants: Sequence[TenantSpec],
        queue_depth: int,
        policy: str,
    ):
        self.spec = spec
        self.index = index
        self.label = f"{spec.display_label}#{index}"
        base, plans = spec.plans()
        self.epoch = spec.resolve_epoch()
        self.num_clps = base.num_clps
        self.clp_busy = [0.0] * base.num_clps
        #: Tenant states in fleet tenant order, only for served tenants.
        self.states: Dict[str, TenantState] = {}
        for tenant in tenants:
            if tenant.name not in plans:
                continue
            depth, clp_cycles = plans[tenant.name]
            self.states[tenant.name] = TenantState(
                tenant, depth, clp_cycles, queue_depth, policy
            )

    @property
    def outstanding(self) -> int:
        """Requests queued or in the pipeline (the balancer's load signal)."""
        return sum(
            len(state.queue) + state.pipeline for state in self.states.values()
        )

    def serves(self, tenant: str) -> bool:
        return tenant in self.states

    def stats(self, elapsed: float) -> ReplicaStats:
        fractions = tuple(
            min(1.0, busy / elapsed) if elapsed > 0 else 0.0
            for busy in self.clp_busy
        )
        return ReplicaStats(
            label=self.label,
            part=self.spec.part,
            epoch_cycles=self.epoch,
            pipeline_depths=tuple(
                state.depth_epochs for state in self.states.values()
            ),
            tenants=tuple(
                state.stats(elapsed) for state in self.states.values()
            ),
            clp_busy_fraction=fractions,
        )


def _aggregate_tenant(
    spec: TenantSpec, states: Sequence[TenantState], elapsed: float
) -> TenantStats:
    """Fleet-wide view of one tenant: merge raw samples, then reduce."""
    latencies: List[float] = []
    for state in states:
        latencies.extend(state.latencies)
    completions = sum(state.completions for state in states)
    firsts = [s.first_completion for s in states if s.first_completion is not None]
    lasts = [s.last_completion for s in states if s.last_completion is not None]
    steady = None
    if completions >= 2 and firsts and max(lasts) > min(firsts):
        steady = (completions - 1) / (max(lasts) - min(firsts))
    return TenantStats(
        name=spec.name,
        offered_rate_per_cycle=spec.process.mean_rate,
        arrivals=sum(state.arrivals for state in states),
        completions=completions,
        drops=sum(state.drops for state in states),
        in_flight=sum(
            len(state.queue) + state.pipeline for state in states
        ),
        latency=LatencySummary.of(latencies),
        mean_queue_depth=sum(
            state.mean_queue_depth(elapsed) for state in states
        ),
        peak_queue_depth=max(state.peak_queue for state in states),
        steady_rate_per_cycle=steady,
    )


class ClusterSimulator:
    """Multiplex N device models over shared arrival streams.

    Construction validates the topology (every tenant must be servable
    by at least one replica; every replica network must be an offered
    tenant); :meth:`run` executes one seeded window and returns a
    :class:`~repro.fleet.metrics.FleetResult`.  A simulator instance is
    reusable — each ``run`` builds fresh replica state — which is what
    the capacity planner and autoscaler lean on.
    """

    def __init__(
        self,
        devices: Union[DeviceSpec, Sequence[DeviceSpec]],
        tenants: Sequence[TenantSpec],
        *,
        balancer: Union[str, Balancer, None] = None,
        frequency_mhz: float = 100.0,
        queue_depth: int = 64,
        policy: str = "drop-tail",
    ):
        if isinstance(devices, DeviceSpec):
            devices = [devices]
        if not devices:
            raise ValueError("a fleet needs at least one device spec")
        if not tenants:
            raise ValueError("a fleet needs at least one tenant")
        if queue_depth < 1:
            raise ValueError("queue_depth must be at least 1")
        if policy not in DROP_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {DROP_POLICIES}")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        self.devices = tuple(devices)
        self.tenants = tuple(tenants)
        self._balancer_spec = balancer
        self.frequency_mhz = frequency_mhz
        self.queue_depth = queue_depth
        self.policy = policy

        served = set()
        for device in self.devices:
            served.update(device.networks)
        offered = set(names)
        if not offered <= served:
            raise ValueError(
                f"tenants {sorted(offered - served)} are not served by any "
                f"replica (fleet serves {sorted(served)})"
            )
        if not served <= offered:
            raise ValueError(
                f"replica networks {sorted(served - offered)} have no tenant "
                f"stream (offered: {sorted(offered)})"
            )

    @property
    def num_replicas(self) -> int:
        return sum(device.count for device in self.devices)

    def _make_balancer(self) -> Balancer:
        spec = self._balancer_spec
        if spec is None:
            spec = "round-robin"
        if isinstance(spec, str):
            return make_balancer(spec)
        # Reuse the caller's policy object (it may carry configuration a
        # plain re-instantiation would lose) but drop its per-run state.
        spec.reset()
        return spec

    # ------------------------------------------------------------------- run
    def run(
        self,
        duration_cycles: float,
        *,
        seed: int = 0,
        drain: bool = False,
    ) -> FleetResult:
        """One seeded traffic window over the whole fleet.

        Semantics mirror :func:`repro.serve.simulator.simulate_traffic`:
        ``drain=False`` cuts the run at the horizon (queued/pipelined
        requests reported in-flight); ``drain=True`` stops arrivals at
        the horizon but serves out every queue, so arrivals equal
        completions plus drops exactly.  Identical arguments produce an
        identical :class:`~repro.fleet.metrics.FleetResult`.
        """
        from ..sim.engine import Simulator

        if duration_cycles <= 0:
            raise ValueError("duration_cycles must be positive")

        sim = Simulator()
        replicas: List[Replica] = []
        for device in self.devices:
            for _ in range(device.count):
                replicas.append(
                    Replica(
                        device,
                        len(replicas),
                        self.tenants,
                        self.queue_depth,
                        self.policy,
                    )
                )
        eligible: Dict[str, Tuple[int, ...]] = {
            spec.name: tuple(
                replica.index
                for replica in replicas
                if replica.serves(spec.name)
            )
            for spec in self.tenants
        }
        balancer = self._make_balancer()
        balancer.bind(replicas, random.Random(f"{seed}/balancer"))

        horizon = float(duration_cycles)
        #: One open/closed flag per tenant *stream* (shared by replicas).
        stream_open = [True] * len(self.tenants)

        def start_stream(spec: TenantSpec, index: int) -> None:
            # Same RNG keying as the single-device simulator: the fleet
            # sees the *same* traffic a lone board would.
            rng = random.Random(f"{seed}/{index}/{spec.name}")
            stream: Iterator[float] = spec.process.times(rng)
            limit = spec.limit

            def pump(count: int = 0) -> None:
                if limit is not None and count >= limit:
                    stream_open[index] = False
                    return
                try:
                    when = next(stream)
                except StopIteration:
                    stream_open[index] = False
                    return
                if when > horizon:
                    stream_open[index] = False
                    return

                def fire() -> None:
                    choice = balancer.route(
                        spec.name, eligible[spec.name], sim.now
                    )
                    replicas[choice].states[spec.name].on_arrival(sim.now)
                    pump(count + 1)

                sim.schedule_at(when, fire)

            pump()

        for index, spec in enumerate(self.tenants):
            start_stream(spec, index)

        def make_boundary(replica: Replica):
            epoch = replica.epoch

            def boundary() -> None:
                for state in replica.states.values():
                    arrival = state.admit(sim.now)
                    if arrival is None:
                        continue
                    for clp_index, cycles in enumerate(state.clp_cycles):
                        replica.clp_busy[clp_index] += cycles
                    sim.schedule(
                        state.depth_epochs * epoch,
                        lambda state=state, arrival=arrival: state.on_completion(
                            arrival, sim.now
                        ),
                    )
                upcoming = sim.now + epoch
                pending = any(
                    state.queue for state in replica.states.values()
                ) or any(
                    stream_open[index]
                    for index, spec in enumerate(self.tenants)
                    if replica.serves(spec.name)
                )
                if upcoming <= horizon or (drain and pending):
                    sim.schedule(epoch, boundary)

            return boundary

        for replica in replicas:
            make_boundary(replica)()  # first dispatch at cycle 0

        if drain:
            elapsed = max(sim.run(), horizon)
        else:
            sim.run(until=horizon)
            elapsed = horizon

        aggregates = tuple(
            _aggregate_tenant(
                spec,
                [
                    replica.states[spec.name]
                    for replica in replicas
                    if replica.serves(spec.name)
                ],
                elapsed,
            )
            for spec in self.tenants
        )
        return FleetResult(
            balancer=balancer.name,
            num_replicas=len(replicas),
            frequency_mhz=self.frequency_mhz,
            horizon_cycles=horizon,
            elapsed_cycles=elapsed,
            seed=seed,
            queue_depth=self.queue_depth,
            policy=self.policy,
            drained=drain,
            tenants=aggregates,
            replicas=tuple(replica.stats(elapsed) for replica in replicas),
        )


def simulate_fleet(
    devices: Union[DeviceSpec, Sequence[DeviceSpec]],
    tenants: Sequence[TenantSpec],
    duration_cycles: float,
    *,
    balancer: Union[str, Balancer, None] = None,
    frequency_mhz: float = 100.0,
    seed: int = 0,
    queue_depth: int = 64,
    policy: str = "drop-tail",
    drain: bool = False,
) -> FleetResult:
    """One-shot convenience wrapper around :class:`ClusterSimulator`."""
    cluster = ClusterSimulator(
        devices,
        tenants,
        balancer=balancer,
        frequency_mhz=frequency_mhz,
        queue_depth=queue_depth,
        policy=policy,
    )
    return cluster.run(duration_cycles, seed=seed, drain=drain)
