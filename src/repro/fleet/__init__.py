"""Multi-FPGA cluster simulation: load balancing, planning, autoscaling.

The paper maximizes one FPGA; this package provisions a *service*.  A
fleet is N replicas (:class:`DeviceSpec` — design + part + per-replica
epoch calibration) multiplexed over shared seeded arrival streams by a
pluggable routing policy (:mod:`repro.fleet.balancer`), all inside one
discrete-event engine (:class:`ClusterSimulator`).  On top sit the
operator questions: :func:`plan_capacity` binary-searches the minimum
board count meeting an SLO at a target rate, and :func:`autoscale`
steps a reactive p99/queue-depth controller between traffic windows.

A single-replica fleet reproduces :func:`repro.serve.simulate_traffic`
exactly (same seed, same per-tenant metrics) — the device model is
shared, not approximated — so fleet answers inherit the paper model's
calibration.  See ``repro fleet --help`` for the CLI entry points.
"""

from .balancer import (
    BALANCER_NAMES,
    Balancer,
    ReplicaView,
    LeastOutstandingBalancer,
    PowerOfTwoBalancer,
    RandomBalancer,
    RoundRobinBalancer,
    TenantAffinityBalancer,
    make_balancer,
)
from .cluster import ClusterSimulator, Replica, simulate_fleet
from .detector import (
    DETECTOR_MODES,
    DetectorSpec,
    FailureDetector,
    detector_spec_from_dict,
    detector_spec_to_dict,
)
from .device import CALIBRATION_MODES, DeviceSpec
from .metrics import FleetResult, ReplicaStats
from .planner import (
    AutoscalerPolicy,
    AutoscaleTrace,
    AutoscaleWindow,
    CapacityPlan,
    PlanProbe,
    autoscale,
    plan_capacity,
)

__all__ = [
    "DeviceSpec",
    "CALIBRATION_MODES",
    "Balancer",
    "ReplicaView",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "PowerOfTwoBalancer",
    "RandomBalancer",
    "TenantAffinityBalancer",
    "BALANCER_NAMES",
    "make_balancer",
    "Replica",
    "ClusterSimulator",
    "simulate_fleet",
    "DETECTOR_MODES",
    "DetectorSpec",
    "FailureDetector",
    "detector_spec_to_dict",
    "detector_spec_from_dict",
    "ReplicaStats",
    "FleetResult",
    "PlanProbe",
    "CapacityPlan",
    "plan_capacity",
    "AutoscalerPolicy",
    "AutoscaleWindow",
    "AutoscaleTrace",
    "autoscale",
]
