"""Multi-CLP CNN accelerator resource partitioning (ISCA 2017 reproduction).

Public API quickstart::

    from repro import networks, fpga, optimize_multi_clp, FLOAT32

    net = networks.alexnet()
    budget = fpga.budget_for("485t")
    design = optimize_multi_clp(net, budget, FLOAT32)
    print(design.describe())
"""

from .core import (
    FIXED16,
    FLOAT32,
    INT8,
    CLPConfig,
    ConvLayer,
    DataType,
    DesignMetrics,
    MultiCLPDesign,
    Network,
    build_schedule,
    layer_cycles,
    utilization_report,
)
from .fpga import FpgaPart, ResourceBudget, budget_for, get_part
from .networks import available_networks, get_network

__version__ = "1.1.0"

__all__ = [
    "ConvLayer",
    "Network",
    "DataType",
    "FLOAT32",
    "FIXED16",
    "INT8",
    "CLPConfig",
    "MultiCLPDesign",
    "DesignMetrics",
    "layer_cycles",
    "utilization_report",
    "build_schedule",
    "FpgaPart",
    "ResourceBudget",
    "budget_for",
    "get_part",
    "get_network",
    "available_networks",
    "optimize_multi_clp",
    "optimize_single_clp",
    "dse",
    "SweepSpec",
    "run_sweep",
    "serve",
    "fleet",
    "scenario",
    "simulate_traffic",
    "TenantSpec",
    "__version__",
]


def __getattr__(name):
    # Deferred imports keep `import repro` cheap and avoid import cycles.
    if name in ("optimize_multi_clp", "optimize_single_clp"):
        from .opt import optimize_multi_clp, optimize_single_clp

        return {
            "optimize_multi_clp": optimize_multi_clp,
            "optimize_single_clp": optimize_single_clp,
        }[name]
    if name == "dse":
        from . import dse

        return dse
    if name in ("SweepSpec", "run_sweep"):
        from .dse import SweepSpec, run_sweep

        return {"SweepSpec": SweepSpec, "run_sweep": run_sweep}[name]
    if name == "serve":
        from . import serve

        return serve
    if name == "scenario":
        from . import scenario

        return scenario
    if name == "fleet":
        from . import fleet

        return fleet
    if name in ("simulate_traffic", "TenantSpec"):
        from .serve import TenantSpec, simulate_traffic

        return {
            "simulate_traffic": simulate_traffic,
            "TenantSpec": TenantSpec,
        }[name]
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
