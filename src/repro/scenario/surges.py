"""Non-stationary arrival generators: surges, ramps, and tenant churn.

The serve-layer processes (:mod:`repro.serve.arrivals`) are stationary —
their long-run rate never moves.  Production traffic does: a service
sees a diurnal sinusoid, flash crowds around events, launch ramps, and
tenants that join and leave.  Every generator here is a time-varying-
rate :class:`~repro.serve.arrivals.ArrivalProcess`, so they drop into
the single-device and fleet simulators exactly like the stationary
shapes (same seeded-RNG contract, same strictly non-decreasing times).

Implementation: Lewis–Shedler thinning of a homogeneous Poisson
process.  Candidates are drawn at ``peak_rate`` and accepted with
probability ``rate_at(t) / peak_rate``, which samples any bounded rate
profile exactly and stays deterministic under a fixed RNG — two draws
per candidate, nothing else.

Rates and times are in the repo's clock-agnostic currency (requests and
cycles); the scenario library scales shapes to a concrete horizon when a
run starts (see :class:`repro.scenario.library.SurgeShape`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator

from ..serve.arrivals import ArrivalProcess, _check_rate

__all__ = [
    "TimeVaryingArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "RampArrivals",
    "OnOffArrivals",
]


class TimeVaryingArrivals(ArrivalProcess):
    """Base for thinned-Poisson processes with a bounded rate profile.

    Subclasses implement :meth:`rate_at` (instantaneous arrivals per
    cycle) and :attr:`peak_rate` (a tight upper bound on it); ``times``
    is shared.  ``mean_rate`` reports the *baseline* rate — the value an
    operator would quote as the tenant's nominal load — since the true
    time average depends on the observation window.
    """

    #: Tight upper bound on :meth:`rate_at` over all times.
    peak_rate: float

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (requests per cycle) at time ``t``."""
        raise NotImplementedError

    def times(self, rng: random.Random) -> Iterator[float]:
        peak = self.peak_rate
        now = 0.0
        while True:
            now += rng.expovariate(peak)
            if rng.random() * peak <= self.rate_at(now):
                yield now


@dataclass(frozen=True)
class DiurnalArrivals(TimeVaryingArrivals):
    """Sinusoidal day/night modulation around a baseline ``rate``.

    ``rate_at(t) = rate * (1 + amplitude * sin(2*pi*t/period + phase))``
    — the classic diurnal curve.  With ``phase=0`` the quietest point is
    at ``3/4 period`` and the peak at ``1/4 period``, so one full period
    over a simulation window models one traffic "day".
    """

    rate: float
    amplitude: float = 0.7
    period_cycles: float = 1_000_000.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(
                f"amplitude must be in [0, 1), got {self.amplitude} "
                "(1 would drive the trough rate to zero)"
            )
        if self.period_cycles <= 0:
            raise ValueError("period_cycles must be positive")

    @property
    def mean_rate(self) -> float:
        return self.rate

    @property
    def peak_rate(self) -> float:
        return self.rate * (1.0 + self.amplitude)

    def rate_at(self, t: float) -> float:
        angle = 2.0 * math.pi * t / self.period_cycles + self.phase
        return self.rate * (1.0 + self.amplitude * math.sin(angle))


@dataclass(frozen=True)
class FlashCrowdArrivals(TimeVaryingArrivals):
    """Baseline Poisson traffic with a multiplicative spike window.

    Outside ``[spike_start, spike_start + spike_cycles)`` the rate is
    ``rate``; inside it is ``rate * multiplier`` — the flash crowd a
    viral link or a retry storm produces.
    """

    rate: float
    multiplier: float = 4.0
    spike_start_cycles: float = 0.0
    spike_cycles: float = 100_000.0

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.multiplier <= 1.0:
            raise ValueError(
                f"multiplier must exceed 1, got {self.multiplier} "
                "(a <=1x spike is just baseline traffic)"
            )
        if self.spike_start_cycles < 0 or self.spike_cycles <= 0:
            raise ValueError("spike window must be non-negative and non-empty")

    @property
    def mean_rate(self) -> float:
        return self.rate

    @property
    def peak_rate(self) -> float:
        return self.rate * self.multiplier

    def rate_at(self, t: float) -> float:
        start = self.spike_start_cycles
        if start <= t < start + self.spike_cycles:
            return self.rate * self.multiplier
        return self.rate


@dataclass(frozen=True)
class RampArrivals(TimeVaryingArrivals):
    """Linear ramp from ``start_rate`` to ``end_rate``, then hold.

    Models a launch (ramp up) or a drain (ramp down): the rate moves
    linearly over ``ramp_cycles`` and stays at ``end_rate`` after.
    """

    start_rate: float
    end_rate: float
    ramp_cycles: float

    def __post_init__(self) -> None:
        _check_rate(self.start_rate)
        _check_rate(self.end_rate)
        if self.ramp_cycles <= 0:
            raise ValueError("ramp_cycles must be positive")

    @property
    def mean_rate(self) -> float:
        return self.end_rate

    @property
    def peak_rate(self) -> float:
        return max(self.start_rate, self.end_rate)

    def rate_at(self, t: float) -> float:
        if t >= self.ramp_cycles:
            return self.end_rate
        frac = t / self.ramp_cycles
        return self.start_rate + (self.end_rate - self.start_rate) * frac


@dataclass(frozen=True)
class OnOffArrivals(TimeVaryingArrivals):
    """Deterministic session gating: a tenant that joins and leaves.

    The tenant is *active* (Poisson at ``rate``) for the first
    ``duty`` fraction of every ``period_cycles`` window, shifted by
    ``phase_cycles``, and silent otherwise.  Staggering phases across
    tenants turns this into fleet-level churn: at any instant only a
    subset of tenants offers load, and the subset rotates.

    Unlike :class:`~repro.serve.arrivals.BurstyArrivals` the on/off
    schedule is deterministic — churn scenarios need the join/leave
    times to be part of the *scenario*, not the random draw, so two
    designs see tenants come and go at identical times.
    """

    rate: float
    duty: float = 0.6
    period_cycles: float = 500_000.0
    phase_cycles: float = 0.0

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if not 0.0 < self.duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {self.duty}")
        if self.period_cycles <= 0:
            raise ValueError("period_cycles must be positive")

    @property
    def mean_rate(self) -> float:
        return self.rate * self.duty

    @property
    def peak_rate(self) -> float:
        return self.rate

    def rate_at(self, t: float) -> float:
        position = (t + self.phase_cycles) % self.period_cycles
        return self.rate if position < self.duty * self.period_cycles else 0.0
