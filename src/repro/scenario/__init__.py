"""Failure injection, surge traffic, and resilience metrics.

``repro.fleet`` answers "how many boards serve this load?"; this package
answers the operator's next question — "and what happens when a rack
dies during the daily peak?".  It contributes three pieces that plug
into the existing simulators without forking them:

- :mod:`~repro.scenario.faults` — seeded replica fail/recover schedules
  (random MTTF/MTTR, scheduled outages, correlated rack failures,
  rolling reboots) driven as events inside the cluster's event loop;
- :mod:`~repro.scenario.surges` — non-stationary arrival processes
  (diurnal, flash crowd, ramp, on/off churn) via thinned Poisson
  sampling;
- :mod:`~repro.scenario.resilience` — windowed metrics that score
  service quality *during* incidents separately from calm periods.

:mod:`~repro.scenario.library` names the standard drills
(``rack-loss``, ``flash-crowd``, …) so the CLI, the capacity planner's
``redundancy=N`` probes, and tests all speak the same vocabulary.
"""

from .faults import (
    FAILURE_POLICIES,
    GRAY_MODES,
    Degradation,
    DegradedReplica,
    FaultSpec,
    FlakyReplica,
    Incident,
    LinkDelay,
    Outage,
    RackFailure,
    RandomFaults,
    RedundancyOutage,
    RollingReboot,
    ScheduledOutage,
)
from .library import (
    SCENARIO_NAMES,
    SCENARIOS,
    ChurnShape,
    DiurnalShape,
    FlashCrowdShape,
    ScenarioSpec,
    SurgeShape,
    describe_scenario,
    get_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .resilience import ResilienceReport, WindowMetrics, compute_resilience
from .surges import (
    DiurnalArrivals,
    FlashCrowdArrivals,
    OnOffArrivals,
    RampArrivals,
    TimeVaryingArrivals,
)

__all__ = [
    "FAILURE_POLICIES",
    "GRAY_MODES",
    "FaultSpec",
    "Incident",
    "Outage",
    "Degradation",
    "RandomFaults",
    "ScheduledOutage",
    "RackFailure",
    "RollingReboot",
    "RedundancyOutage",
    "DegradedReplica",
    "FlakyReplica",
    "LinkDelay",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "ScenarioSpec",
    "SurgeShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "ChurnShape",
    "get_scenario",
    "describe_scenario",
    "scenario_to_dict",
    "scenario_from_dict",
    "ResilienceReport",
    "WindowMetrics",
    "compute_resilience",
    "TimeVaryingArrivals",
    "DiurnalArrivals",
    "FlashCrowdArrivals",
    "RampArrivals",
    "OnOffArrivals",
]
