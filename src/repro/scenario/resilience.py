"""Resilience metrics: how a fleet behaved *through* its incidents.

Whole-run averages hide exactly what a failure drill is meant to show —
a 25%-of-horizon rack outage can triple p99 inside its window yet move
the run-wide percentile by almost nothing, because the healthy majority
of the run dominates the sample.  :func:`compute_resilience` therefore
splits every completion by whether it finished inside the union of the
run's incident windows (replica outages and declared traffic surges)
and summarizes the two populations separately, alongside the loss
ledger, fleet availability, and recovery times.

The report is computed inside ``ClusterSimulator.run`` while the raw
per-completion samples are still in hand; only this compact summary
rides on the :class:`~repro.fleet.metrics.FleetResult` (and through
JSON), never the sample stream itself.  All times stay in cycles — the
result's clock converts for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..serve.metrics import percentile
from .faults import Incident

__all__ = ["WindowMetrics", "ResilienceReport", "compute_resilience"]


@dataclass(frozen=True)
class WindowMetrics:
    """Service quality over one (possibly disjoint) slice of the run."""

    #: Total time covered by the slice, in cycles (union, not sum —
    #: overlapping incidents are not double-counted).
    cycles: float
    completions: int
    #: Completions per cycle over the slice; 0 for an empty slice.
    goodput_per_cycle: float
    #: Tail latency of completions inside the slice; ``None`` when none.
    p99_cycles: Optional[float]
    p50_cycles: Optional[float]


@dataclass(frozen=True)
class ResilienceReport:
    """Incident-aware summary of one fleet run."""

    #: Replica-time-weighted uptime: 1 - down_cycles / (N * horizon).
    availability: float
    #: Union of all incident windows, in cycles.
    incident_cycles: float
    #: Requests destroyed by failures (in-flight on dead boards, queued
    #: under the ``lost`` policy, unroutable arrivals) — fleet total.
    lost_requests: int
    #: Mean outage duration over *recovered* fault incidents; ``None``
    #: when every outage was still open at the end of the run (censored).
    mean_time_to_recover_cycles: Optional[float]
    during: WindowMetrics
    outside: WindowMetrics
    #: Mean lag between a replica truly going bad (outage or gray
    #: onset) and the failure detector ejecting it; ``None`` for oracle
    #: detection (which has no lag) or when nothing was detected.
    mean_time_to_detect_cycles: Optional[float] = None

    @property
    def p99_degradation(self) -> Optional[float]:
        """In-incident p99 as a multiple of the calm-period p99."""
        if (
            self.during.p99_cycles is None
            or self.outside.p99_cycles is None
            or self.outside.p99_cycles == 0
        ):
            return None
        return self.during.p99_cycles / self.outside.p99_cycles

    @property
    def goodput_retention(self) -> Optional[float]:
        """In-incident goodput as a fraction of calm-period goodput."""
        if self.outside.goodput_per_cycle == 0:
            return None
        return self.during.goodput_per_cycle / self.outside.goodput_per_cycle


def _union(intervals: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge possibly-overlapping [start, end) intervals."""
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _covered(t: float, intervals: Sequence[Tuple[float, float]]) -> bool:
    for start, end in intervals:
        if start <= t < end:
            return True
        if start > t:
            break
    return False


def _window_metrics(
    samples: Sequence[Tuple[float, float]], cycles: float
) -> WindowMetrics:
    latencies = [latency for _, latency in samples]
    return WindowMetrics(
        cycles=cycles,
        completions=len(samples),
        goodput_per_cycle=len(samples) / cycles if cycles else 0.0,
        p99_cycles=percentile(latencies, 99) if latencies else None,
        p50_cycles=percentile(latencies, 50) if latencies else None,
    )


def compute_resilience(
    *,
    completions: Sequence[Tuple[float, float]],
    incidents: Sequence[Incident],
    horizon_cycles: float,
    num_replicas: int,
    lost_requests: int,
    mean_time_to_detect_cycles: Optional[float] = None,
) -> ResilienceReport:
    """Summarize a run's behaviour inside vs outside its incidents.

    ``completions`` are ``(finish_cycles, latency_cycles)`` samples for
    every completed request fleet-wide; a completion belongs to the
    *during* population when its finish time falls inside the union of
    incident windows — attribution by finish time, because that is when
    the latency was actually paid (a request admitted before an outage
    but finished during one queued through it).

    Availability counts only ``fault`` incidents (replica outages,
    unioned per replica so overlapping schedules are not double-billed);
    surge incidents degrade service but no capacity is down.
    """
    windows = _union(
        [(i.start_cycles, i.end_cycles) for i in incidents]
    )
    incident_cycles = sum(end - start for start, end in windows)

    during = [s for s in completions if _covered(s[0], windows)]
    outside = [s for s in completions if not _covered(s[0], windows)]

    faults = [i for i in incidents if i.kind == "fault"]
    down_cycles = 0.0
    for target in {i.target for i in faults}:
        per_replica = _union(
            [
                (i.start_cycles, i.end_cycles)
                for i in faults
                if i.target == target
            ]
        )
        down_cycles += sum(end - start for start, end in per_replica)
    replica_cycles = num_replicas * horizon_cycles
    availability = (
        1.0 - down_cycles / replica_cycles if replica_cycles else 1.0
    )

    recovered = [i.duration_cycles for i in faults if i.recovered]
    mean_ttr = sum(recovered) / len(recovered) if recovered else None

    return ResilienceReport(
        availability=availability,
        incident_cycles=incident_cycles,
        lost_requests=lost_requests,
        mean_time_to_recover_cycles=mean_ttr,
        during=_window_metrics(during, incident_cycles),
        outside=_window_metrics(
            outside, max(horizon_cycles - incident_cycles, 0.0)
        ),
        mean_time_to_detect_cycles=mean_time_to_detect_cycles,
    )
