"""Named, seeded, CLI-addressable failure/surge scenarios.

A :class:`ScenarioSpec` bundles everything that turns a clean fleet run
into a drill: fault specs (:mod:`repro.scenario.faults`), an optional
traffic :class:`SurgeShape` applied to every tenant's arrival process,
and the policy for a dead replica's queued requests.  Specs are frozen
and horizon-relative, so ``repro fleet simulate --scenario rack-loss``
means the same stress at any duration, replica count, or seed — the
registry below is the shared vocabulary between the CLI, the capacity
planner, and the resilience tests.

Surge shapes *reshape* a tenant's baseline arrival process into a
time-varying one (:mod:`repro.scenario.surges`), preserving its nominal
``mean_rate`` as the baseline.  A reshaped process is a thinned Poisson
process regardless of the baseline's own shape — a scenario describes
offered load over time, not the fine structure of inter-arrival gaps —
and draws from the same per-tenant RNG substream the baseline would
have used.  Shapes may also *declare* incident windows (a flash crowd's
spike, a diurnal peak) so resilience metrics can score service quality
inside them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..serve.arrivals import ArrivalProcess
from ..serve.overload import (
    AdmissionPolicy,
    BrownoutPolicy,
    OverloadSpec,
    RetryPolicy,
    overload_spec_from_dict,
    overload_spec_to_dict,
)
from .faults import (
    FAILURE_POLICIES,
    DegradedReplica,
    FaultSpec,
    FlakyReplica,
    LinkDelay,
    RackFailure,
    RandomFaults,
    RedundancyOutage,
    RollingReboot,
    fault_from_dict,
    fault_to_dict,
)
from .surges import DiurnalArrivals, FlashCrowdArrivals, OnOffArrivals

__all__ = [
    "SurgeShape",
    "DiurnalShape",
    "FlashCrowdShape",
    "ChurnShape",
    "ScenarioSpec",
    "SCENARIOS",
    "SCENARIO_NAMES",
    "get_scenario",
    "describe_scenario",
    "scenario_to_dict",
    "scenario_from_dict",
]


class SurgeShape:
    """Base: a horizon-relative recipe for time-varying offered load."""

    #: Registry key for (de)serialization; set on each concrete shape.
    kind = "abstract"

    def reshape(
        self,
        process: ArrivalProcess,
        horizon: float,
        tenant_index: int,
        num_tenants: int,
    ) -> ArrivalProcess:
        """Return the time-varying process replacing ``process``."""
        raise NotImplementedError

    def windows(self, horizon: float) -> List[Tuple[float, float]]:
        """Declared fleet-wide surge windows (absolute cycles)."""
        return []


@dataclass(frozen=True)
class DiurnalShape(SurgeShape):
    """Sinusoidal day: ``periods`` full cycles across the horizon.

    Declares the top third of each sinusoid (rate at least
    ``amplitude/2`` above baseline) as a surge window, so resilience
    metrics report tail latency *at the daily peak* separately.
    """

    kind = "diurnal"

    amplitude: float = 0.7
    periods: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        if self.periods <= 0:
            raise ValueError("periods must be positive")

    def reshape(
        self,
        process: ArrivalProcess,
        horizon: float,
        tenant_index: int,
        num_tenants: int,
    ) -> ArrivalProcess:
        return DiurnalArrivals(
            rate=process.mean_rate,
            amplitude=self.amplitude,
            period_cycles=horizon / self.periods,
        )

    def windows(self, horizon: float) -> List[Tuple[float, float]]:
        # sin >= 0.5 on [period/12, 5*period/12]: the top third of each day.
        period = horizon / self.periods
        out: List[Tuple[float, float]] = []
        start = period / 12.0
        while start < horizon:
            out.append((start, min(start + period / 3.0, horizon)))
            start += period
        return out


@dataclass(frozen=True)
class FlashCrowdShape(SurgeShape):
    """A ``multiplier``-fold spike over one horizon-relative window."""

    kind = "flash"

    multiplier: float = 4.0
    start: float = 0.4
    duration: float = 0.2

    def __post_init__(self) -> None:
        if self.multiplier <= 1.0:
            raise ValueError(f"multiplier must exceed 1, got {self.multiplier}")
        if not 0.0 <= self.start < 1.0 or self.duration <= 0:
            raise ValueError(
                f"spike start={self.start} duration={self.duration} must fit "
                "the horizon"
            )

    def reshape(
        self,
        process: ArrivalProcess,
        horizon: float,
        tenant_index: int,
        num_tenants: int,
    ) -> ArrivalProcess:
        return FlashCrowdArrivals(
            rate=process.mean_rate,
            multiplier=self.multiplier,
            spike_start_cycles=self.start * horizon,
            spike_cycles=self.duration * horizon,
        )

    def windows(self, horizon: float) -> List[Tuple[float, float]]:
        start = self.start * horizon
        return [(start, min(start + self.duration * horizon, horizon))]


@dataclass(frozen=True)
class ChurnShape(SurgeShape):
    """Tenants join and leave: phase-staggered on/off session gating.

    Tenant ``i`` is active for the first ``duty`` of every period, with
    its phase offset by ``i / num_tenants`` of a period — at any instant
    only a rotating subset of tenants offers load.  No surge windows are
    declared: churn is the steady state, not an incident.
    """

    kind = "churn"

    duty: float = 0.6
    periods: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 < self.duty <= 1.0:
            raise ValueError(f"duty must be in (0, 1], got {self.duty}")
        if self.periods <= 0:
            raise ValueError("periods must be positive")

    def reshape(
        self,
        process: ArrivalProcess,
        horizon: float,
        tenant_index: int,
        num_tenants: int,
    ) -> ArrivalProcess:
        period = horizon / self.periods
        phase = period * (tenant_index / max(num_tenants, 1))
        return OnOffArrivals(
            rate=process.mean_rate,
            duty=self.duty,
            period_cycles=period,
            phase_cycles=phase,
        )


_SHAPE_KINDS = (DiurnalShape, FlashCrowdShape, ChurnShape)


def _shape_to_dict(shape: SurgeShape) -> Dict[str, Any]:
    from dataclasses import asdict

    record: Dict[str, Any] = {"kind": shape.kind}
    record.update(asdict(shape))
    return record


def _shape_from_dict(data: Dict[str, Any]) -> SurgeShape:
    kind = data.get("kind")
    for cls in _SHAPE_KINDS:
        if cls.kind == kind:
            return cls(**{k: v for k, v in data.items() if k != "kind"})
    known = ", ".join(cls.kind for cls in _SHAPE_KINDS)
    raise ValueError(f"unknown surge kind {kind!r}; known: {known}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named drill: faults + surge + failure policy, horizon-relative."""

    name: str
    description: str = ""
    faults: Tuple[FaultSpec, ...] = ()
    surge: Optional[SurgeShape] = None
    #: What happens to a dead replica's *queued* requests; in-pipeline
    #: work is always lost with the board.  See ``FAILURE_POLICIES``.
    failure_policy: str = "requeue"
    #: Overload-control configuration the drill runs under (client
    #: retries, admission, discipline, brownout).  A run-level
    #: ``overload=`` argument wins over the scenario's.
    overload: Optional[OverloadSpec] = None
    #: How the fleet learns replica health (:mod:`repro.fleet.detector`):
    #: oracle vs probe-based detection, plus request timeouts and
    #: failover budget.  A run-level ``detector=`` argument wins over
    #: the scenario's.
    detector: Optional["DetectorSpec"] = None

    def __post_init__(self) -> None:
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}"
            )

    @property
    def is_noop(self) -> bool:
        """True when running this scenario must be bit-exact to no scenario."""
        return (
            not self.faults
            and self.surge is None
            and (self.overload is None or not self.overload.active)
            and (self.detector is None or not self.detector.active)
        )

    def with_redundancy(
        self, count: int, *, start: float = 0.35, duration: float = 0.3
    ) -> "ScenarioSpec":
        """This scenario plus ``count`` extra forced replica losses.

        The planner's N+k probe: the last ``count`` replicas are failed
        over one window, deliberately disjoint (by index) from a rack
        failure's victims so the stress is additive.  ``count=0`` is the
        scenario unchanged.
        """
        if count < 0:
            raise ValueError(f"redundancy count must be >= 0, got {count}")
        if count == 0:
            return self
        forced = RedundancyOutage(count=count, start=start, duration=duration)
        return replace(
            self,
            name=f"{self.name}+n{count}",
            faults=self.faults + (forced,),
        )


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a named scenario; raises with the valid names on a miss."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}"
        ) from None


# Deferred deliberately: ``repro.fleet.cluster`` imports ``ScenarioSpec``
# and ``get_scenario`` from this module at *its* import time, so pulling
# the (leaf) detector module any earlier would leave the cycle
# unresolvable when ``repro.scenario`` loads first.  By this point every
# name the fleet layer needs from us is bound.
from ..fleet.detector import (  # noqa: E402
    DetectorSpec,
    detector_spec_from_dict,
    detector_spec_to_dict,
)

SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="steady",
            description=(
                "No faults, stationary traffic — the control every other "
                "scenario is compared against (bit-exact to running with "
                "no scenario at all)."
            ),
        ),
        ScenarioSpec(
            name="diurnal-day",
            description=(
                "One sinusoidal traffic day (amplitude 0.7); the daily "
                "peak third is scored as a surge window."
            ),
            surge=DiurnalShape(amplitude=0.7, periods=1.0),
        ),
        ScenarioSpec(
            name="flash-crowd",
            description=(
                "4x traffic spike over the middle fifth of the run — the "
                "viral-link / retry-storm drill."
            ),
            surge=FlashCrowdShape(multiplier=4.0, start=0.4, duration=0.2),
        ),
        ScenarioSpec(
            name="rolling-reboot",
            description=(
                "Every replica reboots once, staggered so at most one is "
                "down at a time — the rolling-upgrade drill."
            ),
            faults=(RollingReboot(duration=0.08, window_start=0.1, window_end=0.9),),
        ),
        ScenarioSpec(
            name="rack-loss",
            description=(
                "Half the fleet fails together for a quarter of the run — "
                "the correlated-failure drill N+k capacity is planned "
                "against."
            ),
            faults=(RackFailure(fraction=0.5, start=0.4, duration=0.25),),
        ),
        ScenarioSpec(
            name="tenant-churn",
            description=(
                "Tenants join and leave on staggered on/off sessions "
                "(duty 0.6, two rotations) — the load-shifting drill for "
                "balancers and autoscaling."
            ),
            surge=ChurnShape(duty=0.6, periods=2.0),
        ),
        ScenarioSpec(
            name="chaos",
            description=(
                "Independent memoryless fail/recover per replica "
                "(MTTF half the run, MTTR a twentieth) — background "
                "attrition rather than one clean incident."
            ),
            faults=(RandomFaults(mttf=0.5, mttr=0.05),),
        ),
        ScenarioSpec(
            name="retry-storm",
            description=(
                "Half the fleet fails for a transient window while naive "
                "clients retry without bound (fixed short backoff, no "
                "jitter, no admission control) — the metastable-collapse "
                "drill: the retry pool can keep queues pinned long after "
                "the fault clears."
            ),
            faults=(RackFailure(fraction=0.5, start=0.25, duration=0.15),),
            overload=OverloadSpec(
                queue_policy="fifo",
                retry=RetryPolicy(
                    max_attempts=0,
                    backoff="fixed",
                    base_ms=0.05,
                    cap_ms=0.05,
                    jitter="none",
                ),
            ),
        ),
        ScenarioSpec(
            name="brownout-drill",
            description=(
                "Flash crowd under EDF scheduling, deadline admission, "
                "bounded jittered retries, and a brownout controller "
                "shedding the lowest priority classes to hold the top "
                "class's p99 — the graceful-degradation drill."
            ),
            surge=FlashCrowdShape(multiplier=4.0, start=0.3, duration=0.3),
            overload=OverloadSpec(
                queue_policy="edf",
                admission=AdmissionPolicy(deadline_admission=True),
                retry=RetryPolicy(
                    max_attempts=2,
                    base_ms=0.1,
                    cap_ms=1.0,
                    jitter="decorrelated",
                ),
                brownout=BrownoutPolicy(p99_ms=2.0, window_ms=1.0),
                deadline_ms=2.0,
            ),
        ),
        ScenarioSpec(
            name="gray-failure",
            description=(
                "The everything-is-technically-up drill: one straggler, "
                "one flaky board, and one slow link overlap mid-run while "
                "probe-based detection (with request timeouts and bounded "
                "failover) has to notice what the oracle health check "
                "never will."
            ),
            faults=(
                DegradedReplica(replica=0, slowdown=6.0, start=0.25, duration=0.4),
                FlakyReplica(replica=1, error_rate=0.4, start=0.3, duration=0.4),
                LinkDelay(replica=2, delay_epochs=3.0, start=0.35, duration=0.4),
            ),
            detector=DetectorSpec(
                mode="probe",
                request_timeout_ms=2.0,
                max_failovers=2,
            ),
        ),
        ScenarioSpec(
            name="straggler-storm",
            description=(
                "A third of the fleet throttles to 1/8 speed over the "
                "middle of the run — no errors, no downtime, just tail "
                "latency — and only p99 outlier ejection plus request "
                "timeouts keep goodput up."
            ),
            faults=(
                DegradedReplica(
                    fraction=0.34, slowdown=8.0, start=0.3, duration=0.4
                ),
            ),
            detector=DetectorSpec(
                mode="probe",
                outlier_p99_factor=2.0,
                request_timeout_ms=3.0,
                max_failovers=1,
            ),
        ),
        ScenarioSpec(
            name="flaky-replica",
            description=(
                "One board fails half its requests over the middle half "
                "of the run; Envoy-style error-rate ejection has to pull "
                "it from rotation while failover rescues the attempts "
                "already burned."
            ),
            faults=(
                FlakyReplica(replica=0, error_rate=0.5, start=0.25, duration=0.5),
            ),
            detector=DetectorSpec(
                mode="probe",
                outlier_error_rate=0.25,
                request_timeout_ms=4.0,
                max_failovers=2,
            ),
        ),
    )
}

SCENARIO_NAMES: Tuple[str, ...] = tuple(sorted(SCENARIOS))


def describe_scenario(spec: ScenarioSpec) -> str:
    """Multi-line human summary of one scenario (CLI ``describe``)."""
    lines = [f"{spec.name}: {spec.description}"]
    if spec.faults:
        lines.append("  faults:")
        for fault in spec.faults:
            params = {
                k: v for k, v in fault_to_dict(fault).items() if k != "kind"
            }
            detail = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            lines.append(f"    - {fault.kind}: {detail}")
        lines.append(f"  queued requests on failure: {spec.failure_policy}")
    if spec.surge is not None:
        params = {
            k: v for k, v in _shape_to_dict(spec.surge).items() if k != "kind"
        }
        detail = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
        lines.append(f"  surge: {spec.surge.kind}: {detail}")
    if spec.overload is not None:
        lines.append("  overload:")
        record = overload_spec_to_dict(spec.overload)
        lines.append(f"    - discipline: {record.pop('queue_policy')}")
        for key, value in sorted(record.items()):
            if isinstance(value, dict):
                detail = ", ".join(
                    f"{k}={v}" for k, v in sorted(value.items())
                )
                lines.append(f"    - {key}: {detail}")
            else:
                lines.append(f"    - {key}: {value}")
    if spec.detector is not None:
        record = detector_spec_to_dict(spec.detector)
        lines.append(f"  detector: {record.pop('mode')}")
        for key, value in sorted(record.items()):
            if value is not None:
                lines.append(f"    - {key}: {value}")
    if spec.is_noop:
        lines.append("  (no-op: bit-exact to running without a scenario)")
    return "\n".join(lines)


def scenario_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """JSON-ready record of a scenario spec."""
    record: Dict[str, Any] = {
        "name": spec.name,
        "description": spec.description,
        "failure_policy": spec.failure_policy,
        "faults": [fault_to_dict(f) for f in spec.faults],
    }
    if spec.surge is not None:
        record["surge"] = _shape_to_dict(spec.surge)
    if spec.overload is not None:
        record["overload"] = overload_spec_to_dict(spec.overload)
    if spec.detector is not None:
        record["detector"] = detector_spec_to_dict(spec.detector)
    return record


def scenario_from_dict(data: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild a scenario spec from its :func:`scenario_to_dict` record."""
    surge = data.get("surge")
    overload = data.get("overload")
    detector = data.get("detector")
    return ScenarioSpec(
        name=str(data["name"]),
        description=str(data.get("description", "")),
        faults=tuple(fault_from_dict(f) for f in data.get("faults", ())),
        surge=_shape_from_dict(surge) if surge is not None else None,
        failure_policy=str(data.get("failure_policy", "requeue")),
        overload=(
            overload_spec_from_dict(overload)
            if overload is not None
            else None
        ),
        detector=(
            detector_spec_from_dict(detector)
            if detector is not None
            else None
        ),
    )
