"""Seeded replica fail/recover injection for the cluster simulator.

A fault spec is a frozen description of *how* replicas fail; at run
start the cluster materializes every spec against the concrete horizon,
replica count, and a dedicated fault RNG substream into a flat list of
:class:`Outage` windows, then drives them as ordinary events inside the
discrete-event loop (down at ``start``, recovery at ``end``).  Keeping
materialization up front has two payoffs: the injected schedule is
reproducible and inspectable (it becomes the run's
:class:`Incident` record), and the fault RNG is consumed in one place —
enabling a scenario can never perturb the arrival-stream draws, which
live on their own substreams (the determinism tests pin this).

Times and durations are expressed as *fractions of the horizon* by
default (``relative=True``), so one named scenario stresses a 10 ms
probe window and a 10 s soak identically; absolute cycle values are for
hand-built schedules.

What failure means for requests is the scenario's ``failure_policy``
(see :data:`FAILURE_POLICIES`): work already in a dead board's pipeline
is always lost with the board, while its *queued* requests are either
``requeue``-d through the balancer to surviving replicas or ``lost``
outright (modelling state that dies with the host).

Binary outages are only half the story: real fleets mostly fail *gray*.
The degraded specs (:class:`DegradedReplica`, :class:`FlakyReplica`,
:class:`LinkDelay`) materialize into :class:`Degradation` windows the
same way outages do — same fault RNG substream, same up-front schedule —
but instead of taking a replica down they slow its epochs, fail a seeded
fraction of its requests, or add router→replica latency.  A gray replica
still answers the oracle health check, which is exactly why detection
(see :mod:`repro.fleet.detector`) becomes interesting.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "FAILURE_POLICIES",
    "GRAY_MODES",
    "Outage",
    "Degradation",
    "Incident",
    "FaultSpec",
    "RandomFaults",
    "ScheduledOutage",
    "RackFailure",
    "RollingReboot",
    "RedundancyOutage",
    "DegradedReplica",
    "FlakyReplica",
    "LinkDelay",
    "fault_to_dict",
    "fault_from_dict",
]

#: What happens to a failed replica's queued requests: re-routed through
#: the balancer to healthy replicas, or destroyed with the board.
FAILURE_POLICIES = ("requeue", "lost")

#: The ways a replica degrades without dying.  ``slow`` multiplies epoch
#: time (severity = slowdown factor), ``flaky`` fails dispatched requests
#: (severity = error probability), ``link-delay`` adds router→replica
#: latency (severity = delay in epochs).
GRAY_MODES = ("slow", "flaky", "link-delay")


@dataclass(frozen=True)
class Outage:
    """One materialized down-window of one replica (cycles, absolute)."""

    replica: int
    start: float
    end: float
    cause: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"outage window [{self.start}, {self.end}) is empty or negative"
            )


@dataclass(frozen=True)
class Degradation:
    """One materialized gray window of one replica (cycles, absolute).

    The gray analogue of :class:`Outage`: the replica keeps serving, but
    worse.  ``mode`` is one of :data:`GRAY_MODES` and fixes the meaning
    of ``severity`` — a slowdown factor (``slow``), a per-dispatch error
    probability (``flaky``), or an added latency in epochs
    (``link-delay``).
    """

    replica: int
    start: float
    end: float
    mode: str
    severity: float
    cause: str

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"degradation window [{self.start}, {self.end}) is empty "
                "or negative"
            )
        if self.mode not in GRAY_MODES:
            raise ValueError(
                f"unknown gray mode {self.mode!r}; known: {GRAY_MODES}"
            )
        if self.severity <= 0:
            raise ValueError("severity must be positive")


@dataclass(frozen=True)
class Incident:
    """One service-affecting window as recorded on a ``FleetResult``.

    ``kind`` is ``"fault"`` for replica outages and ``"surge"`` for
    declared traffic windows (flash-crowd spike, diurnal peak);
    ``target`` names the affected replica label, or ``"fleet"`` for
    traffic-wide incidents.  ``end`` is clipped to the observation
    window, with ``recovered`` recording whether the incident actually
    closed inside it — an unrecovered incident's duration is censored,
    so time-to-recover averages skip it.
    """

    kind: str
    target: str
    start_cycles: float
    end_cycles: float
    recovered: bool

    @property
    def duration_cycles(self) -> float:
        return self.end_cycles - self.start_cycles


class FaultSpec:
    """Base class: a seeded recipe for replica down-windows.

    ``materialize`` receives the run's horizon, replica count, and the
    scenario's dedicated fault RNG, and returns concrete
    :class:`Outage` windows (absolute cycles, clipped to start inside
    the horizon).  Deterministic specs must not touch the RNG, so mixing
    scheduled and random faults keeps the scheduled part bit-stable.
    """

    #: Registry key for (de)serialization; set on each concrete spec.
    kind = "abstract"

    def materialize(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Outage]:
        raise NotImplementedError

    def materialize_gray(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Degradation]:
        """Concrete gray windows; binary fault specs have none."""
        return []


def _check_window(start: float, duration: float, relative: bool) -> None:
    if start < 0 or duration <= 0:
        raise ValueError(
            f"fault window start={start} duration={duration} must be "
            "non-negative / positive"
        )
    if relative and start >= 1.0:
        raise ValueError(
            f"relative fault start {start} must lie inside the horizon [0, 1)"
        )


def _scale(value: float, horizon: float, relative: bool) -> float:
    return value * horizon if relative else value


@dataclass(frozen=True)
class RandomFaults(FaultSpec):
    """Memoryless fail/recover per replica: MTTF/MTTR exponentials.

    Every replica independently alternates up-phases (exponential, mean
    ``mttf``) and down-phases (exponential, mean ``mttr``) — the
    textbook availability model (steady-state availability
    ``mttf / (mttf + mttr)``).  Draws come replica by replica in index
    order from the scenario's fault RNG, so the schedule is a pure
    function of (seed, horizon, replica count).
    """

    kind = "random"

    mttf: float = 0.5
    mttr: float = 0.05
    relative: bool = True

    def __post_init__(self) -> None:
        if self.mttf <= 0 or self.mttr <= 0:
            raise ValueError("mttf and mttr must be positive")

    def materialize(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Outage]:
        mttf = _scale(self.mttf, horizon, self.relative)
        mttr = _scale(self.mttr, horizon, self.relative)
        outages: List[Outage] = []
        for replica in range(num_replicas):
            now = rng.expovariate(1.0 / mttf)
            while now < horizon:
                down = rng.expovariate(1.0 / mttr)
                outages.append(
                    Outage(replica, now, now + down, cause="random")
                )
                now += down + rng.expovariate(1.0 / mttf)
        return outages


@dataclass(frozen=True)
class ScheduledOutage(FaultSpec):
    """One replica down over a fixed window (maintenance, known failure)."""

    kind = "scheduled"

    replica: int = 0
    start: float = 0.4
    duration: float = 0.2
    relative: bool = True

    def __post_init__(self) -> None:
        if self.replica < 0:
            raise ValueError("replica index must be non-negative")
        _check_window(self.start, self.duration, self.relative)

    def materialize(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Outage]:
        if self.replica >= num_replicas:
            return []  # spec written for a bigger fleet; nothing to fail here
        start = _scale(self.start, horizon, self.relative)
        duration = _scale(self.duration, horizon, self.relative)
        if start >= horizon:
            return []
        return [Outage(self.replica, start, start + duration, cause="scheduled")]


@dataclass(frozen=True)
class RackFailure(FaultSpec):
    """Correlated loss: a fixed fraction of the fleet down together.

    Models a rack/PDU/switch failure — the first ``ceil(fraction * N)``
    replicas (one "rack" under the fleet's natural ordering) go down at
    ``start`` and recover together.  The point of the correlation is
    that redundancy planned for independent failures is not enough;
    this is the scenario N+1 capacity questions are asked against.
    """

    kind = "rack"

    fraction: float = 0.5
    start: float = 0.4
    duration: float = 0.25
    relative: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        _check_window(self.start, self.duration, self.relative)

    def materialize(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Outage]:
        members = math.ceil(self.fraction * num_replicas)
        start = _scale(self.start, horizon, self.relative)
        duration = _scale(self.duration, horizon, self.relative)
        if start >= horizon:
            return []
        return [
            Outage(replica, start, start + duration, cause="rack")
            for replica in range(min(members, num_replicas))
        ]


@dataclass(frozen=True)
class RollingReboot(FaultSpec):
    """Staggered one-at-a-time outages: a rolling upgrade across the fleet.

    Replica ``i`` reboots for ``duration`` starting at evenly spaced
    points across ``[window_start, window_end - duration]``, so at most
    one replica is down at a time whenever the window affords the
    spacing — the deploy pattern operators actually use, and the
    scenario that separates "survives one loss" from "survives only
    zero losses".
    """

    kind = "rolling"

    duration: float = 0.08
    window_start: float = 0.1
    window_end: float = 0.9
    relative: bool = True

    def __post_init__(self) -> None:
        _check_window(self.window_start, self.duration, self.relative)
        if not self.window_start < self.window_end <= 1.0 if self.relative else False:
            if self.window_end <= self.window_start:
                raise ValueError("window_end must exceed window_start")

    def materialize(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Outage]:
        duration = _scale(self.duration, horizon, self.relative)
        lo = _scale(self.window_start, horizon, self.relative)
        hi = _scale(self.window_end, horizon, self.relative)
        span = max(hi - lo - duration, 0.0)
        step = span / max(num_replicas - 1, 1)
        outages: List[Outage] = []
        for replica in range(num_replicas):
            start = lo + replica * step
            if start >= horizon:
                continue
            outages.append(
                Outage(replica, start, start + duration, cause="rolling")
            )
        return outages


@dataclass(frozen=True)
class RedundancyOutage(FaultSpec):
    """Force the *last* ``count`` replicas down over one window.

    The capacity planner's N+k probe: killing replicas from the end of
    the index order avoids overlapping a scenario's own rack failure
    (which takes replicas from the front), so the forced loss is always
    *additional* stress — the conservative reading of "plan for k more
    failures on top of the scenario".
    """

    kind = "redundancy"

    count: int = 1
    start: float = 0.35
    duration: float = 0.3
    relative: bool = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("count must be at least 1")
        _check_window(self.start, self.duration, self.relative)

    def materialize(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Outage]:
        start = _scale(self.start, horizon, self.relative)
        duration = _scale(self.duration, horizon, self.relative)
        if start >= horizon:
            return []
        count = min(self.count, num_replicas)
        return [
            Outage(replica, start, start + duration, cause="redundancy")
            for replica in range(num_replicas - count, num_replicas)
        ]


class _GraySpec(FaultSpec):
    """Shared shape for gray specs: a window plus affected members.

    ``replica`` targets one board; setting ``fraction`` instead degrades
    the first ``ceil(fraction * N)`` replicas together (same front-of-
    fleet convention as :class:`RackFailure`, so a storm composes with a
    redundancy outage without overlapping it).  Gray specs produce no
    :class:`Outage` windows — their whole point is that the board stays
    "up".
    """

    #: Gray mode this spec materializes; set on each concrete spec.
    mode = "abstract"

    def materialize(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Outage]:
        return []

    def _members(self, num_replicas: int) -> List[int]:
        fraction = getattr(self, "fraction", None)
        if fraction is None:
            if self.replica >= num_replicas:
                return []
            return [self.replica]
        members = math.ceil(fraction * num_replicas)
        return list(range(min(members, num_replicas)))

    def _windows(
        self, horizon: float, num_replicas: int, severity: float
    ) -> List[Degradation]:
        start = _scale(self.start, horizon, self.relative)
        duration = _scale(self.duration, horizon, self.relative)
        if start >= horizon:
            return []
        return [
            Degradation(
                replica, start, start + duration, mode=self.mode,
                severity=severity, cause=self.kind,
            )
            for replica in self._members(num_replicas)
        ]

    def _check_members(self) -> None:
        fraction = getattr(self, "fraction", None)
        if fraction is None:
            if self.replica < 0:
                raise ValueError("replica index must be non-negative")
        elif not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        _check_window(self.start, self.duration, self.relative)


@dataclass(frozen=True)
class DegradedReplica(_GraySpec):
    """A straggler: the replica's epochs run ``slowdown`` times slower.

    Models thermal throttling, a failing DIMM, a noisy neighbour — the
    board still completes every request, just at ``1/slowdown`` of its
    design throughput and with proportionally stretched latency.  A
    ``fraction`` turns one straggler into a straggler storm.
    """

    kind = "degraded"
    mode = "slow"

    replica: int = 0
    slowdown: float = 4.0
    start: float = 0.3
    duration: float = 0.3
    fraction: Optional[float] = None
    relative: bool = True

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(
                f"slowdown must be >= 1, got {self.slowdown}"
            )
        self._check_members()

    def materialize_gray(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Degradation]:
        return self._windows(horizon, num_replicas, self.slowdown)


@dataclass(frozen=True)
class FlakyReplica(_GraySpec):
    """A flaky board: each dispatched request errors with ``error_rate``.

    The error draw happens per dispatch on the cluster's dedicated
    flaky substream, so enabling flakiness never perturbs arrival or
    balancer draws.  Errored attempts fail over to another replica when
    a detector allows it, otherwise they are lost.
    """

    kind = "flaky"
    mode = "flaky"

    replica: int = 0
    error_rate: float = 0.3
    start: float = 0.2
    duration: float = 0.5
    fraction: Optional[float] = None
    relative: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError(
                f"error_rate must be in (0, 1], got {self.error_rate}"
            )
        self._check_members()

    def materialize_gray(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Degradation]:
        return self._windows(horizon, num_replicas, self.error_rate)


@dataclass(frozen=True)
class LinkDelay(_GraySpec):
    """A slow link: every request to the replica pays ``delay_epochs``.

    Added router→replica latency, expressed in epochs so the same named
    scenario stresses designs with different epoch lengths identically.
    Throughput is untouched — only latency (and hence p99 outlier
    detection and request timeouts) feels it.
    """

    kind = "link-delay"
    mode = "link-delay"

    replica: int = 0
    delay_epochs: float = 2.0
    start: float = 0.2
    duration: float = 0.5
    fraction: Optional[float] = None
    relative: bool = True

    def __post_init__(self) -> None:
        if self.delay_epochs <= 0:
            raise ValueError(
                f"delay_epochs must be positive, got {self.delay_epochs}"
            )
        self._check_members()

    def materialize_gray(
        self, horizon: float, num_replicas: int, rng: random.Random
    ) -> List[Degradation]:
        return self._windows(horizon, num_replicas, self.delay_epochs)


_FAULT_KINDS = (
    RandomFaults,
    ScheduledOutage,
    RackFailure,
    RollingReboot,
    RedundancyOutage,
    DegradedReplica,
    FlakyReplica,
    LinkDelay,
)


def fault_to_dict(spec: FaultSpec) -> Dict[str, Any]:
    """JSON-ready record of a fault spec (``kind`` + its parameters)."""
    record: Dict[str, Any] = {"kind": spec.kind}
    record.update(asdict(spec))
    return record


def fault_from_dict(data: Dict[str, Any]) -> FaultSpec:
    """Rebuild a fault spec from its :func:`fault_to_dict` record."""
    kind = data.get("kind")
    for cls in _FAULT_KINDS:
        if cls.kind == kind:
            params = {k: v for k, v in data.items() if k != "kind"}
            return cls(**params)
    known = ", ".join(cls.kind for cls in _FAULT_KINDS)
    raise ValueError(f"unknown fault kind {kind!r}; known: {known}")
